//! The kernel proper: boot, trap handling, scheduling and syscalls.
//!
//! One `Kernel` instance is one booted OS.  It can boot **bare** (native
//! mode, PL0, its own gate table — the paper's N-L) or as a **guest**
//! (de-privileged under Xenon with hypercall paravirt-ops — X-0/X-U).
//! Mercury builds on the same object: it boots bare, swaps in its
//! switchable virtualization objects, and moves the kernel between modes
//! at runtime without the kernel noticing.

use crate::drivers::block::BlockDriver;
use crate::drivers::net::NetDriver;
use crate::error::KernelError;
use crate::fs::{Vfs, BLOCK_SIZE};
use crate::mm::{AddressSpace, FramePool, MmCtx, Prot, Vma, VmaKind};
use crate::net::{decode_packet, encode_packet, SocketTable};
use crate::paravirt::{ExecMode, KernelMap, PvOps};
use crate::process::{BlockOn, Desc, Pid, Pipe, ProcState, Process, SavedTrapContext};
use crate::programs::{layout, ProgramRegistry};
use crate::sched::SchedState;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simx86::cpu::{vectors, IdtTable, InterruptSink, TrapFrame};
use simx86::fault::AccessKind;
use simx86::mem::FrameNum;
use simx86::paging::{Pte, VirtAddr, PAGE_SIZE};
use simx86::{costs, Cpu, Machine, Mmu, PrivLevel};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use xenon::{Domain, Hypervisor};

/// How the kernel is brought up.
#[derive(Clone)]
pub enum BootMode {
    /// Native: bare hardware, PL0.
    Bare,
    /// Guest: de-privileged on a live hypervisor.
    Guest {
        /// The hypervisor.
        hv: Arc<Hypervisor>,
        /// This kernel's domain.
        dom: Arc<Domain>,
    },
}

/// Boot configuration.
pub struct KernelConfig {
    /// Frames this kernel owns.
    pub pool: Vec<FrameNum>,
    /// Boot mode.
    pub mode: BootMode,
    /// Filesystem data blocks (on the disk reached via the block
    /// driver).
    pub fs_blocks: u64,
    /// First disk block the filesystem may use.
    pub fs_first_block: u64,
}

/// Outcome of a potentially blocking read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes delivered (empty = EOF).
    Data(Vec<u8>),
    /// The caller blocked; another process now runs on this CPU (or the
    /// CPU went idle).
    Blocked,
}

/// Outcome of a potentially blocking write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Bytes accepted.
    Wrote(usize),
    /// The caller blocked.
    Blocked,
}

/// Outcome of a receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A datagram: (source port, payload).
    Datagram(u16, Vec<u8>),
    /// The caller blocked.
    Blocked,
}

/// What backs an mmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmapBacking {
    /// Anonymous demand-zero memory.
    Anon,
    /// A file region.
    File {
        /// Inode.
        ino: u32,
        /// Byte offset of the mapping's start.
        offset: u64,
    },
}

/// Timer callback type (Mercury's switch retry timer rides these).
pub type TimerCallback = Arc<dyn Fn(&Arc<Cpu>) + Send + Sync>;

/// Idle-task type: called with `(cpu, budget_cycles)` when a CPU's idle
/// loop finds nothing runnable; must consume at most the budget and
/// return the cycles actually used (Mercury's background frame
/// revalidation donates idle time through this).
pub type IdleTask = Arc<dyn Fn(&Arc<Cpu>, u64) -> u64 + Send + Sync>;

/// Cycle budget handed to the registered [`IdleTask`] per idle pass —
/// small enough that an interrupt-driven wakeup is never delayed by
/// more than a few microseconds of donated work.
pub const IDLE_DONATION_QUANTUM: u64 = 10_000;

pub(crate) struct KState {
    pub pool: FramePool,
    pub procs: BTreeMap<u32, Process>,
    pub zombies: BTreeMap<u32, (Pid, i32)>,
    pub sched: SchedState,
    pub pipes: HashMap<u32, Pipe>,
    pub next_pipe: u32,
    pub socks: SocketTable,
    pub vfs: Vfs,
    pub programs: ProgramRegistry,
    pub next_pid: u32,
    pub frozen: bool,
}

/// Serializable kernel image for checkpoint / migration (§6.1).
#[derive(Serialize, Deserialize)]
pub struct KernelImage {
    kmap: KernelMap,
    kernel_pdes: Vec<(usize, u64)>,
    procs: BTreeMap<u32, Process>,
    zombies: BTreeMap<u32, (Pid, i32)>,
    sched: SchedState,
    pipes: HashMap<u32, Pipe>,
    next_pipe: u32,
    socks: SocketTable,
    vfs: Vfs,
    programs: ProgramRegistry,
    next_pid: u32,
    pool: FramePool,
}

/// The kernel.
pub struct Kernel {
    /// The machine this kernel runs on.
    pub machine: Arc<Machine>,
    pv: RwLock<Arc<dyn PvOps>>,
    state: Mutex<KState>,
    idt: Arc<IdtTable>,
    kmap: KernelMap,
    kernel_pdes: Vec<(usize, Pte)>,
    block: RwLock<Option<Arc<dyn BlockDriver>>>,
    net: RwLock<Option<Arc<dyn NetDriver>>>,
    timer_callbacks: Mutex<Vec<TimerCallback>>,
    self_virt: RwLock<Option<Arc<dyn InterruptSink>>>,
    mode: BootMode,
    smp: bool,
    /// A machine-check was observed (cluster failure injection, §6.5).
    pub mce_seen: AtomicBool,
    /// Involuntary (timer-tick) preemption at syscall exit.  Off by
    /// default, like 2.6-era `!CONFIG_PREEMPT` kernels — and because
    /// the benchmark drivers, which stand in for the user programs,
    /// need deterministic process roles.  [`Kernel::set_preemptible`]
    /// turns it on.
    preemptible: AtomicBool,
    /// Applied live patches: name → version (§6.4's live kernel update
    /// target state; patched "code" is modelled as versioned behaviour
    /// flags the workloads can observe).
    patches: RwLock<HashMap<String, u64>>,
    /// Work the idle loop donates spare cycles to (background frame
    /// revalidation while Mercury is dormant); `None` means idle CPUs
    /// just wait for interrupts.
    idle_task: RwLock<Option<IdleTask>>,
}

// ---------------------------------------------------------------------------
// Trap sinks
// ---------------------------------------------------------------------------

struct PageFaultSink(Weak<Kernel>);
impl InterruptSink for PageFaultSink {
    fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        let va = VirtAddr(frame.error & 0x3fff_ffff);
        let access = if frame.error >> 62 & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        k.handle_page_fault(cpu, va, access);
    }
}

struct GpSink(Weak<Kernel>);
impl InterruptSink for GpSink {
    fn handle(&self, cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        let mut st = k.state.lock();
        if let Some(pid) = st.sched.current(cpu.id) {
            if let Some(p) = st.procs.get_mut(&pid.0) {
                p.signalled = true;
            }
        }
    }
}

struct TimerSink(Weak<Kernel>);
impl InterruptSink for TimerSink {
    fn handle(&self, cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        {
            let mut st = k.state.lock();
            st.sched.jiffies += 1;
            let id = cpu.id;
            st.sched.need_resched[id] = true;
        }
        let callbacks: Vec<TimerCallback> = k.timer_callbacks.lock().clone();
        for cb in callbacks {
            cb(cpu);
        }
    }
}

struct NicSink(Weak<Kernel>);
impl InterruptSink for NicSink {
    fn handle(&self, cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        k.net_rx_pump(cpu);
    }
}

struct DiskSink;
impl InterruptSink for DiskSink {
    fn handle(&self, _cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        // Block I/O is synchronous in the drivers; the completion IRQ
        // needs no bottom half.
    }
}

struct MceSink(Weak<Kernel>);
impl InterruptSink for MceSink {
    fn handle(&self, cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        k.mce_seen.store(true, Ordering::Release);
        k.pv().console_write(cpu, "MCE: hardware error reported");
    }
}

/// Forwards the dedicated self-virtualization vectors (§4.1: "the
/// interrupt handler dedicated to self-virtualization") to whatever
/// Mercury registered via [`Kernel::set_self_virt_sink`].
struct SelfVirtSink(Weak<Kernel>);
impl InterruptSink for SelfVirtSink {
    fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        let hook = k.self_virt.read().clone();
        if let Some(sink) = hook {
            sink.handle(cpu, frame);
        }
    }
}

struct EvtchnSink(Weak<Kernel>);
impl InterruptSink for EvtchnSink {
    fn handle(&self, _cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
        let Some(k) = self.0.upgrade() else { return };
        // Drain pending bits; device channels are serviced synchronously
        // in this model, so the upcall is a wakeup only.
        if let BootMode::Guest { dom, .. } = &k.mode {
            let _ = xenon::events::take_pending(dom);
        }
    }
}

impl Kernel {
    // -----------------------------------------------------------------
    // Boot
    // -----------------------------------------------------------------

    /// Boot a kernel on `machine` with the given configuration.
    ///
    /// Builds the kernel direct map (page tables in real frames),
    /// initializes the filesystem and program registry, installs trap
    /// handlers through the mode's paravirt object, and starts `init`
    /// (pid 1) on CPU 0.
    pub fn boot(machine: Arc<Machine>, config: KernelConfig) -> Result<Arc<Kernel>, KernelError> {
        let cpu = Arc::clone(machine.boot_cpu());
        let mut pool = FramePool::new(config.pool.clone());

        // ---- kernel direct map -------------------------------------------
        let (kmap, kernel_pdes) = Self::build_direct_map(&machine, &cpu, &mut pool)?;

        // ---- programs ------------------------------------------------------
        let mut programs = ProgramRegistry::default();
        programs.install_standard(&cpu, &machine.mem, &mut pool)?;

        // ---- core object ---------------------------------------------------
        let pv: Arc<dyn PvOps> = match &config.mode {
            BootMode::Bare => crate::paravirt::BareOps::new(Arc::clone(&machine)),
            BootMode::Guest { hv, dom } => {
                crate::paravirt::XenOps::new(Arc::clone(hv), Arc::clone(dom))
            }
        };
        let smp = machine.num_cpus() > 1;
        let num_cpus = machine.num_cpus();
        let vfs = Vfs::mkfs(config.fs_first_block, config.fs_blocks);

        let kernel = Arc::new_cyclic(|weak: &Weak<Kernel>| {
            let mut idt = IdtTable::new("nimbus");
            idt.set_gate(vectors::PAGE_FAULT, Arc::new(PageFaultSink(weak.clone())));
            idt.set_gate(vectors::GP_FAULT, Arc::new(GpSink(weak.clone())));
            idt.set_gate(vectors::TIMER, Arc::new(TimerSink(weak.clone())));
            idt.set_gate(vectors::NIC, Arc::new(NicSink(weak.clone())));
            idt.set_gate(vectors::DISK, Arc::new(DiskSink));
            idt.set_gate(vectors::MACHINE_CHECK, Arc::new(MceSink(weak.clone())));
            idt.set_gate(vectors::EVTCHN_UPCALL, Arc::new(EvtchnSink(weak.clone())));
            idt.set_gate(
                vectors::SELF_VIRT_ATTACH,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_DETACH,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_RENDEZVOUS,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_UPDATE,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            Kernel {
                machine: Arc::clone(&machine),
                pv: RwLock::new(pv),
                state: Mutex::new(KState {
                    pool,
                    procs: BTreeMap::new(),
                    zombies: BTreeMap::new(),
                    sched: SchedState::new(num_cpus),
                    pipes: HashMap::new(),
                    next_pipe: 0,
                    socks: SocketTable::default(),
                    vfs,
                    programs,
                    next_pid: 1,
                    frozen: false,
                }),
                idt: Arc::new(idt),
                kmap,
                kernel_pdes,
                block: RwLock::new(None),
                net: RwLock::new(None),
                timer_callbacks: Mutex::new(Vec::new()),
                self_virt: RwLock::new(None),
                patches: RwLock::new(HashMap::new()),
                preemptible: AtomicBool::new(false),
                idle_task: RwLock::new(None),
                mode: config.mode.clone(),
                smp,
                mce_seen: AtomicBool::new(false),
            }
        });

        kernel.install_traps_and_privilege()?;

        // ---- init process --------------------------------------------------
        {
            let mut st = kernel.state.lock();
            let init = kernel.build_process(&mut st, &cpu, Pid(0), "init")?;
            let pid = init.pid;
            st.procs.insert(pid.0, init);
            st.sched.current[0] = Some(pid);
            st.procs.get_mut(&pid.0).unwrap().state = ProcState::Running;
            let pgd = st.procs.get(&pid.0).unwrap().aspace.pgd;
            kernel.pv().load_base_table(&cpu, pgd)?;
        }
        for c in &kernel.machine.cpus {
            kernel
                .machine
                .timer
                .start(c, simx86::devices::timer::DEFAULT_PERIOD_CYCLES);
        }
        Ok(kernel)
    }

    /// Build the direct map: one kernel L1 table per 2 MiB slice of the
    /// pool, each pool frame mapped writable at `KERNEL_BASE + pa`.
    fn build_direct_map(
        machine: &Arc<Machine>,
        cpu: &Arc<Cpu>,
        pool: &mut FramePool,
    ) -> Result<(KernelMap, Vec<(usize, Pte)>), KernelError> {
        // Which L2 slots do we need?  Computed over the *entire* pool,
        // including the L1 frames we're about to allocate from it.
        let mut l2_indices: Vec<usize> = pool
            .all_frames()
            .iter()
            .map(|f| KernelMap::boot_va_of(*f).l2_index())
            .collect();
        l2_indices.sort_unstable();
        l2_indices.dedup();

        let mut kmap = KernelMap::default();
        for &l2 in &l2_indices {
            let l1 = pool.alloc(cpu).ok_or(KernelError::NoMem)?;
            machine.mem.zero_frame(cpu, l1)?;
            kmap.l1s.push((l2, l1));
        }
        // Map every pool frame (free or in use — in-use ones are the L1
        // frames themselves and the program pages installed later),
        // recording the slot assignment for later relocation.
        for f in pool.all_frames() {
            let va = KernelMap::boot_va_of(f);
            let l1 = kmap
                .l1s
                .iter()
                .find(|(l2, _)| *l2 == va.l2_index())
                .map(|(_, t)| *t)
                .expect("pool frame outside the computed direct map");
            // volint::allow(VO-BYPASS): boot direct-map build predates the VO
            machine.mem.write_pte(
                cpu,
                l1,
                va.l1_index(),
                Pte::new(f.0, Pte::WRITABLE | Pte::GLOBAL),
            )?;
            kmap.record(f, l1, va.l1_index(), va);
        }
        let pdes: Vec<(usize, Pte)> = kmap
            .l1s
            .iter()
            .map(|&(l2, l1)| (l2, Pte::new(l1.0, Pte::WRITABLE)))
            .collect();
        Ok((kmap, pdes))
    }

    /// Install trap delivery and set CPU privilege per mode.
    fn install_traps_and_privilege(self: &Arc<Self>) -> Result<(), KernelError> {
        match &self.mode {
            BootMode::Bare => {
                for cpu in &self.machine.cpus {
                    // volint::allow(VO-BYPASS): pre-VO bootstrap privilege set
                    cpu.set_pl_raw(PrivLevel::Pl0);
                    self.pv().load_trap_table(cpu, Arc::clone(&self.idt))?;
                    self.pv().irq_enable(cpu);
                }
            }
            BootMode::Guest { hv, dom } => {
                // The hypervisor owns the hardware tables; this kernel's
                // page-table frames must go read-only in the direct map
                // before anything can be pinned.
                let cpu = self.machine.boot_cpu();
                for &(_, l1) in &self.kmap.l1s {
                    let (holder, idx) = self
                        .kmap
                        .locate(l1)
                        .expect("kernel L1 must be direct-mapped");
                    let cur = self.machine.mem.read_pte(cpu, holder, idx)?;
                    // volint::allow(VO-BYPASS): guest boot RO-flip precedes pinning
                    self.machine.mem.write_pte(
                        cpu,
                        holder,
                        idx,
                        cur.without_flags(Pte::WRITABLE),
                    )?;
                }
                for cpu in &self.machine.cpus {
                    hv.install_on_cpu(cpu);
                    hv.set_current(cpu.id, Some(dom.id));
                    // volint::allow(VO-BYPASS): pre-VO bootstrap privilege set
                    cpu.set_pl_raw(PrivLevel::Pl1);
                }
                let cpu = self.machine.boot_cpu();
                self.pv().load_trap_table(cpu, Arc::clone(&self.idt))?;
                for cpu in &self.machine.cpus {
                    self.pv().irq_enable(cpu);
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Accessors / plumbing
    // -----------------------------------------------------------------

    /// The active paravirt object.
    pub fn pv(&self) -> Arc<dyn PvOps> {
        Arc::clone(&self.pv.read())
    }

    /// Swap the paravirt object (Mercury's VO relocation, §4.2).
    pub fn set_pv(&self, pv: Arc<dyn PvOps>) {
        *self.pv.write() = pv;
    }

    /// Current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.pv.read().mode()
    }

    /// The kernel's own gate table (Mercury restores it on detach).
    pub fn idt(&self) -> Arc<IdtTable> {
        Arc::clone(&self.idt)
    }

    /// Rewrite `cpu`'s trap table from the kernel's pristine copy.
    ///
    /// This is the descriptor-repair path a dependability watchdog takes
    /// when it detects a corrupted IDT gate (DESIGN.md §12): the known
    /// good table is reinstalled through the active paravirt object, so
    /// the write is mediated by whatever layer currently owns the
    /// hardware — `lidt` natively, a hypercall when virtualized.
    pub fn reinstall_idt(self: &Arc<Self>, cpu: &Arc<Cpu>) -> Result<(), KernelError> {
        self.pv().load_trap_table(cpu, Arc::clone(&self.idt))
    }

    /// The direct-map locator.
    pub fn kmap(&self) -> &KernelMap {
        &self.kmap
    }

    /// Kernel page-directory template entries.
    pub fn kernel_pdes(&self) -> &[(usize, Pte)] {
        &self.kernel_pdes
    }

    /// Attach the block driver (done by the test bed after boot, since
    /// driver shape depends on the system configuration).
    pub fn set_block_driver(&self, d: Arc<dyn BlockDriver>) {
        *self.block.write() = Some(d);
    }

    /// Attach the network driver.
    pub fn set_net_driver(&self, d: Arc<dyn NetDriver>) {
        *self.net.write() = Some(d);
    }

    /// The block driver.
    pub fn block_driver(&self) -> Result<Arc<dyn BlockDriver>, KernelError> {
        self.block
            .read()
            .clone()
            .ok_or(KernelError::Invalid("no block driver"))
    }

    /// The network driver.
    pub fn net_driver(&self) -> Result<Arc<dyn NetDriver>, KernelError> {
        self.net
            .read()
            .clone()
            .ok_or(KernelError::Invalid("no net driver"))
    }

    /// Register a periodic timer callback (Mercury's retry timer,
    /// §5.1.1).
    pub fn register_timer_callback(&self, cb: TimerCallback) {
        self.timer_callbacks.lock().push(cb);
    }

    /// Register the handler behind the dedicated self-virtualization
    /// vectors (`SELF_VIRT_ATTACH`/`DETACH`/`RENDEZVOUS`).  Mercury
    /// installs its mode-switch routines here.
    pub fn set_self_virt_sink(&self, sink: Arc<dyn InterruptSink>) {
        *self.self_virt.write() = Some(sink);
    }

    fn lock_state(&self, cpu: &Arc<Cpu>) -> parking_lot::MutexGuard<'_, KState> {
        if self.smp {
            cpu.tick(costs::SMP_LOCK);
        }
        self.state.lock()
    }

    /// Run `f` under the kernel lock (crate-internal and test use).
    #[allow(dead_code)]
    pub(crate) fn with_state<R>(&self, cpu: &Arc<Cpu>, f: impl FnOnce(&mut KState) -> R) -> R {
        let mut st = self.lock_state(cpu);
        f(&mut st)
    }

    // -----------------------------------------------------------------
    // Process construction / exec
    // -----------------------------------------------------------------

    /// Build a fresh process running `prog` (used for init and exec).
    fn build_process(
        &self,
        st: &mut KState,
        cpu: &Arc<Cpu>,
        parent: Pid,
        prog: &str,
    ) -> Result<Process, KernelError> {
        let pid = Pid(st.next_pid);
        st.next_pid += 1;
        let aspace = self.build_image_aspace(st, cpu, prog)?;
        Ok(Process {
            pid,
            parent,
            state: ProcState::Ready,
            aspace,
            fds: Vec::new(),
            kstack: Vec::new(),
            prog: prog.to_string(),
            mmap_cursor: layout::MMAP_BASE,
            signalled: false,
        })
    }

    /// Build and populate an address space for `prog`: text shared
    /// read-only, data copied, bss/heap/stack demand-zero.
    fn build_image_aspace(
        &self,
        st: &mut KState,
        cpu: &Arc<Cpu>,
        prog: &str,
    ) -> Result<AddressSpace, KernelError> {
        let pv = self.pv();
        let image = st.programs.get(prog)?.clone();
        let KState { pool, .. } = st;
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool,
            kmap: &self.kmap,
        };
        let mut asp = AddressSpace::new(&mut ctx, &self.kernel_pdes)?;

        // Text: shared RO.
        let text_start = layout::TEXT_BASE;
        for (i, frame) in image.text.iter().enumerate() {
            ctx.pool.incref(*frame);
            asp.map_page(
                &mut ctx,
                VirtAddr(text_start + i as u64 * PAGE_SIZE),
                *frame,
                Pte::ACCESSED,
            )?;
        }
        asp.add_vma(Vma {
            start: text_start,
            end: text_start + image.text.len() as u64 * PAGE_SIZE,
            prot: Prot::RO,
            kind: VmaKind::Image {
                prog: prog.to_string(),
                page_off: 0,
                private: false,
            },
        });

        // Data: private copies.
        let data_start = text_start + image.text.len() as u64 * PAGE_SIZE;
        for (i, src) in image.data.iter().enumerate() {
            let copy = ctx.pool.alloc(cpu).ok_or(KernelError::NoMem)?;
            ctx.mem.copy_frame(cpu, *src, copy)?;
            asp.map_page(
                &mut ctx,
                VirtAddr(data_start + i as u64 * PAGE_SIZE),
                copy,
                Pte::WRITABLE | Pte::ACCESSED | Pte::DIRTY,
            )?;
        }
        asp.add_vma(Vma {
            start: data_start,
            end: data_start + image.data.len() as u64 * PAGE_SIZE,
            prot: Prot::RW,
            kind: VmaKind::Anon,
        });

        // bss, heap, stack: demand zero.
        let bss_start = data_start + image.data.len() as u64 * PAGE_SIZE;
        asp.add_vma(Vma {
            start: bss_start,
            end: bss_start + image.bss_pages as u64 * PAGE_SIZE,
            prot: Prot::RW,
            kind: VmaKind::Anon,
        });
        asp.add_vma(Vma {
            start: layout::HEAP_BASE,
            end: layout::HEAP_BASE + image.heap_pages as u64 * PAGE_SIZE,
            prot: Prot::RW,
            kind: VmaKind::Anon,
        });
        asp.add_vma(Vma {
            start: layout::STACK_TOP - layout::STACK_PAGES * PAGE_SIZE,
            end: layout::STACK_TOP,
            prot: Prot::RW,
            kind: VmaKind::Anon,
        });

        asp.pin(&mut ctx)?;
        Ok(asp)
    }

    // -----------------------------------------------------------------
    // Scheduling / context switch
    // -----------------------------------------------------------------

    /// Switch `cpu` to `next`.  The previous process's trap context is
    /// pushed to its kernel stack; the next one's is popped and its
    /// cached segment selectors are checked against the current GDT —
    /// the exact mechanism whose staleness across a mode switch §5.1.2
    /// fixes with a stack stub.
    fn do_switch(&self, st: &mut KState, cpu: &Arc<Cpu>, next: Pid) -> Result<(), KernelError> {
        let pv = self.pv();
        cpu.tick(costs::CTX_SWITCH_BASE);
        pv.context_switch_extra(cpu);
        let gdt = cpu.current_gdt();

        if let Some(prev) = st.sched.current(cpu.id) {
            if let Some(p) = st.procs.get_mut(&prev.0) {
                p.kstack.push(SavedTrapContext {
                    cs: gdt.kernel_cs(),
                    ss: gdt.kernel_ss(),
                });
                if p.state == ProcState::Running {
                    p.state = ProcState::Ready;
                    st.sched.enqueue(prev);
                }
            }
        }

        let nextp = st.procs.get_mut(&next.0).ok_or(KernelError::NoProcess)?;
        pv.load_base_table(cpu, nextp.aspace.pgd)?;
        pv.set_kernel_stack(cpu, layout::STACK_TOP)?;
        if let Some(saved) = nextp.kstack.pop() {
            cpu.tick(costs::MEM_WORD * 4);
            // Popping a stale selector raises #GP, as on hardware.
            gdt.check_selector(saved.cs)?;
            gdt.check_selector(saved.ss)?;
        }
        nextp.state = ProcState::Running;
        st.sched.current[cpu.id] = Some(next);
        st.sched.need_resched[cpu.id] = false;
        Ok(())
    }

    /// Block the current process and run something else.  Returns the
    /// new current pid, or None if the CPU went idle.
    fn block_current(
        &self,
        st: &mut KState,
        cpu: &Arc<Cpu>,
        on: BlockOn,
    ) -> Result<Option<Pid>, KernelError> {
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        {
            let p = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
            p.state = ProcState::Blocked(on);
        }
        match st.sched.pick_next() {
            Some(next) => {
                self.do_switch(st, cpu, next)?;
                Ok(Some(next))
            }
            None => {
                // Idle: push the blocked process's context and park.
                let gdt = cpu.current_gdt();
                if let Some(p) = st.procs.get_mut(&cur.0) {
                    p.kstack.push(SavedTrapContext {
                        cs: gdt.kernel_cs(),
                        ss: gdt.kernel_ss(),
                    });
                }
                st.sched.current[cpu.id] = None;
                Ok(None)
            }
        }
    }

    fn wake_matching(st: &mut KState, pred: impl Fn(BlockOn) -> bool) {
        let to_wake: Vec<Pid> = st
            .procs
            .values()
            .filter_map(|p| match p.state {
                ProcState::Blocked(on) if pred(on) => Some(p.pid),
                _ => None,
            })
            .collect();
        for pid in to_wake {
            if let Some(p) = st.procs.get_mut(&pid.0) {
                p.state = ProcState::Ready;
            }
            st.sched.enqueue(pid);
        }
    }

    /// If this CPU is idle and something is runnable, run it.  Returns
    /// the new current pid.
    pub fn resume_if_idle(&self, cpu: &Arc<Cpu>) -> Result<Option<Pid>, KernelError> {
        let mut st = self.lock_state(cpu);
        if st.sched.current(cpu.id).is_some() {
            return Ok(st.sched.current(cpu.id));
        }
        match st.sched.pick_next() {
            Some(next) => {
                self.do_switch(&mut st, cpu, next)?;
                Ok(Some(next))
            }
            None => {
                // Truly idle: donate a bounded quantum to the registered
                // idle task (background frame revalidation) instead of
                // spinning the cycles away.  The state lock is dropped
                // first — the task may call back into kernel services.
                drop(st);
                let task = self.idle_task.read().clone();
                if let Some(task) = task {
                    let used = task(cpu, IDLE_DONATION_QUANTUM);
                    debug_assert!(
                        used <= IDLE_DONATION_QUANTUM,
                        "idle task overran its {IDLE_DONATION_QUANTUM}-cycle budget: {used}"
                    );
                }
                Ok(None)
            }
        }
    }

    /// Run the idle loop until this CPU reaches absolute cycle `target`
    /// or a process becomes runnable, fast-forwarding idle spans
    /// through the machine's event clock.
    ///
    /// The wait is walked deadline to deadline (the CPU's timer, any
    /// pending event-clock entry, `target` — whichever is first).  Each
    /// segment services the timer and pending interrupts, offers the
    /// scheduler a chance to resume work, drains the registered
    /// [`IdleTask`]'s backlog at [`IDLE_DONATION_QUANTUM`]-cycle grain,
    /// and only then skips the cycles nobody claimed.  Accounting is
    /// identical in both skip modes (`simx86::evclock`); in particular
    /// every timer tick still fires at its programmed cycle.
    ///
    /// Returns the pid that became runnable, or `None` if the CPU idled
    /// all the way to `target`.
    ///
    /// ```
    /// use nimbus::kernel::{BootMode, Kernel, KernelConfig};
    /// use simx86::{Machine, MachineConfig};
    /// use std::sync::Arc;
    ///
    /// let machine = Machine::new(MachineConfig::smp());
    /// let boot = machine.boot_cpu();
    /// let pool = machine.allocator.alloc_many(boot, 8 * 1024).unwrap();
    /// let kernel = Kernel::boot(
    ///     Arc::clone(&machine),
    ///     KernelConfig { pool, mode: BootMode::Bare, fs_blocks: 128, fs_first_block: 1 },
    /// )
    /// .unwrap();
    ///
    /// // CPU 1 has nothing to run: the idle span skips to the target.
    /// let cpu = &machine.cpus[1];
    /// let target = cpu.cycles() + 30_000_000;
    /// assert!(kernel.idle_until(cpu, target).unwrap().is_none());
    /// assert_eq!(cpu.cycles(), target);
    /// ```
    pub fn idle_until(&self, cpu: &Arc<Cpu>, target: u64) -> Result<Option<Pid>, KernelError> {
        let task = self.idle_task.read().clone();
        loop {
            let now = cpu.cycles();
            if now >= target {
                return Ok(None);
            }
            self.machine.timer.poll(cpu);
            cpu.service_pending();
            {
                let mut st = self.lock_state(cpu);
                if st.sched.current(cpu.id).is_some() {
                    return Ok(st.sched.current(cpu.id));
                }
                if let Some(next) = st.sched.pick_next() {
                    self.do_switch(&mut st, cpu, next)?;
                    return Ok(Some(next));
                }
            }
            // Nothing runnable: give the idle task the segment up to
            // the next deadline, one quantum at a time, then skip the
            // cycles it left over.  (The state lock is dropped above —
            // the task may call back into kernel services.)
            let mut stop = target;
            if let Some(d) = self.machine.timer.next_deadline(cpu.id) {
                if d > now {
                    stop = stop.min(d);
                }
            }
            if let Some(d) = self.machine.evclock.next_due() {
                if d > now {
                    stop = stop.min(d);
                }
            }
            if let Some(task) = &task {
                while cpu.cycles() + IDLE_DONATION_QUANTUM <= stop {
                    let used = task(cpu, IDLE_DONATION_QUANTUM);
                    debug_assert!(
                        used <= IDLE_DONATION_QUANTUM,
                        "idle task overran its {IDLE_DONATION_QUANTUM}-cycle budget: {used}"
                    );
                    if used == 0 {
                        break;
                    }
                }
            }
            self.machine.evclock.advance(cpu, stop);
        }
    }

    /// Register (or clear, with `None`) the idle-loop donation task.
    ///
    /// The task runs whenever a CPU's idle loop finds nothing runnable,
    /// with a budget of [`IDLE_DONATION_QUANTUM`] cycles per pass; it
    /// returns the cycles it actually consumed.  Mercury's background
    /// scrubber rides this to revalidate dirty frames while native, so
    /// the next attach finds a shorter dirty set.
    pub fn set_idle_task(&self, task: Option<IdleTask>) {
        *self.idle_task.write() = task;
    }

    /// Enable or disable involuntary preemption (`CONFIG_PREEMPT`).
    pub fn set_preemptible(&self, on: bool) {
        self.preemptible.store(on, Ordering::Release);
    }

    /// Involuntary preemption: if the timer tick requested a reschedule
    /// and another process is runnable, switch to it.  Called at
    /// syscall-exit service points (kernel preemption points); a no-op
    /// unless [`Kernel::set_preemptible`] enabled it.
    pub fn maybe_preempt(&self, cpu: &Arc<Cpu>) -> Result<bool, KernelError> {
        if !self.preemptible.load(Ordering::Acquire) {
            return Ok(false);
        }
        let mut st = self.lock_state(cpu);
        if !st.sched.need_resched[cpu.id] {
            return Ok(false);
        }
        st.sched.need_resched[cpu.id] = false;
        if st.sched.current(cpu.id).is_none() {
            return Ok(false);
        }
        match st.sched.pick_next() {
            Some(next) if Some(next) != st.sched.current(cpu.id) => {
                self.do_switch(&mut st, cpu, next)?;
                Ok(true)
            }
            Some(next) => {
                // Only ourselves runnable: keep running.
                st.sched.enqueue(next);
                Ok(false)
            }
            None => Ok(false),
        }
    }

    /// Voluntarily yield the CPU round-robin.
    pub fn sched_yield(&self, cpu: &Arc<Cpu>) -> Result<Pid, KernelError> {
        let mut st = self.lock_state(cpu);
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        match st.sched.pick_next() {
            Some(next) if next != cur => {
                self.do_switch(&mut st, cpu, next)?;
                Ok(next)
            }
            _ => Ok(cur),
        }
    }

    /// Directed yield: switch `cpu` to `pid` if it is ready (or already
    /// current).  Lets multi-process drivers act for a specific process
    /// deterministically.
    pub fn yield_to(&self, cpu: &Arc<Cpu>, pid: Pid) -> Result<(), KernelError> {
        let mut st = self.lock_state(cpu);
        if st.sched.current(cpu.id) == Some(pid) {
            return Ok(());
        }
        let ready = st
            .procs
            .get(&pid.0)
            .map(|p| p.state == ProcState::Ready)
            .unwrap_or(false);
        if !ready {
            return Err(KernelError::Invalid("yield_to target not ready"));
        }
        st.sched.remove(pid);
        self.do_switch(&mut st, cpu, pid)
    }

    /// The process currently on `cpu`.
    pub fn current_pid(&self, cpu: &Arc<Cpu>) -> Option<Pid> {
        self.state.lock().sched.current(cpu.id)
    }

    // -----------------------------------------------------------------
    // Syscalls: processes
    // -----------------------------------------------------------------

    /// `fork`: copy the current process with a COW address space.
    pub fn fork(&self, cpu: &Arc<Cpu>) -> Result<Pid, KernelError> {
        let pv = self.pv();
        cpu.tick(costs::FORK_BASE);
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let child_pid = Pid(st.next_pid);
        st.next_pid += 1;

        let parent = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool: &mut st.pool,
            kmap: &self.kmap,
        };
        let child_as = parent.aspace.fork_from(&mut ctx, &self.kernel_pdes)?;
        let child = Process {
            pid: child_pid,
            parent: cur,
            state: ProcState::Ready,
            aspace: child_as,
            fds: parent.fds.clone(),
            kstack: vec![SavedTrapContext {
                cs: cpu.current_gdt().kernel_cs(),
                ss: cpu.current_gdt().kernel_ss(),
            }],
            prog: parent.prog.clone(),
            mmap_cursor: parent.mmap_cursor,
            signalled: false,
        };
        // Duplicate pipe end references.
        for d in child.fds.iter().flatten() {
            match d {
                Desc::PipeR(id) => {
                    if let Some(p) = st.pipes.get_mut(id) {
                        p.readers += 1;
                    }
                }
                Desc::PipeW(id) => {
                    if let Some(p) = st.pipes.get_mut(id) {
                        p.writers += 1;
                    }
                }
                _ => {}
            }
        }
        st.procs.insert(child_pid.0, child);
        st.sched.enqueue(child_pid);
        Ok(child_pid)
    }

    /// `execve`: replace the current image with `prog`.
    pub fn exec(&self, cpu: &Arc<Cpu>, prog: &str) -> Result<(), KernelError> {
        let pv = self.pv();
        cpu.tick(costs::EXEC_BASE);
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let new_as = self.build_image_aspace(st, cpu, prog)?;
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        let old = std::mem::replace(&mut proc.aspace, new_as);
        proc.prog = prog.to_string();
        proc.mmap_cursor = layout::MMAP_BASE;
        let pgd = proc.aspace.pgd;
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool: &mut st.pool,
            kmap: &self.kmap,
        };
        old.destroy(&mut ctx)?;
        pv.load_base_table(cpu, pgd)?;
        Ok(())
    }

    /// `exit`: terminate the current process.  Returns the pid now
    /// running on this CPU (None = idle).
    pub fn exit(&self, cpu: &Arc<Cpu>, code: i32) -> Result<Option<Pid>, KernelError> {
        let pv = self.pv();
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let proc = st.procs.remove(&cur.0).ok_or(KernelError::NoProcess)?;

        // Close descriptors (dropping pipe end counts wakes peers).
        for d in proc.fds.iter().flatten() {
            match d {
                Desc::PipeR(id) => {
                    if let Some(p) = st.pipes.get_mut(id) {
                        p.readers = p.readers.saturating_sub(1);
                    }
                }
                Desc::PipeW(id) => {
                    if let Some(p) = st.pipes.get_mut(id) {
                        p.writers = p.writers.saturating_sub(1);
                    }
                }
                Desc::Sock(id) => st.socks.close(*id),
                Desc::File { .. } => {}
            }
        }
        // Pipe peers may be unblocked by the closed descriptors; the
        // parent wakes only if it is actually waiting (a broadcast here
        // lets the wrong waiter win the run queue and mis-reap).
        Self::wake_matching(st, |on| {
            matches!(on, BlockOn::PipeRead(_) | BlockOn::PipeWrite(_))
        });
        let parent = proc.parent;
        if let Some(p) = st.procs.get_mut(&parent.0) {
            if p.state == ProcState::Blocked(BlockOn::Wait) {
                p.state = ProcState::Ready;
                st.sched.enqueue(parent);
            }
        }

        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool: &mut st.pool,
            kmap: &self.kmap,
        };
        proc.aspace.destroy(&mut ctx)?;
        st.zombies.insert(cur.0, (proc.parent, code));
        st.sched.current[cpu.id] = None;
        st.sched.remove(cur);

        match st.sched.pick_next() {
            Some(next) => {
                self.do_switch(st, cpu, next)?;
                Ok(Some(next))
            }
            None => Ok(None),
        }
    }

    /// `waitpid(-1)`: reap any zombie child, or block.
    pub fn waitpid(&self, cpu: &Arc<Cpu>) -> Result<Option<(Pid, i32)>, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let child = st
            .zombies
            .iter()
            .find(|(_, (parent, _))| *parent == cur)
            .map(|(&pid, &(_, code))| (Pid(pid), code));
        match child {
            Some((pid, code)) => {
                st.zombies.remove(&pid.0);
                cpu.tick(800); // reap bookkeeping
                Ok(Some((pid, code)))
            }
            None => {
                self.block_current(st, cpu, BlockOn::Wait)?;
                Ok(None)
            }
        }
    }

    // -----------------------------------------------------------------
    // Syscalls: pipes and file descriptors
    // -----------------------------------------------------------------

    /// `pipe`: returns (read fd, write fd).
    pub fn pipe(&self, cpu: &Arc<Cpu>) -> Result<(usize, usize), KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let id = st.next_pipe;
        st.next_pipe += 1;
        st.pipes.insert(
            id,
            Pipe {
                buf: Default::default(),
                readers: 1,
                writers: 1,
            },
        );
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        cpu.tick(1_200);
        Ok((
            proc.alloc_fd(Desc::PipeR(id)),
            proc.alloc_fd(Desc::PipeW(id)),
        ))
    }

    /// `read`: pipes block when empty; files read at the descriptor
    /// cursor.
    pub fn read(&self, cpu: &Arc<Cpu>, fd: usize, len: usize) -> Result<ReadOutcome, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let desc = st
            .procs
            .get(&cur.0)
            .and_then(|p| p.fd(fd))
            .ok_or(KernelError::BadFd)?;
        match desc {
            Desc::PipeR(id) => {
                let pipe = st.pipes.get_mut(&id).ok_or(KernelError::BadFd)?;
                if pipe.buf.is_empty() {
                    if pipe.writers == 0 {
                        return Ok(ReadOutcome::Data(Vec::new())); // EOF
                    }
                    self.block_current(st, cpu, BlockOn::PipeRead(id))?;
                    return Ok(ReadOutcome::Blocked);
                }
                let n = len.min(pipe.buf.len());
                let data: Vec<u8> = pipe.buf.drain(..n).collect();
                cpu.tick(600 + (n as u64) / 4);
                Self::wake_matching(st, |on| on == BlockOn::PipeWrite(id));
                Ok(ReadOutcome::Data(data))
            }
            Desc::File { ino, pos } => {
                let driver = self.block_driver()?;
                let data = st.vfs.read(cpu, driver.as_ref(), ino, pos, len)?;
                let n = data.len() as u64;
                if let Some(p) = st.procs.get_mut(&cur.0) {
                    if let Some(Some(Desc::File { pos, .. })) = p.fds.get_mut(fd) {
                        *pos += n;
                    }
                }
                Ok(ReadOutcome::Data(data))
            }
            _ => Err(KernelError::BadFd),
        }
    }

    /// `write`: pipes block when full; files write at the cursor.
    pub fn write(
        &self,
        cpu: &Arc<Cpu>,
        fd: usize,
        data: &[u8],
    ) -> Result<WriteOutcome, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let desc = st
            .procs
            .get(&cur.0)
            .and_then(|p| p.fd(fd))
            .ok_or(KernelError::BadFd)?;
        match desc {
            Desc::PipeW(id) => {
                let pipe = st.pipes.get_mut(&id).ok_or(KernelError::BadFd)?;
                if pipe.space() < data.len() {
                    if pipe.readers == 0 {
                        return Err(KernelError::Invalid("broken pipe"));
                    }
                    self.block_current(st, cpu, BlockOn::PipeWrite(id))?;
                    return Ok(WriteOutcome::Blocked);
                }
                pipe.buf.extend(data.iter().copied());
                cpu.tick(600 + (data.len() as u64) / 4);
                Self::wake_matching(st, |on| on == BlockOn::PipeRead(id));
                Ok(WriteOutcome::Wrote(data.len()))
            }
            Desc::File { ino, pos } => {
                let driver = self.block_driver()?;
                let n = st.vfs.write(cpu, driver.as_ref(), ino, pos, data)?;
                if let Some(p) = st.procs.get_mut(&cur.0) {
                    if let Some(Some(Desc::File { pos, .. })) = p.fds.get_mut(fd) {
                        *pos += n as u64;
                    }
                }
                Ok(WriteOutcome::Wrote(n))
            }
            _ => Err(KernelError::BadFd),
        }
    }

    /// `close`.
    pub fn close(&self, cpu: &Arc<Cpu>, fd: usize) -> Result<(), KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let desc = st
            .procs
            .get_mut(&cur.0)
            .ok_or(KernelError::NoProcess)?
            .close_fd(fd)
            .ok_or(KernelError::BadFd)?;
        match desc {
            Desc::PipeR(id) => {
                if let Some(p) = st.pipes.get_mut(&id) {
                    p.readers = p.readers.saturating_sub(1);
                }
                Self::wake_matching(st, |on| on == BlockOn::PipeWrite(id));
            }
            Desc::PipeW(id) => {
                if let Some(p) = st.pipes.get_mut(&id) {
                    p.writers = p.writers.saturating_sub(1);
                }
                Self::wake_matching(st, |on| on == BlockOn::PipeRead(id));
            }
            Desc::Sock(id) => st.socks.close(id),
            Desc::File { .. } => {}
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Syscalls: filesystem
    // -----------------------------------------------------------------

    /// `open` (optionally creating).
    pub fn open(&self, cpu: &Arc<Cpu>, name: &str, create: bool) -> Result<usize, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let ino = match st.vfs.lookup(cpu, name) {
            Ok(ino) => ino,
            Err(KernelError::NoEnt) if create => st.vfs.create(cpu, name)?,
            Err(e) => return Err(e),
        };
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        Ok(proc.alloc_fd(Desc::File { ino, pos: 0 }))
    }

    /// `unlink`.
    pub fn unlink(&self, cpu: &Arc<Cpu>, name: &str) -> Result<(), KernelError> {
        let mut st = self.lock_state(cpu);
        st.vfs.unlink(cpu, name)
    }

    /// `stat` by name.
    pub fn stat(&self, cpu: &Arc<Cpu>, name: &str) -> Result<crate::fs::Stat, KernelError> {
        let st = self.lock_state(cpu);
        let ino = st.vfs.lookup(cpu, name)?;
        st.vfs.stat(cpu, ino)
    }

    /// Flush the filesystem (fsync-everything).
    pub fn sync(&self, cpu: &Arc<Cpu>) -> Result<usize, KernelError> {
        let driver = self.block_driver()?;
        let mut st = self.lock_state(cpu);
        let n = st.vfs.sync(cpu, driver.as_ref())?;
        driver.flush(cpu)?;
        Ok(n)
    }

    /// Reposition a file descriptor.
    pub fn lseek(&self, cpu: &Arc<Cpu>, fd: usize, pos: u64) -> Result<(), KernelError> {
        let mut st = self.lock_state(cpu);
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let p = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        match p.fds.get_mut(fd) {
            Some(Some(Desc::File { pos: fpos, .. })) => {
                *fpos = pos;
                Ok(())
            }
            _ => Err(KernelError::BadFd),
        }
    }

    // -----------------------------------------------------------------
    // Syscalls: memory
    // -----------------------------------------------------------------

    /// `mmap`: reserve `pages` of virtual memory.  Returns the base VA.
    pub fn mmap(
        &self,
        cpu: &Arc<Cpu>,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> Result<VirtAddr, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        let base = proc.mmap_cursor;
        proc.mmap_cursor += pages * PAGE_SIZE;
        cpu.tick(1_500); // vma bookkeeping
        let kind = match backing {
            MmapBacking::Anon => VmaKind::Anon,
            MmapBacking::File { ino, offset } => VmaKind::File { inode: ino, offset },
        };
        proc.aspace.add_vma(Vma {
            start: base,
            end: base + pages * PAGE_SIZE,
            prot,
            kind,
        });
        Ok(VirtAddr(base))
    }

    /// `munmap`.
    pub fn munmap(&self, cpu: &Arc<Cpu>, va: VirtAddr, pages: u64) -> Result<u64, KernelError> {
        let pv = self.pv();
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool: &mut st.pool,
            kmap: &self.kmap,
        };
        let freed = proc.aspace.unmap_range(&mut ctx, va, pages)?;
        // LIFO address reuse: unmapping the most recent mapping winds
        // the placement cursor back, so mmap/munmap loops do not march
        // through the whole user region.
        if proc.mmap_cursor == va.0 + pages * PAGE_SIZE {
            proc.mmap_cursor = va.0;
        }
        Ok(freed)
    }

    /// `mprotect`.
    pub fn mprotect(
        &self,
        cpu: &Arc<Cpu>,
        va: VirtAddr,
        pages: u64,
        prot: Prot,
    ) -> Result<(), KernelError> {
        let pv = self.pv();
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool: &mut st.pool,
            kmap: &self.kmap,
        };
        proc.aspace.protect_range(&mut ctx, va, pages, prot)
    }

    // -----------------------------------------------------------------
    // Page faults and user memory
    // -----------------------------------------------------------------

    /// The page-fault handler (runs in interrupt context via the gate).
    pub fn handle_page_fault(&self, cpu: &Arc<Cpu>, va: VirtAddr, access: AccessKind) {
        let pv = self.pv();
        let mut st = self.lock_state(cpu);
        let KState {
            procs,
            pool,
            programs,
            vfs,
            sched,
            ..
        } = &mut *st;
        let Some(cur) = sched.current(cpu.id) else {
            return;
        };
        let Some(proc) = procs.get_mut(&cur.0) else {
            return;
        };
        let vma = proc.aspace.vma_at(va).cloned();
        let mut ctx = MmCtx {
            cpu,
            pv: &pv,
            mem: &self.machine.mem,
            pool,
            kmap: &self.kmap,
        };
        use crate::mm::FaultFix;
        let fix = match proc.aspace.handle_anon_fault(&mut ctx, va, access) {
            Ok(f) => f,
            Err(_) => FaultFix::Signal,
        };
        if fix != FaultFix::Signal {
            return;
        }
        // Backed kinds need data the address space can't reach.
        let Some(vma) = vma else {
            proc.signalled = true;
            return;
        };
        if access == AccessKind::Write && !vma.prot.write {
            proc.signalled = true;
            return;
        }
        let page = (va.page_base().0 - vma.start) / PAGE_SIZE;
        let result: Result<(), KernelError> = (|| match &vma.kind {
            VmaKind::Image {
                prog,
                page_off,
                private,
            } => {
                let image = programs.get(prog)?.clone();
                let idx = *page_off + page as usize;
                let src = *image.text.get(idx).ok_or(KernelError::BadAddress)?;
                if *private {
                    let copy = ctx.pool.alloc(cpu).ok_or(KernelError::NoMem)?;
                    ctx.mem.copy_frame(cpu, src, copy)?;
                    proc.aspace.map_page(
                        &mut ctx,
                        va.page_base(),
                        copy,
                        Pte::WRITABLE | Pte::ACCESSED,
                    )?;
                } else {
                    ctx.pool.incref(src);
                    proc.aspace
                        .map_page(&mut ctx, va.page_base(), src, Pte::ACCESSED)?;
                }
                Ok(())
            }
            VmaKind::File { inode, offset } => {
                let driver = self.block_driver()?;
                let file_off = offset + page * PAGE_SIZE;
                let data = vfs.read(cpu, driver.as_ref(), *inode, file_off, BLOCK_SIZE)?;
                let frame = ctx.pool.alloc(cpu).ok_or(KernelError::NoMem)?;
                ctx.mem.zero_frame(cpu, frame)?;
                if !data.is_empty() {
                    ctx.mem.write_bytes(frame.base(), &data)?;
                    cpu.tick(data.len() as u64 / 4);
                }
                let flags = if vma.prot.write {
                    Pte::WRITABLE | Pte::ACCESSED
                } else {
                    Pte::ACCESSED
                };
                proc.aspace
                    .map_page(&mut ctx, va.page_base(), frame, flags)?;
                Ok(())
            }
            VmaKind::Anon => Err(KernelError::BadAddress),
        })();
        if result.is_err() {
            proc.signalled = true;
        }
    }

    /// Perform a user-mode memory access at `va` (the workload's "touch
    /// a byte").  Faults are delivered through the gate table and
    /// resolved by the handler, exactly as user code would experience.
    pub fn user_access(
        &self,
        cpu: &Arc<Cpu>,
        va: VirtAddr,
        write: bool,
    ) -> Result<simx86::mem::PhysAddr, KernelError> {
        let access = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        for _attempt in 0..3 {
            match Mmu::translate(&self.machine.mem, cpu, va, access, true) {
                Ok(pa) => return Ok(pa),
                Err(fault) if fault.is_page_fault() => {
                    cpu.tick(costs::TRAP_ENTER_NATIVE);
                    let error = va.0 | ((write as u64) << 62);
                    cpu.deliver_exception(vectors::PAGE_FAULT, error)?;
                    if self.current_signalled(cpu) {
                        return Err(KernelError::BadAddress);
                    }
                }
                Err(fault) => return Err(KernelError::Oops(fault)),
            }
        }
        Err(KernelError::BadAddress)
    }

    /// Is the current process of `cpu` signalled?
    pub fn current_signalled(&self, cpu: &Arc<Cpu>) -> bool {
        let st = self.state.lock();
        st.sched
            .current(cpu.id)
            .and_then(|pid| st.procs.get(&pid.0))
            .map(|p| p.signalled)
            .unwrap_or(false)
    }

    /// Clear the current process's pending signal (a benchmark's SIGSEGV
    /// handler).
    pub fn clear_signal(&self, cpu: &Arc<Cpu>) {
        let mut st = self.state.lock();
        if let Some(pid) = st.sched.current(cpu.id) {
            if let Some(p) = st.procs.get_mut(&pid.0) {
                p.signalled = false;
            }
        }
    }

    /// Write a word to user memory (through the MMU, faulting as
    /// needed).
    pub fn poke(&self, cpu: &Arc<Cpu>, va: VirtAddr, value: u64) -> Result<(), KernelError> {
        let pa = self.user_access(cpu, va, true)?;
        self.machine.mem.write_word(cpu, pa, value)?;
        Ok(())
    }

    /// Read a word from user memory.
    pub fn peek(&self, cpu: &Arc<Cpu>, va: VirtAddr) -> Result<u64, KernelError> {
        let pa = self.user_access(cpu, va, false)?;
        Ok(self.machine.mem.read_word(cpu, pa)?)
    }

    // -----------------------------------------------------------------
    // Syscalls: network
    // -----------------------------------------------------------------

    /// `socket` + `bind(port)`.
    pub fn socket(&self, cpu: &Arc<Cpu>, port: u16) -> Result<usize, KernelError> {
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let id = st
            .socks
            .bind(port)
            .ok_or(KernelError::Invalid("port in use"))?;
        cpu.tick(1_000);
        let proc = st.procs.get_mut(&cur.0).ok_or(KernelError::NoProcess)?;
        Ok(proc.alloc_fd(Desc::Sock(id)))
    }

    /// `sendto`.
    pub fn sendto(
        &self,
        cpu: &Arc<Cpu>,
        fd: usize,
        dst_port: u16,
        payload: &[u8],
    ) -> Result<(), KernelError> {
        let driver = self.net_driver()?;
        let src_port = {
            let mut st = self.lock_state(cpu);
            let st = &mut *st;
            let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
            let desc = st
                .procs
                .get(&cur.0)
                .and_then(|p| p.fd(fd))
                .ok_or(KernelError::BadFd)?;
            let Desc::Sock(id) = desc else {
                return Err(KernelError::BadFd);
            };
            st.socks.get(id).ok_or(KernelError::BadFd)?.port
        };
        let pkt = encode_packet(dst_port, src_port, payload);
        driver.send(cpu, &pkt)
    }

    /// Drain the network driver into socket receive queues.
    pub fn net_rx_pump(&self, cpu: &Arc<Cpu>) -> usize {
        let Ok(driver) = self.net_driver() else {
            return 0;
        };
        let mut delivered = 0;
        while let Some(pkt) = driver.recv(cpu) {
            let mut st = self.lock_state(cpu);
            if let Some((dst, src, payload)) = decode_packet(&pkt) {
                if st.socks.deliver(dst, src, payload.to_vec()) {
                    delivered += 1;
                    Self::wake_matching(&mut st, |on| matches!(on, BlockOn::SockRead(_)));
                }
            }
        }
        delivered
    }

    /// Non-blocking receive: pop a datagram if one is queued.
    pub fn recvfrom_nonblock(
        &self,
        cpu: &Arc<Cpu>,
        fd: usize,
    ) -> Result<Option<(u16, Vec<u8>)>, KernelError> {
        self.net_rx_pump(cpu);
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let desc = st
            .procs
            .get(&cur.0)
            .and_then(|p| p.fd(fd))
            .ok_or(KernelError::BadFd)?;
        let Desc::Sock(id) = desc else {
            return Err(KernelError::BadFd);
        };
        let sock = st.socks.get(id).ok_or(KernelError::BadFd)?;
        Ok(sock.rx.pop_front().inspect(|(_, data)| {
            cpu.tick(500 + data.len() as u64 / 4);
        }))
    }

    /// `recvfrom`: pop a datagram or block.
    pub fn recvfrom(&self, cpu: &Arc<Cpu>, fd: usize) -> Result<RecvOutcome, KernelError> {
        self.net_rx_pump(cpu);
        let mut st = self.lock_state(cpu);
        let st = &mut *st;
        let cur = st.sched.current(cpu.id).ok_or(KernelError::NoProcess)?;
        let desc = st
            .procs
            .get(&cur.0)
            .and_then(|p| p.fd(fd))
            .ok_or(KernelError::BadFd)?;
        let Desc::Sock(id) = desc else {
            return Err(KernelError::BadFd);
        };
        let sock = st.socks.get(id).ok_or(KernelError::BadFd)?;
        match sock.rx.pop_front() {
            Some((src, data)) => {
                cpu.tick(500 + data.len() as u64 / 4);
                Ok(RecvOutcome::Datagram(src, data))
            }
            None => {
                self.block_current(st, cpu, BlockOn::SockRead(id))?;
                Ok(RecvOutcome::Blocked)
            }
        }
    }

    // -----------------------------------------------------------------
    // Checkpoint / restore (§6.1)
    // -----------------------------------------------------------------

    /// Serialize the kernel's logical state.  The caller should have
    /// quiesced the workload; the filesystem is flushed so disk state is
    /// consistent with the image.
    pub fn freeze(&self, cpu: &Arc<Cpu>) -> Result<serde_json::Value, KernelError> {
        self.sync(cpu)?;
        let mut st = self.lock_state(cpu);
        st.frozen = true;
        let image = KernelImage {
            kmap: self.kmap.clone(),
            kernel_pdes: self.kernel_pdes.iter().map(|&(i, p)| (i, p.0)).collect(),
            procs: st.procs.clone(),
            zombies: st.zombies.clone(),
            sched: st.sched.clone(),
            pipes: st.pipes.clone(),
            next_pipe: st.next_pipe,
            socks: st.socks.clone(),
            vfs: st.vfs.clone(),
            programs: st.programs.clone(),
            next_pid: st.next_pid,
            pool: st.pool.clone(),
        };
        st.frozen = false;
        serde_json::to_value(&image)
            .map_err(|e| KernelError::Invalid(Box::leak(e.to_string().into_boxed_str())))
    }

    /// Rebuild a kernel from a frozen image on `machine`, translating
    /// frame references through `frame_map` (old → new physical frames;
    /// identity for an in-place restore).
    ///
    /// The page tables themselves arrived with the domain's frames; this
    /// reconstructs only the host-side kernel object around them.
    pub fn thaw(
        machine: Arc<Machine>,
        mode: BootMode,
        value: &serde_json::Value,
        frame_map: &HashMap<u32, u32>,
    ) -> Result<Arc<Kernel>, KernelError> {
        let image: KernelImage = serde_json::from_value(value.clone())
            .map_err(|_| KernelError::Invalid("malformed kernel image"))?;
        let tr = |f: u32| -> u32 { *frame_map.get(&f).unwrap_or(&f) };

        let mut kmap = image.kmap;
        kmap.translate(frame_map);
        let kernel_pdes: Vec<(usize, Pte)> = image
            .kernel_pdes
            .iter()
            .map(|&(i, p)| {
                let pte = Pte(p);
                (i, Pte::new(tr(pte.frame()), pte.0 & !0x0000_00ff_ffff_f000))
            })
            .collect();

        let mut pool = image.pool;
        pool.translate(frame_map);
        let mut programs = image.programs;
        programs.translate(frame_map);
        let mut procs = image.procs;
        for p in procs.values_mut() {
            p.aspace.translate(frame_map);
        }

        // The disk travelled separately (storage pre-copy); clean cache
        // entries must be re-read from the migrated platter so any
        // storage-level divergence surfaces instead of being masked by
        // stale cached copies.  Dirty blocks are the guest's unsynced
        // data and travel with the image.
        let mut vfs = image.vfs;
        vfs.cache.drop_clean();

        let pv: Arc<dyn PvOps> = match &mode {
            BootMode::Bare => crate::paravirt::BareOps::new(Arc::clone(&machine)),
            BootMode::Guest { hv, dom } => {
                crate::paravirt::XenOps::new(Arc::clone(hv), Arc::clone(dom))
            }
        };
        let smp = machine.num_cpus() > 1;
        let mut sched = image.sched;
        sched.current.resize(machine.num_cpus(), None);
        sched.need_resched.resize(machine.num_cpus(), false);

        let kernel = Arc::new_cyclic(|weak: &Weak<Kernel>| {
            let mut idt = IdtTable::new("nimbus");
            idt.set_gate(vectors::PAGE_FAULT, Arc::new(PageFaultSink(weak.clone())));
            idt.set_gate(vectors::GP_FAULT, Arc::new(GpSink(weak.clone())));
            idt.set_gate(vectors::TIMER, Arc::new(TimerSink(weak.clone())));
            idt.set_gate(vectors::NIC, Arc::new(NicSink(weak.clone())));
            idt.set_gate(vectors::DISK, Arc::new(DiskSink));
            idt.set_gate(vectors::MACHINE_CHECK, Arc::new(MceSink(weak.clone())));
            idt.set_gate(vectors::EVTCHN_UPCALL, Arc::new(EvtchnSink(weak.clone())));
            idt.set_gate(
                vectors::SELF_VIRT_ATTACH,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_DETACH,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_RENDEZVOUS,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            idt.set_gate(
                vectors::SELF_VIRT_UPDATE,
                Arc::new(SelfVirtSink(weak.clone())),
            );
            Kernel {
                machine: Arc::clone(&machine),
                pv: RwLock::new(pv),
                state: Mutex::new(KState {
                    pool,
                    procs,
                    zombies: image.zombies,
                    sched,
                    pipes: image.pipes,
                    next_pipe: image.next_pipe,
                    socks: image.socks,
                    vfs,
                    programs,
                    next_pid: image.next_pid,
                    frozen: false,
                }),
                idt: Arc::new(idt),
                kmap,
                kernel_pdes,
                block: RwLock::new(None),
                net: RwLock::new(None),
                timer_callbacks: Mutex::new(Vec::new()),
                self_virt: RwLock::new(None),
                patches: RwLock::new(HashMap::new()),
                preemptible: AtomicBool::new(false),
                idle_task: RwLock::new(None),
                mode: mode.clone(),
                smp,
                mce_seen: AtomicBool::new(false),
            }
        });
        kernel.install_traps_and_privilege()?;

        // Reload the current process's base table on each CPU.
        {
            let st = kernel.state.lock();
            for cpu in &kernel.machine.cpus {
                if let Some(pid) = st.sched.current(cpu.id) {
                    if let Some(p) = st.procs.get(&pid.0) {
                        kernel.pv().load_base_table(cpu, p.aspace.pgd)?;
                    }
                }
            }
        }
        kernel.machine.timer.start(
            machine.boot_cpu(),
            simx86::devices::timer::DEFAULT_PERIOD_CYCLES,
        );
        Ok(kernel)
    }

    // -----------------------------------------------------------------
    // Introspection for Mercury and tests
    // -----------------------------------------------------------------

    /// All page-table frames of all live processes plus the kernel's own
    /// tables — the set whose direct-map writability Mercury's state
    /// transfer flips (§5.1.2 item 1).
    pub fn all_table_frames(&self) -> Vec<FrameNum> {
        let st = self.state.lock();
        // volint::allow(SWITCH-ALLOC): table-frame enumeration buffer; built on the CP before the flip loop touches any PTE, §5.1.2 accepts it
        let mut v: Vec<FrameNum> = self.kmap.l1s.iter().map(|&(_, f)| f).collect();
        // volint::bound(64) — one aspace per live process, capped by the process table
        for p in st.procs.values() {
            // volint::allow(SWITCH-ALLOC): extends the same enumeration buffer
            v.extend(p.aspace.table_frames());
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All pinned base tables (every live process's pgd).
    pub fn all_pgds(&self) -> Vec<FrameNum> {
        let st = self.state.lock();
        // volint::allow(SWITCH-ALLOC): pgd list, one entry per live process, built before the transfer mutates anything
        st.procs.values().map(|p| p.aspace.pgd).collect()
    }

    /// Every frame the kernel's pool manages.
    pub fn pool_frames(&self) -> Vec<FrameNum> {
        self.state.lock().pool.all_frames()
    }

    /// Total saved trap contexts across all kernel stacks (what the
    /// §5.1.2 selector fixup must rewrite).
    pub fn kstack_contexts(&self) -> usize {
        let st = self.state.lock();
        st.procs.values().map(|p| p.kstack.len()).sum()
    }

    /// Visit every saved trap context mutably (Mercury's stack fixup).
    pub fn fix_kstack_selectors(&self, cpu: &Arc<Cpu>, f: impl Fn(&mut SavedTrapContext)) -> usize {
        let mut st = self.state.lock();
        let mut n = 0;
        // volint::bound(64) — one kstack walk per live process
        for p in st.procs.values_mut() {
            // volint::bound(8) — saved trap contexts per kernel stack, capped by nesting depth
            for ctx in p.kstack.iter_mut() {
                cpu.tick(costs::STACK_SELECTOR_FIX);
                f(ctx);
                n += 1;
            }
        }
        n
    }

    /// Buffer-cache statistics: (hits, misses, writebacks, dirty now).
    pub fn cache_stats(&self) -> (u64, u64, u64, usize) {
        let st = self.state.lock();
        let (h, m, w) = st.vfs.cache.stats;
        (h, m, w, st.vfs.cache.dirty_count())
    }

    /// The page-directory of the process currently on `cpu` (what a
    /// world switch into this kernel must load into CR3).
    pub fn current_pgd(&self, cpu: &Arc<Cpu>) -> Option<FrameNum> {
        let st = self.state.lock();
        st.sched
            .current(cpu.id)
            .and_then(|pid| st.procs.get(&pid.0))
            .map(|p| p.aspace.pgd)
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.state.lock().procs.len()
    }

    /// Jiffies elapsed.
    pub fn jiffies(&self) -> u64 {
        self.state.lock().sched.jiffies
    }

    /// The boot mode this kernel was brought up in.
    pub fn boot_mode(&self) -> &BootMode {
        &self.mode
    }

    /// Apply a live kernel patch (§6.4).  Returns the previous version.
    /// Patching is only safe while a VMM mediates execution — callers
    /// (Mercury's live-update scenario) enforce that.
    pub fn apply_patch(&self, name: &str, version: u64) -> Option<u64> {
        self.patches.write().insert(name.to_string(), version)
    }

    /// Version of an applied patch, if any.
    pub fn patch_version(&self, name: &str) -> Option<u64> {
        self.patches.read().get(name).copied()
    }

    /// All applied patches.
    pub fn patches(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .patches
            .read()
            .iter()
            .map(|(k, &ver)| (k.clone(), ver))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::block::NativeBlockDriver;
    use crate::drivers::net::NativeNetDriver;
    use crate::session::Session;
    use simx86::devices::EchoWire;
    use simx86::MachineConfig;

    fn machine(cpus: usize) -> Arc<Machine> {
        Machine::new(MachineConfig {
            num_cpus: cpus,
            mem_frames: 16 * 1024,
            disk_sectors: 64 * 1024,
        })
    }

    /// Boot a bare (native) kernel with drivers attached.
    fn boot_bare(machine: &Arc<Machine>) -> Arc<Kernel> {
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 4096,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(machine), bounce));
        kernel.set_net_driver(NativeNetDriver::new(Arc::clone(machine)));
        kernel
    }

    /// Boot a guest kernel on an always-on hypervisor (the X-0 shape).
    fn boot_guest(machine: &Arc<Machine>) -> (Arc<Hypervisor>, Arc<Kernel>) {
        let hv = Hypervisor::warm_up(machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let quota = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
        let dom = hv.create_domain(cpu, "dom0", quota.clone(), 0).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(machine),
            KernelConfig {
                pool: quota,
                mode: BootMode::Guest {
                    hv: Arc::clone(&hv),
                    dom,
                },
                fs_blocks: 4096,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = {
            let mut st = kernel.state.lock();
            st.pool.alloc(cpu).unwrap()
        };
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(machine), bounce));
        kernel.set_net_driver(NativeNetDriver::new(Arc::clone(machine)));
        (hv, kernel)
    }

    #[test]
    fn bare_boot_starts_init_at_pl0() {
        let m = machine(1);
        let k = boot_bare(&m);
        assert_eq!(k.exec_mode(), ExecMode::Native);
        assert_eq!(k.process_count(), 1);
        let cpu = m.boot_cpu();
        assert_eq!(cpu.pl(), PrivLevel::Pl0);
        assert_eq!(k.current_pid(cpu), Some(Pid(1)));
        assert!(cpu.interrupts_enabled());
        // The init address space is live in CR3.
        let pgd = k.all_pgds()[0];
        assert_eq!(cpu.read_cr3().unwrap(), pgd.0);
    }

    #[test]
    fn guest_boot_is_deprivileged_and_pinned() {
        let m = machine(1);
        let (hv, k) = boot_guest(&m);
        assert_eq!(k.exec_mode(), ExecMode::Virtual);
        let cpu = m.boot_cpu();
        assert_eq!(cpu.pl(), PrivLevel::Pl1);
        // init's pgd is a validated, pinned L2 in the hypervisor's eyes.
        let pgd = k.all_pgds()[0];
        let (typ, count) = hv.page_info.type_of(pgd);
        assert_eq!(typ, xenon::PageType::L2);
        assert!(count > 0);
        assert!(hv.page_info.get(pgd).pinned);
        // The hardware gate table is the hypervisor's.
        assert_eq!(cpu.current_idt().unwrap().owner, "xenon");
    }

    #[test]
    fn fork_exec_wait_exit_roundtrip() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let child = sess.fork().unwrap();
        assert_eq!(k.process_count(), 2);
        // Parent waits: blocks, child runs.
        assert_eq!(sess.waitpid().unwrap(), None);
        assert_eq!(sess.current_pid(), Some(child));
        sess.exec("hello").unwrap();
        let next = sess.exit(42).unwrap();
        // Parent was woken and rescheduled.
        assert_eq!(next, Some(Pid(1)));
        let (pid, code) = sess.waitpid().unwrap().unwrap();
        assert_eq!(pid, child);
        assert_eq!(code, 42);
        assert_eq!(k.process_count(), 1);
    }

    #[test]
    fn pipe_roundtrip_with_blocking() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let (rfd, wfd) = sess.pipe().unwrap();
        let child = sess.fork().unwrap();

        // Parent reads an empty pipe: blocks, child becomes current.
        match sess.read(rfd, 4).unwrap() {
            ReadOutcome::Blocked => {}
            other => panic!("expected block, got {other:?}"),
        }
        assert_eq!(sess.current_pid(), Some(child));
        // Child writes, which wakes the parent.
        assert_eq!(sess.write(wfd, b"ping").unwrap(), WriteOutcome::Wrote(4));
        // Child yields; parent resumes and reads.
        sess.sched_yield().unwrap();
        assert_eq!(sess.current_pid(), Some(Pid(1)));
        match sess.read(rfd, 4).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"ping"),
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn mmap_demand_zero_and_peek_poke() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 0xfeed).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 0xfeed);
        // Unmapped-beyond-vma access signals.
        let bad = VirtAddr(va.0 + 64 * PAGE_SIZE);
        assert!(sess.touch(bad, true).is_err());
        sess.clear_signal();
        // munmap drops the mapping.
        sess.munmap(va, 4).unwrap();
        assert!(sess.touch(va, false).is_err());
    }

    #[test]
    fn mprotect_write_protection_signals() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 1).unwrap();
        sess.mprotect(va, 2, Prot::RO).unwrap();
        assert!(sess.touch(va, true).is_err());
        sess.clear_signal();
        // Reads still work.
        assert_eq!(sess.peek(va).unwrap(), 1);
    }

    #[test]
    fn file_backed_mmap_reads_file_contents() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let fd = sess.open("data.bin", true).unwrap();
        let mut block = vec![0u8; BLOCK_SIZE];
        block[0] = 0xaa;
        block[1] = 0xbb;
        sess.write(fd, &block).unwrap();
        let ino = sess.stat("data.bin").unwrap().ino;
        let va = sess
            .mmap(1, Prot::RO, MmapBacking::File { ino, offset: 0 })
            .unwrap();
        let w = sess.peek(va).unwrap();
        assert_eq!(w & 0xffff, 0xbbaa);
    }

    #[test]
    fn cow_after_fork_is_isolated_between_processes() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 111).unwrap();
        let _child = sess.fork().unwrap();
        // Parent writes (COW break).
        sess.poke(va, 222).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 222);
        // Switch to the child: it still sees the original value.
        sess.sched_yield().unwrap();
        assert_eq!(sess.peek(va).unwrap(), 111);
    }

    #[test]
    fn fs_syscalls_roundtrip() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let fd = sess.open("f.txt", true).unwrap();
        sess.write(fd, b"hello world").unwrap();
        sess.lseek(fd, 6).unwrap();
        match sess.read(fd, 5).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"world"),
            other => panic!("{other:?}"),
        }
        assert_eq!(sess.stat("f.txt").unwrap().size, 11);
        sess.sync().unwrap();
        sess.unlink("f.txt").unwrap();
        assert!(sess.open("f.txt", false).is_err());
    }

    #[test]
    fn sockets_over_echo_wire() {
        let m = machine(1);
        m.nic.connect(Arc::new(EchoWire::with_transform(
            Arc::clone(&m.nic),
            Arc::clone(&m.intc),
            |pkt| {
                // Swap dst/src ports so the echo lands back on us.
                let mut out = pkt.to_vec();
                out.swap(0, 2);
                out.swap(1, 3);
                out
            },
        )));
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let fd = sess.socket(5000).unwrap();
        sess.sendto(fd, 7000, b"marco").unwrap();
        match sess.recvfrom(fd).unwrap() {
            RecvOutcome::Datagram(src, data) => {
                assert_eq!(src, 7000);
                assert_eq!(data, b"marco");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn guest_kernel_runs_the_same_workload() {
        // Behaviour consistency (§4.3): the same operations produce the
        // same results in virtual mode, just at different cost.
        let m = machine(1);
        let (_hv, k) = boot_guest(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 31337).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 31337);
        let child = sess.fork().unwrap();
        assert!(child.0 > 1);
        sess.poke(va, 999).unwrap();
        sess.sched_yield().unwrap();
        assert_eq!(sess.peek(va).unwrap(), 31337, "child sees pre-fork value");
        let fd = sess.open("g.txt", true).unwrap();
        sess.write(fd, b"guest").unwrap();
        assert_eq!(sess.stat("g.txt").unwrap().size, 5);
    }

    #[test]
    fn virtual_fork_costs_more_than_native_fork() {
        let m_native = machine(1);
        let k = boot_bare(&m_native);
        let sess = Session::new(Arc::clone(&k), 0);
        // Dirty some heap so fork has PTEs to copy.
        let va = sess.mmap(64, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        let t0 = sess.cpu().cycles();
        sess.fork().unwrap();
        let native_fork = sess.cpu().cycles() - t0;

        let m_virt = machine(1);
        let (_hv, k) = boot_guest(&m_virt);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(64, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        let t0 = sess.cpu().cycles();
        sess.fork().unwrap();
        let virtual_fork = sess.cpu().cycles() - t0;

        // With only 64 dirty pages the fixed FORK_BASE still dominates;
        // the full lmbench-calibrated ratio (≈5×) is asserted in the
        // workloads crate where fork copies a realistic working set.
        assert!(
            virtual_fork > native_fork * 3 / 2,
            "virtual fork ({virtual_fork}) must clearly exceed native ({native_fork})"
        );
    }

    #[test]
    fn timer_ticks_advance_jiffies() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let j0 = k.jiffies();
        // Burn past one timer period.
        sess.compute(simx86::devices::timer::DEFAULT_PERIOD_CYCLES + 1000);
        sess.service();
        assert!(k.jiffies() > j0);
    }

    #[test]
    fn freeze_thaw_preserves_logical_state() {
        let m = machine(1);
        let k = boot_bare(&m);
        let sess = Session::new(Arc::clone(&k), 0);
        let fd = sess.open("keep.txt", true).unwrap();
        sess.write(fd, b"survives").unwrap();
        let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 424242).unwrap();
        let image = k.freeze(m.boot_cpu()).unwrap();

        // In-place thaw (identity frame map): same machine, same frames.
        let k2 = Kernel::thaw(Arc::clone(&m), BootMode::Bare, &image, &HashMap::new()).unwrap();
        let bounce = m.allocator.alloc(m.boot_cpu()).unwrap();
        k2.set_block_driver(crate::drivers::block::NativeBlockDriver::new(
            Arc::clone(&m),
            bounce,
        ));
        let sess2 = Session::new(Arc::clone(&k2), 0);
        assert_eq!(sess2.current_pid(), Some(Pid(1)));
        assert_eq!(sess2.stat("keep.txt").unwrap().size, 8);
        assert_eq!(sess2.peek(va).unwrap(), 424242);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use crate::drivers::block::NativeBlockDriver;
    use crate::session::Session;
    use simx86::MachineConfig;

    fn boot_small(pool_frames: usize) -> (Arc<Machine>, Arc<Kernel>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 4096,
        });
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, pool_frames).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 128,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        (machine, kernel)
    }

    fn boot_smp_small() -> (Arc<Machine>, Arc<Kernel>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 2,
            mem_frames: 16 * 1024,
            disk_sectors: 4096,
        });
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 2048).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 128,
                fs_first_block: 1,
            },
        )
        .unwrap();
        (machine, kernel)
    }

    #[test]
    fn idle_until_skips_dead_time_but_keeps_timer_ticks() {
        let (m, k) = boot_smp_small();
        let cpu = &m.cpus[1];
        m.timer.start(cpu, 1_000_000);
        let ticks0 = m.timer.ticks(1);
        let target = cpu.cycles() + 10_000_000;
        assert!(k.idle_until(cpu, target).unwrap().is_none());
        assert!(cpu.cycles() >= target);
        // Fast-forwarding must not swallow timer interrupts: every
        // deadline inside the skipped span fired individually.
        assert!(m.timer.ticks(1) - ticks0 >= 9);
    }

    #[test]
    fn idle_until_donates_to_the_idle_task_before_skipping() {
        let (m, k) = boot_smp_small();
        let cpu = &m.cpus[1];
        let donated = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = Arc::clone(&donated);
        k.set_idle_task(Some(Arc::new(move |cpu, budget| {
            // Consume one quantum once, then report idle.
            if seen.swap(budget, Ordering::SeqCst) == 0 {
                cpu.tick(budget);
                budget
            } else {
                0
            }
        })));
        let target = cpu.cycles() + 1_000_000;
        assert!(k.idle_until(cpu, target).unwrap().is_none());
        assert_eq!(cpu.cycles(), target);
        assert_eq!(donated.load(Ordering::SeqCst), IDLE_DONATION_QUANTUM);
    }

    #[test]
    fn idle_until_returns_when_work_appears() {
        let (m, k) = boot_smp_small();
        // A forked child sits on the run queue; CPU 1's idle loop must
        // adopt it instead of skipping to the target.
        let sess = Session::new(Arc::clone(&k), 0);
        sess.fork().unwrap();
        let cpu = &m.cpus[1];
        let target = cpu.cycles() + 50_000_000;
        let pid = k.idle_until(cpu, target).unwrap();
        assert!(pid.is_some(), "runnable child must preempt the skip");
        assert!(cpu.cycles() < target, "no dead-time walk to the target");
    }

    #[test]
    fn exec_of_unknown_program_fails_cleanly() {
        let (_m, k) = boot_small(2048);
        let sess = Session::new(Arc::clone(&k), 0);
        assert!(matches!(
            sess.exec("no-such-binary"),
            Err(KernelError::NoProgram)
        ));
        // The process kept its old image and still works.
        assert_eq!(sess.current_pid(), Some(Pid(1)));
        let fd = sess.open("ok.txt", true).unwrap();
        sess.write(fd, b"fine").unwrap();
    }

    #[test]
    fn bad_fd_operations_are_rejected() {
        let (_m, k) = boot_small(2048);
        let sess = Session::new(Arc::clone(&k), 0);
        assert!(matches!(sess.read(42, 1), Err(KernelError::BadFd)));
        assert!(matches!(sess.write(42, b"x"), Err(KernelError::BadFd)));
        assert!(matches!(sess.close(42), Err(KernelError::BadFd)));
        assert!(matches!(sess.lseek(42, 0), Err(KernelError::BadFd)));
        // Type confusion: reading a socket with file semantics etc.
        let sfd = sess.socket(1000).unwrap();
        assert!(matches!(sess.read(sfd, 1), Err(KernelError::BadFd)));
        let (r, _w) = sess.pipe().unwrap();
        assert!(matches!(sess.lseek(r, 0), Err(KernelError::BadFd)));
    }

    #[test]
    fn pipe_eof_and_broken_pipe() {
        let (_m, k) = boot_small(2048);
        let sess = Session::new(Arc::clone(&k), 0);
        let (r, w) = sess.pipe().unwrap();
        sess.write(w, b"tail").unwrap();
        sess.close(w).unwrap();
        // Buffered data still readable, then EOF.
        assert_eq!(
            sess.read(r, 16).unwrap(),
            ReadOutcome::Data(b"tail".to_vec())
        );
        assert_eq!(sess.read(r, 16).unwrap(), ReadOutcome::Data(Vec::new()));
        // Writing with no readers is a broken pipe once the buffer is
        // full (our writers only fail on a full pipe with zero readers).
        let (r2, w2) = sess.pipe().unwrap();
        sess.close(r2).unwrap();
        let big = vec![0u8; crate::process::PIPE_CAPACITY + 1];
        assert!(matches!(
            sess.write(w2, &big),
            Err(KernelError::Invalid("broken pipe"))
        ));
    }

    #[test]
    fn frame_exhaustion_surfaces_as_nomem_and_kernel_survives() {
        // A pool just big enough to boot, too small for a big mapping.
        let (_m, k) = boot_small(700);
        let sess = Session::new(Arc::clone(&k), 0);
        let va = sess.mmap(4096, Prot::RW, MmapBacking::Anon).unwrap();
        let mut seen_nomem = false;
        for p in 0..4096u64 {
            match sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p) {
                Ok(()) => {}
                Err(_) => {
                    seen_nomem = true;
                    sess.clear_signal();
                    break;
                }
            }
        }
        assert!(seen_nomem, "pool should have run dry");
        // The kernel is still functional.
        let fd = sess.open("still-alive", true).unwrap();
        sess.write(fd, b"yes").unwrap();
        assert_eq!(sess.stat("still-alive").unwrap().size, 3);
    }

    #[test]
    fn fs_out_of_space_is_reported() {
        let (_m, k) = boot_small(2048); // fs has only 128 blocks
        let sess = Session::new(Arc::clone(&k), 0);
        let fd = sess.open("huge", true).unwrap();
        let chunk = vec![0u8; 4096];
        let mut failed = false;
        for _ in 0..256 {
            match sess.write(fd, &chunk) {
                Ok(_) => {}
                Err(KernelError::NoSpace) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "128-block fs cannot absorb 1 MiB");
        // Deleting frees space again.
        sess.unlink("huge").unwrap();
        let fd = sess.open("next", true).unwrap();
        sess.write(fd, &chunk).unwrap();
    }

    #[test]
    fn double_port_bind_rejected() {
        let (_m, k) = boot_small(2048);
        let sess = Session::new(Arc::clone(&k), 0);
        sess.socket(5555).unwrap();
        assert!(matches!(
            sess.socket(5555),
            Err(KernelError::Invalid("port in use"))
        ));
    }

    #[test]
    fn waitpid_without_children_blocks_to_idle() {
        let (_m, k) = boot_small(2048);
        let sess = Session::new(Arc::clone(&k), 0);
        assert_eq!(sess.waitpid().unwrap(), None);
        // Sole process blocked on Wait: CPU idles.
        assert_eq!(sess.current_pid(), None);
        assert_eq!(sess.idle().unwrap(), None);
    }
}

#[cfg(test)]
mod preempt_tests {
    use super::*;
    use crate::drivers::block::NativeBlockDriver;
    use crate::session::Session;
    use simx86::MachineConfig;

    #[test]
    fn timer_tick_preempts_between_cpu_bound_processes() {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 4096,
        });
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 256,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        kernel.set_preemptible(true);
        let sess = Session::new(Arc::clone(&kernel), 0);

        let a = sess.current_pid().unwrap();
        let b = sess.fork().unwrap();
        // Two CPU-bound processes: burn past timer ticks; the scheduler
        // must rotate them without any voluntary yield.
        let mut ran = std::collections::HashSet::new();
        for _ in 0..6 {
            sess.compute(simx86::devices::timer::DEFAULT_PERIOD_CYCLES + 1_000);
            // Any syscall is a preemption point.
            let _ = sess.stat("nonexistent");
            ran.insert(sess.current_pid().unwrap());
        }
        assert!(
            ran.contains(&a) && ran.contains(&b),
            "no time sharing: {ran:?}"
        );
    }

    #[test]
    fn sole_process_is_not_preempted_away() {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 4096,
        });
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 256,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        kernel.set_preemptible(true);
        let sess = Session::new(Arc::clone(&kernel), 0);
        let me = sess.current_pid().unwrap();
        for _ in 0..3 {
            sess.compute(simx86::devices::timer::DEFAULT_PERIOD_CYCLES + 1_000);
            let _ = sess.stat("x");
            assert_eq!(sess.current_pid(), Some(me));
        }
    }
}

#[cfg(test)]
mod yield_to_tests {
    use super::*;
    use crate::drivers::block::NativeBlockDriver;
    use crate::session::Session;
    use simx86::MachineConfig;

    #[test]
    fn directed_yield_targets_a_specific_process() {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 4096,
        });
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 256,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        let sess = Session::new(Arc::clone(&kernel), 0);

        let root = sess.current_pid().unwrap();
        let c1 = sess.fork().unwrap();
        let c2 = sess.fork().unwrap();
        // Jump straight to c2, skipping c1's queue position.
        sess.run_as(c2).unwrap();
        assert_eq!(sess.current_pid(), Some(c2));
        // Already current: idempotent.
        sess.run_as(c2).unwrap();
        // Back to the root, then c1.
        sess.run_as(root).unwrap();
        sess.run_as(c1).unwrap();
        assert_eq!(sess.current_pid(), Some(c1));
        // A blocked process is not a valid target.
        sess.run_as(root).unwrap();
        let (r, _w) = sess.pipe().unwrap();
        sess.run_as(c1).unwrap();
        // root reads c1's... build: make c2 block on the pipe.
        sess.run_as(c2).unwrap();
        // c2 has no fd for the pipe (forked before pipe creation), so
        // use waitpid to block it instead.
        assert_eq!(sess.waitpid().unwrap(), None);
        assert_ne!(sess.current_pid(), Some(c2));
        assert!(matches!(
            sess.run_as(c2),
            Err(KernelError::Invalid("yield_to target not ready"))
        ));
        let _ = r;
    }
}
