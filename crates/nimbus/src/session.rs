//! Sessions: how workload drivers enter the kernel.
//!
//! A session binds one host thread to one simulated CPU.  Each syscall
//! passes a *service point*: the timer is polled, pending interrupts are
//! dispatched, and the paravirt object's syscall entry/exit costs are
//! charged — the simulation's equivalent of the user/kernel boundary.

use crate::error::KernelError;
use crate::kernel::{Kernel, MmapBacking, ReadOutcome, RecvOutcome, WriteOutcome};
use crate::mm::Prot;
use crate::process::Pid;
use simx86::paging::{VirtAddr, PAGE_SIZE};
use simx86::{costs, Cpu};
use std::sync::Arc;

/// A driver-thread ↔ CPU binding.
pub struct Session {
    kernel: Arc<Kernel>,
    cpu: Arc<Cpu>,
}

impl Session {
    /// Open a session on CPU `cpu_id`.
    pub fn new(kernel: Arc<Kernel>, cpu_id: usize) -> Session {
        let cpu = Arc::clone(&kernel.machine.cpus[cpu_id]);
        Session { kernel, cpu }
    }

    /// The kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The CPU this session drives.
    pub fn cpu(&self) -> &Arc<Cpu> {
        &self.cpu
    }

    /// Pass a service point: poll devices/timer and deliver pending
    /// interrupts.
    pub fn service(&self) {
        self.kernel.machine.timer.poll(&self.cpu);
        self.cpu.service_pending();
    }

    fn enter(&self) {
        self.service();
        merctrace::span_begin!(self.cpu.id, "nimbus.syscall", self.cpu.cycles());
        self.kernel.pv().syscall_entry(&self.cpu);
    }

    fn leave(&self) {
        self.kernel.pv().syscall_exit(&self.cpu);
        merctrace::span_end!(self.cpu.id, "nimbus.syscall", self.cpu.cycles());
        // Kernel preemption point: honor a pending timer reschedule.
        let _ = self.kernel.maybe_preempt(&self.cpu);
    }

    fn syscall<R>(&self, f: impl FnOnce() -> Result<R, KernelError>) -> Result<R, KernelError> {
        self.enter();
        let r = f();
        self.leave();
        r
    }

    // ---- process management --------------------------------------------

    /// Current process on this CPU.
    pub fn current_pid(&self) -> Option<Pid> {
        self.kernel.current_pid(&self.cpu)
    }

    /// `fork`.
    pub fn fork(&self) -> Result<Pid, KernelError> {
        self.syscall(|| self.kernel.fork(&self.cpu))
    }

    /// `execve`.
    pub fn exec(&self, prog: &str) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.exec(&self.cpu, prog))
    }

    /// `exit`.
    pub fn exit(&self, code: i32) -> Result<Option<Pid>, KernelError> {
        self.syscall(|| self.kernel.exit(&self.cpu, code))
    }

    /// `waitpid(-1)`: `Ok(Some)` = reaped, `Ok(None)` = blocked.
    pub fn waitpid(&self) -> Result<Option<(Pid, i32)>, KernelError> {
        self.syscall(|| self.kernel.waitpid(&self.cpu))
    }

    /// `sched_yield`.
    pub fn sched_yield(&self) -> Result<Pid, KernelError> {
        self.syscall(|| self.kernel.sched_yield(&self.cpu))
    }

    /// Directed yield: make `pid` current (it must be ready).
    pub fn run_as(&self, pid: Pid) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.yield_to(&self.cpu, pid))
    }

    /// Run the idle loop once: service interrupts and schedule anything
    /// runnable.  Returns the running pid if any.
    pub fn idle(&self) -> Result<Option<Pid>, KernelError> {
        self.service();
        self.kernel.resume_if_idle(&self.cpu)
    }

    // ---- pipes / fds -----------------------------------------------------

    /// `pipe` → (read fd, write fd).
    pub fn pipe(&self) -> Result<(usize, usize), KernelError> {
        self.syscall(|| self.kernel.pipe(&self.cpu))
    }

    /// `read`.
    pub fn read(&self, fd: usize, len: usize) -> Result<ReadOutcome, KernelError> {
        self.syscall(|| self.kernel.read(&self.cpu, fd, len))
    }

    /// `write`.
    pub fn write(&self, fd: usize, data: &[u8]) -> Result<WriteOutcome, KernelError> {
        self.syscall(|| self.kernel.write(&self.cpu, fd, data))
    }

    /// `close`.
    pub fn close(&self, fd: usize) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.close(&self.cpu, fd))
    }

    // ---- filesystem --------------------------------------------------------

    /// `open`.
    pub fn open(&self, name: &str, create: bool) -> Result<usize, KernelError> {
        self.syscall(|| self.kernel.open(&self.cpu, name, create))
    }

    /// `unlink`.
    pub fn unlink(&self, name: &str) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.unlink(&self.cpu, name))
    }

    /// `stat`.
    pub fn stat(&self, name: &str) -> Result<crate::fs::Stat, KernelError> {
        self.syscall(|| self.kernel.stat(&self.cpu, name))
    }

    /// `sync`.
    pub fn sync(&self) -> Result<usize, KernelError> {
        self.syscall(|| self.kernel.sync(&self.cpu))
    }

    /// `lseek`.
    pub fn lseek(&self, fd: usize, pos: u64) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.lseek(&self.cpu, fd, pos))
    }

    // ---- memory --------------------------------------------------------------

    /// `mmap`.
    pub fn mmap(
        &self,
        pages: u64,
        prot: Prot,
        backing: MmapBacking,
    ) -> Result<VirtAddr, KernelError> {
        self.syscall(|| self.kernel.mmap(&self.cpu, pages, prot, backing))
    }

    /// `munmap`.
    pub fn munmap(&self, va: VirtAddr, pages: u64) -> Result<u64, KernelError> {
        self.syscall(|| self.kernel.munmap(&self.cpu, va, pages))
    }

    /// `mprotect`.
    pub fn mprotect(&self, va: VirtAddr, pages: u64, prot: Prot) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.mprotect(&self.cpu, va, pages, prot))
    }

    /// Touch one user page (read or write), faulting as needed.  This
    /// is "user code" — no syscall overhead, just the access and any
    /// fault handling.
    pub fn touch(&self, va: VirtAddr, write: bool) -> Result<(), KernelError> {
        self.kernel.user_access(&self.cpu, va, write)?;
        Ok(())
    }

    /// Touch a byte range, page by page, charging a cache-line cost per
    /// 64 bytes (the lmbench ctx-switch working-set model).
    pub fn touch_range(&self, va: VirtAddr, len: u64, write: bool) -> Result<(), KernelError> {
        let mut lines = 0u64;
        let mut page = va.page_base().0;
        let end = va.0 + len;
        while page < end {
            self.touch(VirtAddr(page), write)?;
            lines += (PAGE_SIZE.min(end - page)).div_ceil(64);
            page += PAGE_SIZE;
        }
        // Two-tier cache refill model (see costs.rs).
        let l2_lines = lines.min(costs::CACHE_L2_RESIDENT_LINES);
        let mem_lines = lines - l2_lines;
        self.cpu.tick(
            l2_lines * costs::CACHE_LINE_REFILL_L2 + mem_lines * costs::CACHE_LINE_REFILL_MEM,
        );
        Ok(())
    }

    /// Write a word in user memory.
    pub fn poke(&self, va: VirtAddr, value: u64) -> Result<(), KernelError> {
        self.kernel.poke(&self.cpu, va, value)
    }

    /// Read a word from user memory.
    pub fn peek(&self, va: VirtAddr) -> Result<u64, KernelError> {
        self.kernel.peek(&self.cpu, va)
    }

    /// Clear a pending SIGSEGV on the current process.
    pub fn clear_signal(&self) {
        self.kernel.clear_signal(&self.cpu)
    }

    // ---- network -----------------------------------------------------------

    /// `socket(port)`.
    pub fn socket(&self, port: u16) -> Result<usize, KernelError> {
        self.syscall(|| self.kernel.socket(&self.cpu, port))
    }

    /// `sendto`.
    pub fn sendto(&self, fd: usize, dst_port: u16, payload: &[u8]) -> Result<(), KernelError> {
        self.syscall(|| self.kernel.sendto(&self.cpu, fd, dst_port, payload))
    }

    /// `recvfrom`.
    pub fn recvfrom(&self, fd: usize) -> Result<RecvOutcome, KernelError> {
        self.syscall(|| self.kernel.recvfrom(&self.cpu, fd))
    }

    /// Non-blocking `recvfrom` (MSG_DONTWAIT).
    pub fn recvfrom_nonblock(&self, fd: usize) -> Result<Option<(u16, Vec<u8>)>, KernelError> {
        self.syscall(|| self.kernel.recvfrom_nonblock(&self.cpu, fd))
    }

    // ---- user compute ----------------------------------------------------

    /// Burn `cycles` of pure user-mode compute (identical in every
    /// execution mode — which is exactly why compute-bound workloads
    /// show little virtualization overhead).
    pub fn compute(&self, cycles: u64) {
        self.cpu.tick(cycles);
    }
}
