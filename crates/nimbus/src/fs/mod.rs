//! A small filesystem: a flat root directory of inodes whose data
//! blocks live on the simulated disk, reached through the buffer cache.
//!
//! Metadata (directory, inode table, free block list) is kept in kernel
//! memory and serialized with the kernel's logical state during
//! checkpoint/migration; data blocks persist on the (migratable) disk.
//! This is the deliberate simplification documented in DESIGN.md — the
//! benchmarks exercise data-path costs (cache hits/misses, driver
//! crossings), which is what distinguishes the paper's six systems.

pub mod buffer;

pub use buffer::{BufferCache, BLOCK_SIZE};

use crate::drivers::block::BlockDriver;
use crate::error::KernelError;
use serde::{Deserialize, Serialize};
use simx86::Cpu;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An on-"disk" file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inode {
    /// Inode number.
    pub ino: u32,
    /// File size in bytes.
    pub size: u64,
    /// Data blocks, in order.
    pub blocks: Vec<u64>,
}

/// File metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: u32,
    /// Size in bytes.
    pub size: u64,
    /// Allocated blocks.
    pub blocks: u64,
}

/// The filesystem.
#[derive(Clone, Serialize, Deserialize)]
pub struct Vfs {
    inodes: BTreeMap<u32, Inode>,
    root: BTreeMap<String, u32>,
    free_blocks: Vec<u64>,
    next_ino: u32,
    /// The buffer cache.
    pub cache: BufferCache,
}

impl Vfs {
    /// Make a filesystem over disk blocks `[first_block, first_block +
    /// num_blocks)`.
    pub fn mkfs(first_block: u64, num_blocks: u64) -> Vfs {
        Vfs {
            inodes: BTreeMap::new(),
            root: BTreeMap::new(),
            // Descending so pop() allocates the lowest block first.
            free_blocks: (first_block..first_block + num_blocks).rev().collect(),
            next_ino: 1,
            cache: BufferCache::new(buffer::DEFAULT_CAPACITY),
        }
    }

    /// Create an empty file.  Fails if the name exists.
    pub fn create(&mut self, cpu: &Arc<Cpu>, name: &str) -> Result<u32, KernelError> {
        cpu.tick(900); // dentry + inode alloc
        if self.root.contains_key(name) {
            return Err(KernelError::Exists);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(
            ino,
            Inode {
                ino,
                size: 0,
                blocks: Vec::new(),
            },
        );
        self.root.insert(name.to_string(), ino);
        Ok(ino)
    }

    /// Look a name up.
    pub fn lookup(&self, cpu: &Arc<Cpu>, name: &str) -> Result<u32, KernelError> {
        cpu.tick(350); // path walk
        self.root.get(name).copied().ok_or(KernelError::NoEnt)
    }

    /// `stat` by inode.
    pub fn stat(&self, cpu: &Arc<Cpu>, ino: u32) -> Result<Stat, KernelError> {
        cpu.tick(250);
        let i = self.inodes.get(&ino).ok_or(KernelError::NoEnt)?;
        Ok(Stat {
            ino,
            size: i.size,
            blocks: i.blocks.len() as u64,
        })
    }

    /// Remove a file and free its blocks (their cache entries are
    /// discarded so reallocation cannot resurrect stale data).
    pub fn unlink(&mut self, cpu: &Arc<Cpu>, name: &str) -> Result<(), KernelError> {
        cpu.tick(800);
        let ino = self.root.remove(name).ok_or(KernelError::NoEnt)?;
        if let Some(inode) = self.inodes.remove(&ino) {
            for b in &inode.blocks {
                self.cache.discard(*b);
            }
            self.free_blocks.extend(inode.blocks);
        }
        Ok(())
    }

    /// Directory listing (sorted).
    pub fn list(&self) -> Vec<String> {
        self.root.keys().cloned().collect()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.root.len()
    }

    /// Free data blocks remaining.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    /// Read up to `len` bytes at `pos`.
    pub fn read(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        ino: u32,
        pos: u64,
        len: usize,
    ) -> Result<Vec<u8>, KernelError> {
        let inode = self.inodes.get(&ino).ok_or(KernelError::NoEnt)?.clone();
        if pos >= inode.size {
            return Ok(Vec::new());
        }
        let len = len.min((inode.size - pos) as usize);
        let mut out = Vec::with_capacity(len);
        let mut cursor = pos;
        while out.len() < len {
            let bi = (cursor / BLOCK_SIZE as u64) as usize;
            let off = (cursor % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - off).min(len - out.len());
            let block = *inode.blocks.get(bi).ok_or(KernelError::BadAddress)?;
            let data = self.cache.read(cpu, driver, block)?;
            out.extend_from_slice(&data[off..off + take]);
            cursor += take as u64;
        }
        Ok(out)
    }

    /// Write `data` at `pos`, growing the file as needed.
    pub fn write(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        ino: u32,
        pos: u64,
        data: &[u8],
    ) -> Result<usize, KernelError> {
        // Grow the block list first, remembering which blocks are new:
        // their on-device content is a stale remnant and must read as
        // zeros.
        let end = pos + data.len() as u64;
        let mut fresh: Vec<u64> = Vec::new();
        {
            let inode = self.inodes.get_mut(&ino).ok_or(KernelError::NoEnt)?;
            let need_blocks = end.div_ceil(BLOCK_SIZE as u64) as usize;
            while inode.blocks.len() < need_blocks {
                let b = self.free_blocks.pop().ok_or(KernelError::NoSpace)?;
                fresh.push(b);
                inode.blocks.push(b);
            }
            inode.size = inode.size.max(end);
        }
        let blocks = self.inodes.get(&ino).expect("checked").blocks.clone();
        // Fresh blocks not touched by this write (a sparse gap) still
        // need their zeros established in the cache.
        let mut cursor = pos;
        let mut written = 0;
        while written < data.len() {
            let bi = (cursor / BLOCK_SIZE as u64) as usize;
            let off = (cursor % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - off).min(data.len() - written);
            let chunk = &data[written..written + take];
            if fresh.contains(&blocks[bi]) {
                self.cache
                    .write_fresh(cpu, driver, blocks[bi], off, chunk)?;
            } else {
                self.cache.write(cpu, driver, blocks[bi], off, chunk)?;
            }
            cursor += take as u64;
            written += take;
        }
        for b in fresh {
            let covered = blocks
                .iter()
                .position(|&x| x == b)
                .map(|bi| {
                    let bstart = bi as u64 * BLOCK_SIZE as u64;
                    pos < bstart + BLOCK_SIZE as u64 && end > bstart
                })
                .unwrap_or(false);
            if !covered {
                self.cache.write_fresh(cpu, driver, b, 0, &[])?;
            }
        }
        Ok(written)
    }

    /// Truncate a file to zero, freeing its blocks.
    pub fn truncate(&mut self, cpu: &Arc<Cpu>, ino: u32) -> Result<(), KernelError> {
        cpu.tick(500);
        let inode = self.inodes.get_mut(&ino).ok_or(KernelError::NoEnt)?;
        let freed = std::mem::take(&mut inode.blocks);
        inode.size = 0;
        for b in &freed {
            self.cache.discard(*b);
        }
        self.free_blocks.extend(freed);
        Ok(())
    }

    /// Flush the buffer cache (fsync semantics for the whole fs).
    pub fn sync(&mut self, cpu: &Arc<Cpu>, driver: &dyn BlockDriver) -> Result<usize, KernelError> {
        self.cache.sync(cpu, driver)
    }
}

#[cfg(test)]
mod tests {
    use super::buffer::tests_support::MemDriver;
    use super::*;

    fn cpu() -> Arc<Cpu> {
        Arc::new(Cpu::new(0))
    }

    #[test]
    fn create_write_read_roundtrip() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        let ino = fs.create(&cpu, "hello.txt").unwrap();
        let msg = b"hello filesystem".repeat(300); // spans blocks
        assert_eq!(fs.write(&cpu, &d, ino, 0, &msg).unwrap(), msg.len());
        let back = fs.read(&cpu, &d, ino, 0, msg.len()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(fs.stat(&cpu, ino).unwrap().size, msg.len() as u64);
    }

    #[test]
    fn read_at_offset_and_past_eof() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        let ino = fs.create(&cpu, "f").unwrap();
        fs.write(&cpu, &d, ino, 0, b"0123456789").unwrap();
        assert_eq!(fs.read(&cpu, &d, ino, 4, 3).unwrap(), b"456");
        assert_eq!(fs.read(&cpu, &d, ino, 8, 100).unwrap(), b"89");
        assert!(fs.read(&cpu, &d, ino, 100, 10).unwrap().is_empty());
    }

    #[test]
    fn sparse_grow_via_offset_write() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        let ino = fs.create(&cpu, "sparse").unwrap();
        fs.write(&cpu, &d, ino, 5000, b"xy").unwrap();
        assert_eq!(fs.stat(&cpu, ino).unwrap().size, 5002);
        assert_eq!(fs.read(&cpu, &d, ino, 5000, 2).unwrap(), b"xy");
        // The gap reads as zeroes.
        assert_eq!(fs.read(&cpu, &d, ino, 0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn duplicate_create_and_missing_lookup() {
        let d = MemDriver::new();
        let _ = d;
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        fs.create(&cpu, "a").unwrap();
        assert!(matches!(fs.create(&cpu, "a"), Err(KernelError::Exists)));
        assert!(matches!(fs.lookup(&cpu, "nope"), Err(KernelError::NoEnt)));
    }

    #[test]
    fn unlink_frees_blocks() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 10);
        let cpu = cpu();
        let ino = fs.create(&cpu, "big").unwrap();
        fs.write(&cpu, &d, ino, 0, &vec![1u8; 8 * BLOCK_SIZE])
            .unwrap();
        assert_eq!(fs.free_block_count(), 2);
        fs.unlink(&cpu, "big").unwrap();
        assert_eq!(fs.free_block_count(), 10);
        assert!(matches!(fs.stat(&cpu, ino), Err(KernelError::NoEnt)));
    }

    #[test]
    fn out_of_space() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 2);
        let cpu = cpu();
        let ino = fs.create(&cpu, "f").unwrap();
        assert!(matches!(
            fs.write(&cpu, &d, ino, 0, &vec![0u8; 3 * BLOCK_SIZE]),
            Err(KernelError::NoSpace)
        ));
    }

    #[test]
    fn data_survives_sync_and_cache_drop() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        let ino = fs.create(&cpu, "durable").unwrap();
        fs.write(&cpu, &d, ino, 0, b"persist me").unwrap();
        fs.sync(&cpu, &d).unwrap();
        fs.cache = BufferCache::new(8); // drop the whole cache
        assert_eq!(fs.read(&cpu, &d, ino, 0, 10).unwrap(), b"persist me");
    }

    #[test]
    fn serde_roundtrip_preserves_metadata() {
        let d = MemDriver::new();
        let mut fs = Vfs::mkfs(10, 100);
        let cpu = cpu();
        let ino = fs.create(&cpu, "x").unwrap();
        fs.write(&cpu, &d, ino, 0, b"abc").unwrap();
        fs.sync(&cpu, &d).unwrap();
        let json = serde_json::to_string(&fs).unwrap();
        let mut fs2: Vfs = serde_json::from_str(&json).unwrap();
        assert_eq!(fs2.lookup(&cpu, "x").unwrap(), ino);
        assert_eq!(fs2.read(&cpu, &d, ino, 0, 3).unwrap(), b"abc");
    }
}
