//! The buffer cache: write-behind caching of disk blocks.
//!
//! Reads fill the cache through the block driver; writes dirty cached
//! blocks and are flushed on `sync`, on eviction, or when the dirty
//! high-water mark is crossed (the kupdate analogue).  The interplay of
//! this cache with the split block driver's own early-ack behaviour is
//! what reproduces dbench's counter-intuitive Fig. 3 result (domU
//! slightly *faster* than domain0).

use crate::drivers::block::BlockDriver;
use crate::error::KernelError;
use serde::{Deserialize, Serialize};
use simx86::Cpu;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Bytes per filesystem block.
pub const BLOCK_SIZE: usize = 4096;

/// Default cache capacity in blocks (16 MiB — generous relative to the
/// benchmark files, as the paper's 900 MB machines were to theirs).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Dirty blocks tolerated before a background writeback kicks in
/// (2 MiB — pdflush-era defaults let this much dirty data sit).
pub const DIRTY_HIGH_WATER: usize = 256;

#[derive(Clone, Serialize, Deserialize)]
struct Buf {
    data: Vec<u8>,
    dirty: bool,
}

/// The cache.  Lives inside the big kernel lock.
#[derive(Clone, Serialize, Deserialize)]
pub struct BufferCache {
    blocks: HashMap<u64, Buf>,
    lru: VecDeque<u64>,
    capacity: usize,
    /// Counters: (hits, misses, writebacks).
    pub stats: (u64, u64, u64),
}

impl BufferCache {
    /// A cache holding up to `capacity` blocks.
    pub fn new(capacity: usize) -> BufferCache {
        BufferCache {
            blocks: HashMap::new(),
            lru: VecDeque::new(),
            capacity,
            stats: (0, 0, 0),
        }
    }

    fn touch_lru(&mut self, block: u64) {
        if let Some(pos) = self.lru.iter().position(|&b| b == block) {
            self.lru.remove(pos);
        }
        self.lru.push_back(block);
    }

    fn evict_if_needed(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
    ) -> Result<(), KernelError> {
        while self.blocks.len() > self.capacity {
            let Some(victim) = self.lru.pop_front() else {
                break;
            };
            if let Some(buf) = self.blocks.remove(&victim) {
                if buf.dirty {
                    self.stats.2 += 1;
                    driver.write_block(cpu, victim, &buf.data)?;
                }
            }
        }
        Ok(())
    }

    /// Read a whole block (copied out).
    pub fn read(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        block: u64,
    ) -> Result<Vec<u8>, KernelError> {
        if let Some(buf) = self.blocks.get(&block) {
            self.stats.0 += 1;
            cpu.tick(400); // cached copy
            let data = buf.data.clone();
            self.touch_lru(block);
            return Ok(data);
        }
        self.stats.1 += 1;
        let mut data = vec![0u8; BLOCK_SIZE];
        driver.read_block(cpu, block, &mut data)?;
        self.blocks.insert(
            block,
            Buf {
                data: data.clone(),
                dirty: false,
            },
        );
        self.touch_lru(block);
        self.evict_if_needed(cpu, driver)?;
        Ok(data)
    }

    /// Write a byte range within a block (read-modify-write through the
    /// cache; the block is dirtied, not written through).
    pub fn write(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        block: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), KernelError> {
        self.write_impl(cpu, driver, block, offset, data, false)
    }

    /// Like [`BufferCache::write`], but for a *freshly allocated* block:
    /// whatever is on the device there is a stale remnant of a freed
    /// block, so the base content is zeros and no fill read happens.
    pub fn write_fresh(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        block: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), KernelError> {
        self.discard(block);
        self.write_impl(cpu, driver, block, offset, data, true)
    }

    fn write_impl(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        block: u64,
        offset: usize,
        data: &[u8],
        fresh: bool,
    ) -> Result<(), KernelError> {
        debug_assert!(offset + data.len() <= BLOCK_SIZE);
        if !self.blocks.contains_key(&block) {
            // Fill unless the write covers the whole block or the block
            // is fresh (then its logical content is zeros).
            let base = if fresh || data.len() == BLOCK_SIZE {
                vec![0u8; BLOCK_SIZE]
            } else {
                let mut b = vec![0u8; BLOCK_SIZE];
                driver.read_block(cpu, block, &mut b)?;
                self.stats.1 += 1;
                b
            };
            self.blocks.insert(
                block,
                Buf {
                    data: base,
                    // Fresh blocks are dirty from birth: their zeros must
                    // shadow whatever stale bytes sit on the device.
                    dirty: fresh,
                },
            );
        } else {
            self.stats.0 += 1;
        }
        cpu.tick(300 + data.len() as u64 / 16); // cached copy
        let buf = self.blocks.get_mut(&block).expect("just inserted");
        buf.data[offset..offset + data.len()].copy_from_slice(data);
        buf.dirty = true;
        self.touch_lru(block);
        if self.dirty_count() > DIRTY_HIGH_WATER {
            self.writeback(cpu, driver, DIRTY_HIGH_WATER / 2)?;
        }
        self.evict_if_needed(cpu, driver)?;
        Ok(())
    }

    /// Flush up to `max` dirty blocks (oldest first).
    pub fn writeback(
        &mut self,
        cpu: &Arc<Cpu>,
        driver: &dyn BlockDriver,
        max: usize,
    ) -> Result<usize, KernelError> {
        let victims: Vec<u64> = self
            .lru
            .iter()
            .copied()
            .filter(|b| self.blocks.get(b).map(|x| x.dirty).unwrap_or(false))
            .take(max)
            .collect();
        let mut n = 0;
        for b in victims {
            if let Some(buf) = self.blocks.get_mut(&b) {
                driver.write_block(cpu, b, &buf.data)?;
                buf.dirty = false;
                self.stats.2 += 1;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Flush everything (fsync / unmount / checkpoint freeze).
    pub fn sync(&mut self, cpu: &Arc<Cpu>, driver: &dyn BlockDriver) -> Result<usize, KernelError> {
        let n = self.writeback(cpu, driver, usize::MAX)?;
        driver.flush(cpu)?;
        Ok(n)
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.blocks.values().filter(|b| b.dirty).count()
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Forget a block without writing it back (its storage was freed:
    /// truncate/unlink).  Keeping the entry would resurrect stale data
    /// if the block is reallocated to another file.
    pub fn discard(&mut self, block: u64) {
        self.blocks.remove(&block);
        self.lru.retain(|&b| b != block);
    }

    /// Drop all clean blocks (restore path: contents will be re-read
    /// from the migrated disk).
    pub fn drop_clean(&mut self) {
        self.blocks.retain(|_, b| b.dirty);
        self.lru.retain(|b| self.blocks.contains_key(b));
    }
}

/// Test support: a host-memory block driver with operation counters.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use parking_lot::Mutex;

    /// A block driver over a host-side map, counting operations.
    pub struct MemDriver {
        /// Blocks written through.
        pub store: Mutex<HashMap<u64, Vec<u8>>>,
        /// Driver-level reads.
        pub reads: Mutex<u64>,
        /// Driver-level writes.
        pub writes: Mutex<u64>,
    }

    impl Default for MemDriver {
        fn default() -> Self {
            Self::new()
        }
    }

    impl MemDriver {
        /// An empty driver.
        pub fn new() -> MemDriver {
            MemDriver {
                store: Mutex::new(HashMap::new()),
                reads: Mutex::new(0),
                writes: Mutex::new(0),
            }
        }
    }

    impl BlockDriver for MemDriver {
        fn read_block(
            &self,
            _cpu: &Arc<Cpu>,
            block: u64,
            out: &mut [u8],
        ) -> Result<(), KernelError> {
            *self.reads.lock() += 1;
            let store = self.store.lock();
            match store.get(&block) {
                Some(d) => out.copy_from_slice(d),
                None => out.fill(0),
            }
            Ok(())
        }
        fn write_block(&self, _cpu: &Arc<Cpu>, block: u64, data: &[u8]) -> Result<(), KernelError> {
            *self.writes.lock() += 1;
            self.store.lock().insert(block, data.to_vec());
            Ok(())
        }
        fn flush(&self, _cpu: &Arc<Cpu>) -> Result<(), KernelError> {
            Ok(())
        }
        fn kind(&self) -> &'static str {
            "mem"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::MemDriver;
    use super::*;

    fn cpu() -> Arc<Cpu> {
        Arc::new(Cpu::new(0))
    }

    #[test]
    fn read_caches() {
        let d = MemDriver::new();
        d.store.lock().insert(3, vec![7u8; BLOCK_SIZE]);
        let mut c = BufferCache::new(8);
        let cpu = cpu();
        assert_eq!(c.read(&cpu, &d, 3).unwrap()[0], 7);
        assert_eq!(c.read(&cpu, &d, 3).unwrap()[0], 7);
        assert_eq!(*d.reads.lock(), 1, "second read must hit the cache");
        assert_eq!(c.stats.0, 1);
    }

    #[test]
    fn writes_are_write_behind_until_sync() {
        let d = MemDriver::new();
        let mut c = BufferCache::new(8);
        let cpu = cpu();
        c.write(&cpu, &d, 5, 0, &[9u8; BLOCK_SIZE]).unwrap();
        assert_eq!(*d.writes.lock(), 0, "write must not hit the disk yet");
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.sync(&cpu, &d).unwrap(), 1);
        assert_eq!(*d.writes.lock(), 1);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(d.store.lock().get(&5).unwrap()[0], 9);
    }

    #[test]
    fn partial_write_reads_then_modifies() {
        let d = MemDriver::new();
        d.store.lock().insert(2, vec![1u8; BLOCK_SIZE]);
        let mut c = BufferCache::new(8);
        let cpu = cpu();
        c.write(&cpu, &d, 2, 10, &[5, 5]).unwrap();
        let data = c.read(&cpu, &d, 2).unwrap();
        assert_eq!(&data[9..13], &[1, 5, 5, 1]);
    }

    #[test]
    fn eviction_writes_back_dirty_blocks() {
        let d = MemDriver::new();
        let mut c = BufferCache::new(2);
        let cpu = cpu();
        c.write(&cpu, &d, 1, 0, &[1u8; BLOCK_SIZE]).unwrap();
        c.write(&cpu, &d, 2, 0, &[2u8; BLOCK_SIZE]).unwrap();
        c.write(&cpu, &d, 3, 0, &[3u8; BLOCK_SIZE]).unwrap();
        assert!(c.len() <= 2);
        // Block 1 was evicted and must be durable.
        assert_eq!(d.store.lock().get(&1).unwrap()[0], 1);
        // And rereading it comes back via the driver.
        assert_eq!(c.read(&cpu, &d, 1).unwrap()[0], 1);
    }

    #[test]
    fn high_water_triggers_background_writeback() {
        let d = MemDriver::new();
        let mut c = BufferCache::new(DIRTY_HIGH_WATER * 4);
        let cpu = cpu();
        for b in 0..(DIRTY_HIGH_WATER as u64 + 1) {
            c.write(&cpu, &d, b, 0, &[1u8; BLOCK_SIZE]).unwrap();
        }
        assert!(
            *d.writes.lock() > 0,
            "crossing the high-water mark must start writeback"
        );
        assert!(c.dirty_count() <= DIRTY_HIGH_WATER);
    }
}
