//! Kernel error type.

use simx86::Fault;
use std::fmt;
use xenon::HvError;

/// Errors surfaced by kernel operations (syscalls and internals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// No such process.
    NoProcess,
    /// Bad file descriptor.
    BadFd,
    /// No such file or directory.
    NoEnt,
    /// File already exists (exclusive create).
    Exists,
    /// Out of physical frames.
    NoMem,
    /// Out of disk blocks or inodes.
    NoSpace,
    /// Invalid argument.
    Invalid(&'static str),
    /// Operation would block (pipe/socket empty or full).
    WouldBlock,
    /// The address is not mapped / not accessible.
    BadAddress,
    /// A hardware fault the kernel could not resolve (the simulated
    /// equivalent of an oops).
    Oops(Fault),
    /// A hypercall failed (virtual mode only).
    Hypervisor(HvError),
    /// Unknown program image.
    NoProgram,
    /// The kernel is frozen (checkpoint in progress).
    Frozen,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoProcess => write!(f, "no such process"),
            KernelError::BadFd => write!(f, "bad file descriptor"),
            KernelError::NoEnt => write!(f, "no such file or directory"),
            KernelError::Exists => write!(f, "file exists"),
            KernelError::NoMem => write!(f, "out of memory"),
            KernelError::NoSpace => write!(f, "no space left on device"),
            KernelError::Invalid(w) => write!(f, "invalid argument: {w}"),
            KernelError::WouldBlock => write!(f, "operation would block"),
            KernelError::BadAddress => write!(f, "bad address"),
            KernelError::Oops(fault) => write!(f, "kernel oops: {fault}"),
            KernelError::Hypervisor(e) => write!(f, "hypercall failed: {e}"),
            KernelError::NoProgram => write!(f, "no such program image"),
            KernelError::Frozen => write!(f, "kernel is frozen"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<Fault> for KernelError {
    fn from(fault: Fault) -> Self {
        KernelError::Oops(fault)
    }
}

impl From<HvError> for KernelError {
    fn from(e: HvError) -> Self {
        KernelError::Hypervisor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: KernelError = Fault::DoubleFault.into();
        assert!(matches!(e, KernelError::Oops(_)));
        let e: KernelError = HvError::NotActive.into();
        assert!(e.to_string().contains("not active"));
    }
}
