//! Processes, file descriptors and pipes.

use crate::mm::AddressSpace;
use serde::{Deserialize, Serialize};
use simx86::cpu::Selector;
use std::collections::VecDeque;

/// Process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Pid(pub u32);

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOn {
    /// Data in a pipe.
    PipeRead(u32),
    /// Space in a pipe.
    PipeWrite(u32),
    /// A datagram on a socket.
    SockRead(u32),
    /// A child to exit.
    Wait,
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// On the run queue.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Waiting.
    Blocked(BlockOn),
    /// Exited; waiting to be reaped.
    Zombie(i32),
}

/// One saved trap context on a process's kernel stack.  The segment
/// selectors cached here encode the privilege level at save time — the
/// state §5.1.2 says Mercury must patch during a mode switch, lest the
/// resume path pop a stale selector and take a general protection
/// fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SavedTrapContext {
    /// Saved code-segment selector.
    pub cs: Selector,
    /// Saved stack-segment selector.
    pub ss: Selector,
}

/// An open descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Desc {
    /// Read end of a pipe.
    PipeR(u32),
    /// Write end of a pipe.
    PipeW(u32),
    /// An open file with a cursor.
    File {
        /// Inode.
        ino: u32,
        /// Byte position.
        pos: u64,
    },
    /// A datagram socket.
    Sock(u32),
}

/// A process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    /// Identifier.
    pub pid: Pid,
    /// Parent.
    pub parent: Pid,
    /// Scheduler state.
    pub state: ProcState,
    /// The address space.
    pub aspace: AddressSpace,
    /// Descriptor table.
    pub fds: Vec<Option<Desc>>,
    /// Saved trap contexts on the kernel stack (top = last).
    pub kstack: Vec<SavedTrapContext>,
    /// Program name currently executing.
    pub prog: String,
    /// Next mmap placement cursor.
    pub mmap_cursor: u64,
    /// A fatal signal is pending (segfault).
    pub signalled: bool,
}

impl Process {
    /// Allocate the lowest free descriptor slot.
    pub fn alloc_fd(&mut self, desc: Desc) -> usize {
        if let Some(i) = self.fds.iter().position(|d| d.is_none()) {
            self.fds[i] = Some(desc);
            i
        } else {
            self.fds.push(Some(desc));
            self.fds.len() - 1
        }
    }

    /// Look a descriptor up.
    pub fn fd(&self, n: usize) -> Option<Desc> {
        self.fds.get(n).copied().flatten()
    }

    /// Close a descriptor; returns what it was.
    pub fn close_fd(&mut self, n: usize) -> Option<Desc> {
        self.fds.get_mut(n).and_then(|d| d.take())
    }

    /// Is this process runnable (ready or running)?
    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ProcState::Ready | ProcState::Running)
    }
}

/// Pipe capacity in bytes.
pub const PIPE_CAPACITY: usize = 65536;

/// A pipe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Read ends open.
    pub readers: u32,
    /// Write ends open.
    pub writers: u32,
}

impl Pipe {
    /// Space left before writers block.
    pub fn space(&self) -> usize {
        PIPE_CAPACITY - self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::mem::FrameNum;

    fn proc_with_fds() -> Process {
        Process {
            pid: Pid(1),
            parent: Pid(0),
            state: ProcState::Ready,
            aspace: AddressSpace {
                pgd: FrameNum(1),
                user_l1s: vec![],
                vmas: vec![],
                pinned: false,
            },
            fds: vec![],
            kstack: vec![],
            prog: "init".into(),
            mmap_cursor: 0,
            signalled: false,
        }
    }

    #[test]
    fn fd_allocation_reuses_lowest_slot() {
        let mut p = proc_with_fds();
        assert_eq!(p.alloc_fd(Desc::PipeR(0)), 0);
        assert_eq!(p.alloc_fd(Desc::PipeW(0)), 1);
        assert_eq!(p.alloc_fd(Desc::Sock(5)), 2);
        p.close_fd(1);
        assert_eq!(p.fd(1), None);
        assert_eq!(p.alloc_fd(Desc::File { ino: 3, pos: 0 }), 1);
        assert_eq!(p.fd(1), Some(Desc::File { ino: 3, pos: 0 }));
    }

    #[test]
    fn runnable_states() {
        let mut p = proc_with_fds();
        assert!(p.is_runnable());
        p.state = ProcState::Blocked(BlockOn::Wait);
        assert!(!p.is_runnable());
        p.state = ProcState::Zombie(0);
        assert!(!p.is_runnable());
    }

    #[test]
    fn pipe_space() {
        let mut pipe = Pipe::default();
        assert_eq!(pipe.space(), PIPE_CAPACITY);
        pipe.buf.extend(std::iter::repeat_n(0u8, 100));
        assert_eq!(pipe.space(), PIPE_CAPACITY - 100);
    }

    #[test]
    fn process_serde_roundtrip() {
        let p = proc_with_fds();
        let json = serde_json::to_string(&p).unwrap();
        let q: Process = serde_json::from_str(&json).unwrap();
        assert_eq!(q.pid, p.pid);
        assert_eq!(q.prog, "init");
    }
}
