//! Program images: the synthetic binaries `exec` loads.
//!
//! Each image owns page-cache frames for its text and initialized data,
//! preloaded at boot.  `exec` maps text shared read-only and copies data
//! pages, exactly shaping the cost profile of the lmbench `exec`/`sh`
//! rows.  Sizes approximate the paper-era binaries they stand in for.

use crate::error::KernelError;
use crate::mm::FramePool;
use serde::{Deserialize, Serialize};
use simx86::mem::{FrameNum, PhysMemory};
use simx86::paging::WORDS_PER_PAGE;
use simx86::Cpu;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Virtual layout constants for loaded programs.
pub mod layout {
    /// Text segment base.
    pub const TEXT_BASE: u64 = 0x0040_0000;
    /// Heap base.
    pub const HEAP_BASE: u64 = 0x1000_0000;
    /// mmap placement region base.
    pub const MMAP_BASE: u64 = 0x1800_0000;
    /// Top of the stack region (grows down).
    pub const STACK_TOP: u64 = 0x2fff_f000;
    /// Stack pages reserved below [`STACK_TOP`].
    pub const STACK_PAGES: u64 = 64;
}

/// A loadable image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramImage {
    /// Name.
    pub name: String,
    /// Shared read-only text pages.
    pub text: Vec<FrameNum>,
    /// Initialized-data template pages (copied privately at exec).
    pub data: Vec<FrameNum>,
    /// Zero-initialized pages after data.
    pub bss_pages: usize,
    /// Heap VMA size in pages.
    pub heap_pages: usize,
}

impl ProgramImage {
    /// Total mapped pages immediately after exec (before demand paging).
    pub fn resident_pages(&self) -> usize {
        self.text.len() + self.data.len()
    }
}

/// The registry of installed programs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramRegistry {
    progs: BTreeMap<String, ProgramImage>,
}

impl ProgramRegistry {
    /// Install a program, allocating and stamping its page-cache frames.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &mut self,
        cpu: &Arc<Cpu>,
        mem: &PhysMemory,
        pool: &mut FramePool,
        name: &str,
        text_pages: usize,
        data_pages: usize,
        bss_pages: usize,
        heap_pages: usize,
    ) -> Result<(), KernelError> {
        let mut alloc_pages = |n: usize, tag: u64| -> Result<Vec<FrameNum>, KernelError> {
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                let f = pool.alloc(cpu).ok_or(KernelError::NoMem)?;
                // Stamp a recognizable pattern so exec'd memory is
                // checkable in tests.
                mem.write_word(cpu, f.base(), tag ^ (i as u64))?;
                mem.write_word(
                    cpu,
                    simx86::mem::PhysAddr(f.base().0 + (WORDS_PER_PAGE as u64 - 1) * 8),
                    tag.wrapping_mul(31) ^ (i as u64),
                )?;
                v.push(f);
            }
            Ok(v)
        };
        let tag = name
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131) + b as u64);
        let image = ProgramImage {
            name: name.to_string(),
            text: alloc_pages(text_pages, tag)?,
            data: alloc_pages(data_pages, tag ^ 0xdddd)?,
            bss_pages,
            heap_pages,
        };
        self.progs.insert(name.to_string(), image);
        Ok(())
    }

    /// Look a program up.
    pub fn get(&self, name: &str) -> Result<&ProgramImage, KernelError> {
        self.progs.get(name).ok_or(KernelError::NoProgram)
    }

    /// Installed program names.
    pub fn names(&self) -> Vec<String> {
        self.progs.keys().cloned().collect()
    }

    /// Install the canonical set the workloads use.  Page counts stand
    /// in for the paper-era binaries (init, a shell, gcc's cc1 for the
    /// kernel-build workload, postgres for OSDB, and the benchmark
    /// processes themselves).
    pub fn install_standard(
        &mut self,
        cpu: &Arc<Cpu>,
        mem: &PhysMemory,
        pool: &mut FramePool,
    ) -> Result<(), KernelError> {
        // name, text, data, bss, heap
        let set: &[(&str, usize, usize, usize, usize)] = &[
            ("init", 4, 2, 2, 8),
            ("sh", 48, 12, 8, 32),
            ("hello", 4, 1, 1, 4),
            ("cc1", 96, 24, 32, 192),
            ("postgres", 128, 32, 32, 256),
            ("dbench", 24, 8, 4, 64),
            ("lat_proc", 40, 10, 6, 512),
            ("iperf", 16, 4, 4, 32),
        ];
        for &(name, t, d, b, h) in set {
            self.install(cpu, mem, pool, name, t, d, b, h)?;
        }
        Ok(())
    }

    /// Remap frame references through the restore relocation map.
    pub fn translate(&mut self, map: &HashMap<u32, u32>) {
        for img in self.progs.values_mut() {
            for f in img.text.iter_mut().chain(img.data.iter_mut()) {
                if let Some(n) = map.get(&f.0) {
                    *f = FrameNum(*n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::{Machine, MachineConfig};

    fn rig() -> (Arc<Machine>, FramePool) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 4096,
            disk_sectors: 64,
        });
        let frames = machine
            .allocator
            .alloc_many(machine.boot_cpu(), 2048)
            .unwrap();
        (machine, FramePool::new(frames))
    }

    #[test]
    fn install_and_lookup() {
        let (m, mut pool) = rig();
        let cpu = m.boot_cpu();
        let mut reg = ProgramRegistry::default();
        let before = pool.available();
        reg.install(cpu, &m.mem, &mut pool, "prog", 3, 2, 1, 4)
            .unwrap();
        assert_eq!(pool.available(), before - 5);
        let img = reg.get("prog").unwrap();
        assert_eq!(img.text.len(), 3);
        assert_eq!(img.data.len(), 2);
        assert_eq!(img.resident_pages(), 5);
        assert!(matches!(reg.get("nope"), Err(KernelError::NoProgram)));
    }

    #[test]
    fn frames_are_stamped_distinctly() {
        let (m, mut pool) = rig();
        let cpu = m.boot_cpu();
        let mut reg = ProgramRegistry::default();
        reg.install(cpu, &m.mem, &mut pool, "a", 2, 0, 0, 0)
            .unwrap();
        reg.install(cpu, &m.mem, &mut pool, "b", 2, 0, 0, 0)
            .unwrap();
        let wa = m
            .mem
            .read_word(cpu, reg.get("a").unwrap().text[0].base())
            .unwrap();
        let wb = m
            .mem
            .read_word(cpu, reg.get("b").unwrap().text[0].base())
            .unwrap();
        assert_ne!(wa, wb);
    }

    #[test]
    fn standard_set_installs() {
        let (m, mut pool) = rig();
        let cpu = m.boot_cpu();
        let mut reg = ProgramRegistry::default();
        reg.install_standard(cpu, &m.mem, &mut pool).unwrap();
        assert!(reg.names().contains(&"sh".to_string()));
        assert!(reg.get("cc1").unwrap().heap_pages >= 128);
    }

    #[test]
    fn translate_remaps() {
        let (m, mut pool) = rig();
        let cpu = m.boot_cpu();
        let mut reg = ProgramRegistry::default();
        reg.install(cpu, &m.mem, &mut pool, "p", 1, 1, 0, 0)
            .unwrap();
        let old = reg.get("p").unwrap().text[0];
        let map: HashMap<u32, u32> = [(old.0, 999u32)].into();
        reg.translate(&map);
        assert_eq!(reg.get("p").unwrap().text[0], FrameNum(999));
    }
}
