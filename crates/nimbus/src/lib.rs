//! # nimbus — a Unix-like simulated kernel with a paravirt-ops layer
//!
//! Nimbus is the reproduction's stand-in for the paper's Linux 2.6.16:
//! the operating system that Mercury teaches to virtualize itself.  It
//! implements the kernel subsystems whose behaviour the paper's
//! evaluation measures:
//!
//! * **Processes** with copy-on-write `fork`, `exec` from program
//!   images, wait/exit, and pipes (the lmbench process and
//!   context-switch latencies of Tables 1–2).
//! * **Virtual memory**: per-process two-level page tables built in
//!   simulated frames, demand-zero and file-backed page faults, COW
//!   resolution, `mmap`/`munmap`/`mprotect` (lmbench mmap/fault rows).
//! * A **scheduler** with run queue, blocking, and context switches that
//!   reload CR3 and the kernel stack through the paravirt layer.
//! * A **filesystem** with a buffer cache over a block driver (dbench,
//!   OSDB and kernel-build workloads), plus **sockets** over a network
//!   driver (ping/Iperf).
//! * **Drivers** in both shapes of §5.2: native drivers that touch the
//!   simulated hardware directly, and split frontend/backend drivers
//!   that cross domains through grant-backed shared-memory rings.
//!
//! Every virtualization-sensitive operation — CR3 loads, PTE writes,
//! TLB flushes, descriptor-table loads, trap entry costs — is funnelled
//! through the [`paravirt::PvOps`] trait (the paper's VMI/paravirt-ops
//! analogue, §4.2).  The kernel ships two implementations: [`BareOps`]
//! for an unmodified native kernel (N-L) and [`XenOps`] for a
//! classically paravirtualized guest (X-0/X-U).  The mercury crate adds
//! the *switchable* virtualization objects on top.
//!
//! [`BareOps`]: paravirt::BareOps
//! [`XenOps`]: paravirt::XenOps

#![warn(missing_docs)]

pub mod drivers;
pub mod error;
pub mod fs;
pub mod kernel;
pub mod mm;
pub mod net;
pub mod paravirt;
pub mod process;
pub mod programs;
pub mod sched;
pub mod session;

pub use error::KernelError;
pub use kernel::{BootMode, Kernel, KernelConfig};
pub use paravirt::{ExecMode, PvOps};
pub use process::Pid;
pub use session::Session;
