//! The paravirt-ops layer: every virtualization-sensitive operation the
//! kernel performs, behind one swappable object.
//!
//! This is the reproduction of the paper's core interface idea (§4.2):
//! "Mercury groups all virtualization sensitive code and data, and
//! defines a unified interface: a virtualization object composed of a
//! function table and a data table."  In Rust the function table is a
//! trait object; swapping the active implementation relocates the
//! kernel's sensitive code in one pointer store.
//!
//! The kernel ships the two non-switching implementations the paper
//! benchmarks against:
//!
//! * [`BareOps`] — direct hardware access; what unmodified native Linux
//!   (N-L) does.
//! * [`XenOps`] — hypercalls into a live Xenon; what Xen-Linux (X-0 and
//!   X-U) does.
//!
//! The mercury crate layers reference-counted, switchable
//! virtualization objects (native VO / virtual VO) on top of these.

use crate::error::KernelError;
use simx86::cpu::IdtTable;
use simx86::mem::FrameNum;
use simx86::paging::{Pte, KERNEL_BASE, PAGE_SIZE};
use simx86::{costs, Cpu, VirtAddr};
use std::sync::Arc;
use xenon::{Domain, Hypervisor, MmuUpdate, PageType};

/// The kernel's execution mode (§3.2): on bare hardware or on a VMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExecMode {
    /// Directly on hardware, most privileged.
    Native,
    /// De-privileged on a hypervisor.
    Virtual,
}

/// Locator for the kernel's direct map: which L1 table and slot holds
/// the kernel-space mapping of a given physical frame.
///
/// Page-table frames must have their direct-map entry flipped read-only
/// in virtual mode (§5.1.2: "page table pages, which are read-only in
/// the virtualized modes while writable in the native mode") — this
/// struct is how the paravirt layer and Mercury's state-transfer
/// functions find those entries.
///
/// Slot assignments are *recorded*, not recomputed from frame numbers:
/// after a restore or live migration the kernel's frames are renumbered
/// (the machine-vs-pseudo-physical distinction of §3.2.2), the page
/// tables are rewritten in place, and this map is translated through
/// the relocation — the direct-map *virtual* layout never changes.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct KernelMap {
    /// Kernel L1 tables, as `(l2 index, table frame)` pairs.
    pub l1s: Vec<(usize, FrameNum)>,
    /// Frame → (holding L1 table, slot index, mapped kernel VA).
    pub slots: std::collections::HashMap<u32, (FrameNum, usize, u64)>,
}

impl KernelMap {
    /// The boot-time kernel virtual address for frame `f` (identity
    /// direct map; only valid before any relocation).
    pub fn boot_va_of(f: FrameNum) -> VirtAddr {
        VirtAddr(KERNEL_BASE + f.0 as u64 * PAGE_SIZE)
    }

    /// Record that `frame` is direct-mapped by slot `idx` of `l1` at
    /// virtual address `va`.
    pub fn record(&mut self, frame: FrameNum, l1: FrameNum, idx: usize, va: VirtAddr) {
        self.slots.insert(frame.0, (l1, idx, va.0));
    }

    /// Locate the direct-map entry for `frame`: `(L1 table frame, slot)`.
    pub fn locate(&self, frame: FrameNum) -> Option<(FrameNum, usize)> {
        self.slots.get(&frame.0).map(|&(l1, idx, _)| (l1, idx))
    }

    /// The kernel virtual address `frame` is direct-mapped at.
    pub fn va_of(&self, frame: FrameNum) -> Option<VirtAddr> {
        self.slots.get(&frame.0).map(|&(_, _, va)| VirtAddr(va))
    }

    /// Remap every frame reference through a relocation map (restore /
    /// live migration: new physical frames, same virtual layout).
    pub fn translate(&mut self, map: &std::collections::HashMap<u32, u32>) {
        let tr = |f: u32| *map.get(&f).unwrap_or(&f);
        for (_, l1) in self.l1s.iter_mut() {
            *l1 = FrameNum(tr(l1.0));
        }
        self.slots = self
            .slots
            .iter()
            .map(|(&f, &(l1, idx, va))| (tr(f), (FrameNum(tr(l1.0)), idx, va)))
            .collect();
    }
}

/// The virtualization-sensitive operation table.
///
/// Mode-dependent cost and mechanism live here; the rest of the kernel
/// is mode-oblivious, which is what lets Mercury switch modes without
/// the kernel noticing (§4.3's behaviour-consistency requirement).
pub trait PvOps: Send + Sync {
    /// Which mode this object implements.
    fn mode(&self) -> ExecMode;
    /// Implementation name (diagnostics).
    fn name(&self) -> &'static str;

    // ---- sensitive CPU operations --------------------------------------

    /// Disable interrupt delivery.
    fn irq_disable(&self, cpu: &Arc<Cpu>);
    /// Enable interrupt delivery.
    fn irq_enable(&self, cpu: &Arc<Cpu>);
    /// Load a new page-table base (CR3) on this CPU.
    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError>;
    /// Install the kernel's trap handlers.
    fn load_trap_table(&self, cpu: &Arc<Cpu>, idt: Arc<IdtTable>) -> Result<(), KernelError>;
    /// Record the kernel stack for the next privilege transition.
    fn set_kernel_stack(&self, cpu: &Arc<Cpu>, sp: u64) -> Result<(), KernelError>;
    /// Charge the mode's syscall entry overhead.
    fn syscall_entry(&self, cpu: &Arc<Cpu>);
    /// Charge the mode's syscall exit overhead.
    fn syscall_exit(&self, cpu: &Arc<Cpu>);
    /// Charge the mode's extra context-switch work (segment reloads
    /// bouncing through the VMM, etc.).
    fn context_switch_extra(&self, cpu: &Arc<Cpu>);

    // ---- sensitive MMU operations ---------------------------------------

    /// Write one page-table entry.
    fn set_pte(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        index: usize,
        val: Pte,
    ) -> Result<(), KernelError>;

    /// Write a batch of entries in one table (bulk paths: fork's COW
    /// marking, munmap).  Implementations may batch hypercalls.
    fn set_ptes(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        updates: &[(usize, Pte)],
    ) -> Result<(), KernelError>;

    /// Flush this CPU's TLB.
    fn flush_tlb(&self, cpu: &Arc<Cpu>);
    /// TLB shootdown: flush every CPU's TLB (mapping teardown on SMP —
    /// remote cores must not keep stale translations).
    fn flush_tlb_all(&self, cpu: &Arc<Cpu>);
    /// Invalidate one page translation.
    fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64);

    /// Declare that `frame` is now a page table: in virtual mode its
    /// direct-map entry goes read-only so validation can succeed.
    fn register_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError>;

    /// Inverse of [`Self::register_page_table`]: the frame returns to
    /// ordinary (writable-mapped) use.
    fn unregister_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError>;

    /// Pin a base table so it may be loaded into CR3.
    fn pin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError>;
    /// Unpin a base table (process teardown).
    fn unpin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError>;

    // ---- sensitive I/O ---------------------------------------------------

    /// Emit a kernel log line.
    fn console_write(&self, cpu: &Arc<Cpu>, msg: &str);
}

// ===========================================================================
// BareOps: direct hardware access (native Linux)
// ===========================================================================

/// Native-mode operations: direct privileged instructions and stores.
/// This is what an unmodified kernel does; it only works at PL0.
pub struct BareOps {
    machine: Arc<simx86::Machine>,
}

impl BareOps {
    /// Operations against `machine`'s bare hardware.
    pub fn new(machine: Arc<simx86::Machine>) -> Arc<BareOps> {
        Arc::new(BareOps { machine })
    }
}

impl PvOps for BareOps {
    fn mode(&self) -> ExecMode {
        ExecMode::Native
    }
    fn name(&self) -> &'static str {
        "bare"
    }

    fn irq_disable(&self, cpu: &Arc<Cpu>) {
        cpu.cli().expect("native kernel runs at PL0");
    }
    fn irq_enable(&self, cpu: &Arc<Cpu>) {
        cpu.sti().expect("native kernel runs at PL0");
    }
    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        cpu.write_cr3(pgd.0)?;
        Ok(())
    }
    fn load_trap_table(&self, cpu: &Arc<Cpu>, idt: Arc<IdtTable>) -> Result<(), KernelError> {
        cpu.lidt(idt)?;
        Ok(())
    }
    fn set_kernel_stack(&self, cpu: &Arc<Cpu>, _sp: u64) -> Result<(), KernelError> {
        cpu.tick(30); // TSS.esp0 store
        Ok(())
    }
    fn syscall_entry(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::SYSCALL_NATIVE / 2);
    }
    fn syscall_exit(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::SYSCALL_NATIVE / 2);
    }
    fn context_switch_extra(&self, _cpu: &Arc<Cpu>) {}

    fn set_pte(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        index: usize,
        val: Pte,
    ) -> Result<(), KernelError> {
        cpu.tick(costs::PTE_WRITE_NATIVE);
        self.machine.mem.write_pte(cpu, table, index, val)?;
        Ok(())
    }

    fn set_ptes(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        updates: &[(usize, Pte)],
    ) -> Result<(), KernelError> {
        for &(index, val) in updates {
            self.set_pte(cpu, table, index, val)?;
        }
        Ok(())
    }

    fn flush_tlb(&self, cpu: &Arc<Cpu>) {
        cpu.flush_tlb_local();
    }
    fn flush_tlb_all(&self, cpu: &Arc<Cpu>) {
        // IPI shootdown: the cost of notifying each peer, plus the
        // flushes themselves (performed here; the cooperative driver
        // model stands in for the ack wait).
        for c in &self.machine.cpus {
            if c.id != cpu.id {
                cpu.tick(costs::IPI_SEND);
            }
            c.flush_tlb_local();
        }
    }
    fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64) {
        cpu.invlpg(vpn);
    }

    fn register_page_table(
        &self,
        _cpu: &Arc<Cpu>,
        _kmap: &KernelMap,
        _frame: FrameNum,
    ) -> Result<(), KernelError> {
        // Native kernels keep their page tables writable.
        Ok(())
    }
    fn unregister_page_table(
        &self,
        _cpu: &Arc<Cpu>,
        _kmap: &KernelMap,
        _frame: FrameNum,
    ) -> Result<(), KernelError> {
        Ok(())
    }
    fn pin_base_table(&self, cpu: &Arc<Cpu>, _pgd: FrameNum) -> Result<(), KernelError> {
        cpu.tick(40); // mm bookkeeping only
        Ok(())
    }
    fn unpin_base_table(&self, cpu: &Arc<Cpu>, _pgd: FrameNum) -> Result<(), KernelError> {
        cpu.tick(40);
        Ok(())
    }

    fn console_write(&self, _cpu: &Arc<Cpu>, msg: &str) {
        self.machine.console.write_line(msg);
    }
}

// ===========================================================================
// XenOps: hypercalls into a live Xenon (classic paravirtualization)
// ===========================================================================

/// How many `mmu_update` entries ride in one hypercall on bulk paths.
/// Xen-Linux 2.6's multicall batching was modest; 2 reproduces the
/// hypercall-dominated fork/exec costs of Table 1 (fork ≈ 5× native).
pub const MMU_BATCH: usize = 2;

/// Virtual-mode operations: every sensitive op becomes a hypercall (or
/// a shared-info fast path, for the interrupt flag).
pub struct XenOps {
    hv: Arc<Hypervisor>,
    dom: Arc<Domain>,
}

impl XenOps {
    /// Operations for `dom` running on `hv`.
    pub fn new(hv: Arc<Hypervisor>, dom: Arc<Domain>) -> Arc<XenOps> {
        Arc::new(XenOps { hv, dom })
    }

    /// The hypervisor this object talks to.
    pub fn hypervisor(&self) -> &Arc<Hypervisor> {
        &self.hv
    }

    /// The domain this object acts for.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.dom
    }

    fn table_is_validated(&self, table: FrameNum) -> bool {
        let (typ, count) = self.hv.page_info.type_of(table);
        count > 0 && matches!(typ, PageType::L1 | PageType::L2)
    }
}

impl PvOps for XenOps {
    fn mode(&self) -> ExecMode {
        ExecMode::Virtual
    }
    fn name(&self) -> &'static str {
        "xen"
    }

    fn irq_disable(&self, cpu: &Arc<Cpu>) {
        // Shared-info virtual IF: no trap, a store the VMM honors.
        cpu.tick(6);
        cpu.set_if_raw(false);
    }
    fn irq_enable(&self, cpu: &Arc<Cpu>) {
        cpu.tick(6);
        cpu.set_if_raw(true);
    }

    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        self.hv.new_baseptr(cpu, &self.dom, pgd)?;
        Ok(())
    }

    fn load_trap_table(&self, cpu: &Arc<Cpu>, idt: Arc<IdtTable>) -> Result<(), KernelError> {
        let mut entries = Vec::new();
        for v in 0..simx86::cpu::N_VECTORS as u8 {
            if let Some(gate) = idt.gate(v) {
                entries.push((v, Arc::clone(&gate.sink)));
            }
        }
        self.hv.set_trap_table(cpu, &self.dom, entries)?;
        Ok(())
    }

    fn set_kernel_stack(&self, cpu: &Arc<Cpu>, sp: u64) -> Result<(), KernelError> {
        self.hv.stack_switch(cpu, &self.dom, 0, sp)?;
        Ok(())
    }

    fn syscall_entry(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::SYSCALL_NATIVE / 2 + costs::SYSCALL_VIRT_EXTRA / 2);
    }
    fn syscall_exit(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::SYSCALL_NATIVE / 2 + costs::SYSCALL_VIRT_EXTRA / 2);
    }
    fn context_switch_extra(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::CTX_SWITCH_VIRT_EXTRA);
    }

    fn set_pte(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        index: usize,
        val: Pte,
    ) -> Result<(), KernelError> {
        if self.table_is_validated(table) {
            self.hv
                .mmu_update(cpu, &self.dom, &[MmuUpdate { table, index, val }])?;
        } else {
            // Unvalidated tables (still being built) take direct writes;
            // the pin validates them wholesale.
            cpu.tick(costs::PTE_WRITE_NATIVE);
            self.hv.machine.mem.write_pte(cpu, table, index, val)?;
        }
        Ok(())
    }

    fn set_ptes(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        updates: &[(usize, Pte)],
    ) -> Result<(), KernelError> {
        if self.table_is_validated(table) {
            let batch: Vec<MmuUpdate> = updates
                .iter()
                .map(|&(index, val)| MmuUpdate { table, index, val })
                .collect();
            for chunk in batch.chunks(MMU_BATCH) {
                self.hv.mmu_update(cpu, &self.dom, chunk)?;
            }
        } else {
            for &(index, val) in updates {
                cpu.tick(costs::PTE_WRITE_NATIVE);
                self.hv.machine.mem.write_pte(cpu, table, index, val)?;
            }
        }
        Ok(())
    }

    fn flush_tlb(&self, cpu: &Arc<Cpu>) {
        let _ = self.hv.tlb_flush_local(cpu);
    }
    fn flush_tlb_all(&self, cpu: &Arc<Cpu>) {
        let _ = self.hv.tlb_flush_all(cpu);
    }
    fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64) {
        let _ = self.hv.invlpg(cpu, vpn);
    }

    fn register_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError> {
        // Flip the frame's direct-map entry read-only so the frame can
        // take a page-table type.
        let Some((l1, index)) = kmap.locate(frame) else {
            return Ok(()); // not direct-mapped (nothing to flip)
        };
        let cur = self.hv.machine.mem.read_pte(cpu, l1, index)?;
        if !cur.present() {
            return Ok(());
        }
        self.set_pte(cpu, l1, index, cur.without_flags(Pte::WRITABLE))?;
        if let Some(va) = kmap.va_of(frame) {
            self.invlpg(cpu, va.vpn());
        }
        Ok(())
    }

    fn unregister_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError> {
        let Some((l1, index)) = kmap.locate(frame) else {
            return Ok(());
        };
        let cur = self.hv.machine.mem.read_pte(cpu, l1, index)?;
        if !cur.present() {
            return Ok(());
        }
        self.set_pte(cpu, l1, index, cur.with_flags(Pte::WRITABLE))?;
        if let Some(va) = kmap.va_of(frame) {
            self.invlpg(cpu, va.vpn());
        }
        Ok(())
    }

    fn pin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        self.hv.pin_l2(cpu, &self.dom, pgd)?;
        Ok(())
    }
    fn unpin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        self.hv.unpin_l2(cpu, &self.dom, pgd)?;
        Ok(())
    }

    fn console_write(&self, cpu: &Arc<Cpu>, msg: &str) {
        let _ = self.hv.console_io(cpu, msg);
    }
}

// ===========================================================================
// HvmOps: hardware-assisted virtual mode (the paper's §8 extension)
// ===========================================================================

/// Hardware-assisted virtual-mode operations: the kernel runs in VT-x
/// non-root mode at its own PL0, so *nothing is de-privileged* — MMU
/// writes are direct stores (EPT provides isolation), the kernel keeps
/// its own gate table, and page tables need no registration, pinning or
/// read-only flipping.  The costs move instead into VM exits on
/// external interrupts and device I/O, charged by the CPU dispatch path
/// and the drivers.
///
/// This realizes §8's prediction: "this could make the mode switch ...
/// much easier to implement.  Further, the nested page table or
/// extended page table could ease the tracking of the states of each
/// page."
pub struct HvmOps {
    machine: Arc<simx86::Machine>,
}

impl HvmOps {
    /// Operations for a non-root guest on `machine`.
    pub fn new(machine: Arc<simx86::Machine>) -> Arc<HvmOps> {
        Arc::new(HvmOps { machine })
    }
}

impl PvOps for HvmOps {
    fn mode(&self) -> ExecMode {
        ExecMode::Virtual
    }
    fn name(&self) -> &'static str {
        "hvm"
    }

    fn irq_disable(&self, cpu: &Arc<Cpu>) {
        // Non-root ring 0: cli executes directly.
        cpu.cli().expect("non-root guest kernel runs at PL0");
    }
    fn irq_enable(&self, cpu: &Arc<Cpu>) {
        cpu.sti().expect("non-root guest kernel runs at PL0");
    }
    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        // With EPT, guest CR3 loads need not exit.
        cpu.write_cr3(pgd.0)?;
        Ok(())
    }
    fn load_trap_table(&self, cpu: &Arc<Cpu>, idt: Arc<IdtTable>) -> Result<(), KernelError> {
        cpu.lidt(idt)?;
        Ok(())
    }
    fn set_kernel_stack(&self, cpu: &Arc<Cpu>, _sp: u64) -> Result<(), KernelError> {
        cpu.tick(30);
        Ok(())
    }
    fn syscall_entry(&self, cpu: &Arc<Cpu>) {
        // Syscalls stay inside the guest: native cost, no exit.
        cpu.tick(costs::SYSCALL_NATIVE / 2);
    }
    fn syscall_exit(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::SYSCALL_NATIVE / 2);
    }
    fn context_switch_extra(&self, _cpu: &Arc<Cpu>) {}

    fn set_pte(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        index: usize,
        val: Pte,
    ) -> Result<(), KernelError> {
        // Direct store: the EPT, not validation, provides isolation.
        cpu.tick(costs::PTE_WRITE_NATIVE);
        self.machine.mem.write_pte(cpu, table, index, val)?;
        Ok(())
    }
    fn set_ptes(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        updates: &[(usize, Pte)],
    ) -> Result<(), KernelError> {
        for &(index, val) in updates {
            self.set_pte(cpu, table, index, val)?;
        }
        Ok(())
    }
    fn flush_tlb(&self, cpu: &Arc<Cpu>) {
        cpu.flush_tlb_local();
    }
    fn flush_tlb_all(&self, cpu: &Arc<Cpu>) {
        for c in &self.machine.cpus {
            if c.id != cpu.id {
                cpu.tick(costs::IPI_SEND);
            }
            c.flush_tlb_local();
        }
    }
    fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64) {
        cpu.invlpg(vpn);
    }
    fn register_page_table(
        &self,
        _cpu: &Arc<Cpu>,
        _kmap: &KernelMap,
        _frame: FrameNum,
    ) -> Result<(), KernelError> {
        Ok(()) // EPT makes page-table typing unnecessary
    }
    fn unregister_page_table(
        &self,
        _cpu: &Arc<Cpu>,
        _kmap: &KernelMap,
        _frame: FrameNum,
    ) -> Result<(), KernelError> {
        Ok(())
    }
    fn pin_base_table(&self, cpu: &Arc<Cpu>, _pgd: FrameNum) -> Result<(), KernelError> {
        cpu.tick(40);
        Ok(())
    }
    fn unpin_base_table(&self, cpu: &Arc<Cpu>, _pgd: FrameNum) -> Result<(), KernelError> {
        cpu.tick(40);
        Ok(())
    }

    fn console_write(&self, cpu: &Arc<Cpu>, msg: &str) {
        // Console I/O exits to the VMM.
        cpu.tick(costs::VMEXIT + costs::VMENTRY);
        self.machine.console.write_line(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::{Machine, MachineConfig, PrivLevel};

    fn machine() -> Arc<Machine> {
        Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        })
    }

    #[test]
    fn kernel_map_locates_recorded_entries_and_translates() {
        let mut km = KernelMap {
            l1s: vec![(384, FrameNum(10)), (385, FrameNum(11))],
            slots: Default::default(),
        };
        km.record(
            FrameNum(0),
            FrameNum(10),
            0,
            KernelMap::boot_va_of(FrameNum(0)),
        );
        km.record(
            FrameNum(512),
            FrameNum(11),
            0,
            KernelMap::boot_va_of(FrameNum(512)),
        );
        assert_eq!(km.locate(FrameNum(0)), Some((FrameNum(10), 0)));
        assert_eq!(km.locate(FrameNum(512)), Some((FrameNum(11), 0)));
        assert!(km.locate(FrameNum(512 * 3)).is_none());

        // Relocation: frames renumbered, virtual layout unchanged.
        let map: std::collections::HashMap<u32, u32> =
            [(0u32, 100u32), (512, 612), (10, 110), (11, 111)].into();
        let old_va = km.va_of(FrameNum(0)).unwrap();
        km.translate(&map);
        assert_eq!(km.locate(FrameNum(100)), Some((FrameNum(110), 0)));
        assert_eq!(km.va_of(FrameNum(100)), Some(old_va));
        assert!(km.locate(FrameNum(0)).is_none());
        assert_eq!(km.l1s[0].1, FrameNum(110));
    }

    #[test]
    fn bare_ops_write_hardware_directly() {
        let m = machine();
        let ops = BareOps::new(Arc::clone(&m));
        let cpu = m.boot_cpu();
        assert_eq!(ops.mode(), ExecMode::Native);
        ops.set_pte(cpu, FrameNum(5), 3, Pte::new(7, Pte::WRITABLE))
            .unwrap();
        assert_eq!(m.mem.read_pte(cpu, FrameNum(5), 3).unwrap().frame(), 7);
        ops.load_base_table(cpu, FrameNum(5)).unwrap();
        assert_eq!(cpu.read_cr3().unwrap(), 5);
        ops.console_write(cpu, "hello");
        assert!(m.console.contains("hello"));
    }

    #[test]
    fn xen_ops_route_validated_tables_through_hypercalls() {
        let m = machine();
        let hv = Hypervisor::warm_up(&m);
        hv.activate();
        let cpu = m.boot_cpu();
        let quota = m.allocator.alloc_many(cpu, 8).unwrap();
        let dom = hv.create_domain(cpu, "dom0", quota, 0).unwrap();
        let ops = XenOps::new(Arc::clone(&hv), Arc::clone(&dom));
        assert_eq!(ops.mode(), ExecMode::Virtual);

        let f = dom.frames();
        let (pgd, l1, data) = (f[0], f[1], f[2]);
        // Building: direct writes allowed on unvalidated tables.
        ops.set_pte(cpu, pgd, 0, Pte::new(l1.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        ops.set_pte(cpu, l1, 0, Pte::new(data.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        let hc_before = hv
            .stats
            .hypercalls
            .load(std::sync::atomic::Ordering::Relaxed);
        ops.pin_base_table(cpu, pgd).unwrap();

        // Now updates go through mmu_update.
        ops.set_pte(cpu, l1, 1, Pte::new(f[3].0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        let hc_after = hv
            .stats
            .hypercalls
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(hc_after >= hc_before + 2, "pin + update must be hypercalls");

        // And invalid updates are rejected by validation.
        let err = ops
            .set_pte(cpu, l1, 2, Pte::new(l1.0, Pte::WRITABLE))
            .unwrap_err();
        assert!(matches!(err, KernelError::Hypervisor(_)));
    }

    #[test]
    fn xen_ops_virtual_if_needs_no_privilege() {
        let m = machine();
        let hv = Hypervisor::warm_up(&m);
        hv.activate();
        let cpu = m.boot_cpu();
        let quota = m.allocator.alloc_many(cpu, 4).unwrap();
        let dom = hv.create_domain(cpu, "dom0", quota, 0).unwrap();
        let ops = XenOps::new(hv, dom);
        cpu.set_pl_raw(PrivLevel::Pl1);
        ops.irq_enable(cpu);
        assert!(cpu.interrupts_enabled());
        ops.irq_disable(cpu);
        assert!(!cpu.interrupts_enabled());
    }

    #[test]
    fn xen_ops_register_page_table_flips_direct_map_ro() {
        let m = machine();
        let hv = Hypervisor::warm_up(&m);
        hv.activate();
        let cpu = m.boot_cpu();
        let quota = m.allocator.alloc_many(cpu, 8).unwrap();
        let dom = hv.create_domain(cpu, "dom0", quota, 0).unwrap();
        let ops = XenOps::new(Arc::clone(&hv), Arc::clone(&dom));
        let f = dom.frames();

        // Kernel L1 (f[0]) direct-maps f[2] writable; f[1] is a pgd
        // referencing the kernel L1 so it can be pinned.
        let km_va = KernelMap::boot_va_of(f[2]);
        let mut km = KernelMap {
            l1s: vec![(km_va.l2_index(), f[0])],
            slots: Default::default(),
        };
        km.record(f[2], f[0], km_va.l1_index(), km_va);
        ops.set_pte(cpu, f[0], km_va.l1_index(), Pte::new(f[2].0, Pte::WRITABLE))
            .unwrap();
        ops.set_pte(cpu, f[1], km_va.l2_index(), Pte::new(f[0].0, Pte::WRITABLE))
            .unwrap();
        ops.pin_base_table(cpu, f[1]).unwrap();

        ops.register_page_table(cpu, &km, f[2]).unwrap();
        let pte = m.mem.read_pte(cpu, f[0], km_va.l1_index()).unwrap();
        assert!(!pte.writable(), "direct-map entry must be read-only");

        ops.unregister_page_table(cpu, &km, f[2]).unwrap();
        let pte = m.mem.read_pte(cpu, f[0], km_va.l1_index()).unwrap();
        assert!(pte.writable());
    }
}
