//! Block drivers: the native driver and the split-model frontend.

use crate::drivers::blkback::BlkBackend;
use crate::error::KernelError;
use crate::fs::BLOCK_SIZE;
use simx86::devices::{DiskOp, DiskRequest};
use simx86::mem::FrameNum;
use simx86::{costs, Cpu, Machine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xenon::ring::{BlkOp, BlkRequest, BlkResponse, Ring};
use xenon::{Domain, Hypervisor};

/// Sectors per filesystem block.
pub const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / 512) as u64;

/// The kernel's view of a block device.
pub trait BlockDriver: Send + Sync {
    /// Read one filesystem block into `out` (must be `BLOCK_SIZE`).
    fn read_block(&self, cpu: &Arc<Cpu>, block: u64, out: &mut [u8]) -> Result<(), KernelError>;
    /// Write one filesystem block.
    fn write_block(&self, cpu: &Arc<Cpu>, block: u64, data: &[u8]) -> Result<(), KernelError>;
    /// Make all completed writes durable.
    fn flush(&self, cpu: &Arc<Cpu>) -> Result<(), KernelError>;
    /// Driver flavour (diagnostics).
    fn kind(&self) -> &'static str;
}

// ===========================================================================
// Native driver
// ===========================================================================

/// Direct driver over the machine's disk.  Requests are synchronous:
/// the full device service cost lands on the calling CPU — which is why
/// write-heavy workloads behave differently here than behind the
/// early-acking split driver.
pub struct NativeBlockDriver {
    machine: Arc<Machine>,
    bounce: FrameNum,
    next_id: AtomicU64,
}

impl NativeBlockDriver {
    /// A driver using `bounce` as its DMA buffer (one frame, owned by
    /// the kernel that creates the driver).
    pub fn new(machine: Arc<Machine>, bounce: FrameNum) -> Arc<NativeBlockDriver> {
        Arc::new(NativeBlockDriver {
            machine,
            bounce,
            next_id: AtomicU64::new(1),
        })
    }

    fn do_io(&self, cpu: &Arc<Cpu>, op: DiskOp, block: u64) -> Result<(), KernelError> {
        // A de-privileged driver domain's doorbell/port accesses trap
        // into the VMM (§3.2.4): the cost behind domain0's I/O losses.
        // In non-root (hardware-assisted) mode the same accesses cost a
        // VM exit + re-entry instead.
        if cpu.in_non_root() {
            cpu.tick(costs::VMEXIT + costs::VMENTRY);
        } else if cpu.pl() != simx86::PrivLevel::Pl0 {
            cpu.tick(costs::IO_PRIV_TRAP);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.machine.disk.submit(DiskRequest {
            id,
            op,
            sector: block * SECTORS_PER_BLOCK,
            count: SECTORS_PER_BLOCK as u32,
            pa: self.bounce.base(),
        });
        self.machine
            .disk
            .pump(&self.machine.mem, &self.machine.intc);
        loop {
            match self.machine.disk.reap() {
                Some(c) if c.id == id => {
                    cpu.tick(c.cost);
                    return if c.ok {
                        Ok(())
                    } else {
                        Err(KernelError::BadAddress)
                    };
                }
                Some(_) => continue, // someone else's completion: drop (single-owner disk)
                None => return Err(KernelError::Invalid("disk lost a request")),
            }
        }
    }
}

impl BlockDriver for NativeBlockDriver {
    fn read_block(&self, cpu: &Arc<Cpu>, block: u64, out: &mut [u8]) -> Result<(), KernelError> {
        debug_assert_eq!(out.len(), BLOCK_SIZE);
        self.do_io(cpu, DiskOp::Read, block)?;
        self.machine.mem.read_bytes(self.bounce.base(), out)?;
        Ok(())
    }

    fn write_block(&self, cpu: &Arc<Cpu>, block: u64, data: &[u8]) -> Result<(), KernelError> {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        self.machine.mem.write_bytes(self.bounce.base(), data)?;
        self.do_io(cpu, DiskOp::Write, block)
    }

    fn flush(&self, _cpu: &Arc<Cpu>) -> Result<(), KernelError> {
        Ok(()) // writes are synchronous at this layer
    }

    fn kind(&self) -> &'static str {
        "native-blk"
    }
}

// ===========================================================================
// Frontend driver
// ===========================================================================

/// The split-model frontend: forwards block I/O to a [`BlkBackend`] in
/// the driver domain through a shared-memory ring, granting the payload
/// frame per request (§5.2).
pub struct FrontendBlockDriver {
    hv: Arc<Hypervisor>,
    dom: Arc<Domain>,
    backend: parking_lot::RwLock<Arc<BlkBackend>>,
    ring: Ring,
    /// Payload frame, owned by the frontend's domain.
    buf: FrameNum,
    evtchn_port: u32,
    next_id: AtomicU64,
}

impl FrontendBlockDriver {
    /// Connect a frontend for `dom` to `backend`.  `buf` must be a frame
    /// owned by `dom`; the ring lives in the backend's shared frame.
    pub fn new(
        hv: Arc<Hypervisor>,
        dom: Arc<Domain>,
        backend: Arc<BlkBackend>,
        buf: FrameNum,
        evtchn_port: u32,
    ) -> Arc<FrontendBlockDriver> {
        Arc::new(FrontendBlockDriver {
            ring: backend.ring(),
            hv,
            dom,
            backend: parking_lot::RwLock::new(backend),
            buf,
            evtchn_port,
            next_id: AtomicU64::new(1),
        })
    }

    /// Reconnect to a new backend after live migration (§5.2: "creates
    /// the frontend device drivers and connects them to the backend
    /// drivers after the migration has been completed").
    pub fn reconnect(&self, backend: Arc<BlkBackend>) {
        *self.backend.write() = backend;
    }

    fn roundtrip(&self, cpu: &Arc<Cpu>, op: BlkOp, block: u64) -> Result<BlkResponse, KernelError> {
        let backend = Arc::clone(&self.backend.read());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let gref = self
            .hv
            .grant(cpu, &self.dom, backend.backend_dom_id(), self.buf, false)?;
        let req = BlkRequest {
            id,
            op,
            sector: block * SECTORS_PER_BLOCK,
            count: SECTORS_PER_BLOCK as u32,
            gref,
        };
        self.ring
            .push_request(cpu, &self.hv.machine.mem, &req.encode())?;
        let _ = self.hv.evtchn_send(cpu, &self.dom, self.evtchn_port);
        // The backend runs in the driver domain; on the paper's testbed
        // both share the physical CPU, so its work is charged here.
        backend.process(cpu)?;
        let rsp = self
            .ring
            .pop_response(cpu, &self.hv.machine.mem)?
            .ok_or(KernelError::Invalid("backend produced no response"))?;
        let rsp = BlkResponse::decode(&rsp);
        self.hv
            .grant_revoke(cpu, &self.dom, gref)
            .map_err(KernelError::from)?;
        if rsp.ok {
            Ok(rsp)
        } else {
            Err(KernelError::BadAddress)
        }
    }
}

impl BlockDriver for FrontendBlockDriver {
    fn read_block(&self, cpu: &Arc<Cpu>, block: u64, out: &mut [u8]) -> Result<(), KernelError> {
        debug_assert_eq!(out.len(), BLOCK_SIZE);
        let rsp = self.roundtrip(cpu, BlkOp::Read, block)?;
        // Reads are synchronous end to end: the device cost is real.
        cpu.tick(rsp.cost);
        self.hv.machine.mem.read_bytes(self.buf.base(), out)?;
        cpu.tick(400); // copy out of the shared buffer
        Ok(())
    }

    fn write_block(&self, cpu: &Arc<Cpu>, block: u64, data: &[u8]) -> Result<(), KernelError> {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        self.hv.machine.mem.write_bytes(self.buf.base(), data)?;
        cpu.tick(400); // copy into the shared buffer
        let rsp = self.roundtrip(cpu, BlkOp::Write, block)?;
        // Writes are acked by the backend before hitting the platter:
        // rsp.cost is zero here and the flush pays later.  This is the
        // §7.3 dbench effect.
        cpu.tick(rsp.cost);
        Ok(())
    }

    fn flush(&self, cpu: &Arc<Cpu>) -> Result<(), KernelError> {
        let backend = Arc::clone(&self.backend.read());
        backend.flush(cpu)
    }

    fn kind(&self) -> &'static str {
        "frontend-blk"
    }
}
