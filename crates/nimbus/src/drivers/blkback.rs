//! The block backend: the driver-domain half of the split block device.
//!
//! Pops requests from the shared ring, maps the granted payload frame,
//! and services reads synchronously against the real disk.  Writes are
//! **early-acked**: the payload is captured into a host-side queue and
//! flushed later, off the request's latency path — the write-behind the
//! paper credits for domainU's dbench advantage, "though at the cost of
//! possible inconsistency during crash".

use crate::drivers::block::{BlockDriver, NativeBlockDriver};
use crate::error::KernelError;
use crate::fs::BLOCK_SIZE;
use parking_lot::Mutex;
use simx86::mem::FrameNum;
use simx86::{costs, Cpu};
use std::sync::Arc;
use xenon::ring::{BlkOp, BlkRequest, BlkResponse, Ring};
use xenon::{DomId, Domain, Hypervisor};

/// Writes queued before the backend forces a flush itself.
pub const WRITE_QUEUE_LIMIT: usize = 256;

/// The backend.
pub struct BlkBackend {
    hv: Arc<Hypervisor>,
    /// The driver domain (domain0 / the self-virtualized OS).
    dom: Arc<Domain>,
    /// Frontend domain this backend serves.
    frontend: DomId,
    /// The real driver underneath.
    lower: Arc<NativeBlockDriver>,
    ring: Ring,
    write_queue: Mutex<Vec<(u64, Vec<u8>)>>,
}

impl BlkBackend {
    /// Build a backend for `frontend`, running in `dom`, over `lower`.
    /// `ring_frame` must be zeroed shared memory both sides can reach.
    pub fn new(
        hv: Arc<Hypervisor>,
        dom: Arc<Domain>,
        frontend: DomId,
        lower: Arc<NativeBlockDriver>,
        ring_frame: FrameNum,
    ) -> Arc<BlkBackend> {
        Arc::new(BlkBackend {
            hv,
            dom,
            frontend,
            lower,
            ring: Ring::attach(ring_frame),
            write_queue: Mutex::new(Vec::new()),
        })
    }

    /// The shared ring (the frontend attaches to the same frame).
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The backend's domain id (grant target for frontends).
    pub fn backend_dom_id(&self) -> DomId {
        self.dom.id
    }

    /// Writes captured but not yet flushed to the device.
    pub fn queued_writes(&self) -> usize {
        self.write_queue.lock().len()
    }

    /// Service every pending ring request.  Runs in driver-domain
    /// context; costs charge to `cpu`.
    pub fn process(&self, cpu: &Arc<Cpu>) -> Result<usize, KernelError> {
        let mem = &self.hv.machine.mem;
        let mut served = 0;
        while let Some(slot) = self.ring.pop_request(cpu, mem)? {
            let req = BlkRequest::decode(&slot).map_err(KernelError::from)?;
            let rsp = match self.serve(cpu, &req) {
                Ok(cost) => BlkResponse {
                    id: req.id,
                    ok: true,
                    cost,
                },
                Err(_) => BlkResponse {
                    id: req.id,
                    ok: false,
                    cost: 0,
                },
            };
            self.ring.push_response(cpu, mem, &rsp.encode())?;
            let _ = &self.hv; // evtchn notify back is implicit in the
                              // synchronous model; costs covered below.
            cpu.tick(costs::EVTCHN_NOTIFY);
            served += 1;
        }
        Ok(served)
    }

    fn serve(&self, cpu: &Arc<Cpu>, req: &BlkRequest) -> Result<u64, KernelError> {
        let mem = &self.hv.machine.mem;
        let (payload, _ro) = self.hv.grant_map(cpu, &self.dom, self.frontend, req.gref)?;
        let block = req.sector / (BLOCK_SIZE as u64 / 512);
        let result = match req.op {
            BlkOp::Read => {
                // Check the write queue first (read-after-write must see
                // queued data).
                let queued = self
                    .write_queue
                    .lock()
                    .iter()
                    .rev()
                    .find(|(b, _)| *b == block)
                    .map(|(_, d)| d.clone());
                let mut buf = vec![0u8; BLOCK_SIZE];
                match queued {
                    Some(d) => {
                        cpu.tick(500);
                        buf.copy_from_slice(&d);
                    }
                    None => self.lower.read_block(cpu, block, &mut buf)?,
                }
                mem.write_bytes(payload.base(), &buf)?;
                cpu.tick(400); // copy into the granted frame
                Ok(0)
            }
            BlkOp::Write => {
                let mut buf = vec![0u8; BLOCK_SIZE];
                mem.read_bytes(payload.base(), &mut buf)?;
                cpu.tick(400); // copy out of the granted frame
                let mut q = self.write_queue.lock();
                q.push((block, buf));
                let over = q.len() > WRITE_QUEUE_LIMIT;
                drop(q);
                if over {
                    // pdflush-style: drain half, keep absorbing bursts.
                    self.flush_some(cpu, WRITE_QUEUE_LIMIT / 2)?;
                }
                Ok(0) // early ack: no device cost on the latency path
            }
            BlkOp::Flush => {
                self.flush(cpu)?;
                Ok(0)
            }
        };
        self.hv
            .grant_unmap(cpu, &self.dom, self.frontend, req.gref)?;
        result
    }

    /// Drain the write queue to the device (cost lands here).
    pub fn flush(&self, cpu: &Arc<Cpu>) -> Result<(), KernelError> {
        let n = self.write_queue.lock().len();
        self.flush_some(cpu, n)?;
        self.lower.flush(cpu)
    }

    /// Drain up to `n` oldest queued writes.
    pub fn flush_some(&self, cpu: &Arc<Cpu>, n: usize) -> Result<(), KernelError> {
        let drained: Vec<(u64, Vec<u8>)> = {
            let mut q = self.write_queue.lock();
            let n = n.min(q.len());
            q.drain(..n).collect()
        };
        for (block, data) in drained {
            self.lower.write_block(cpu, block, &data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::block::FrontendBlockDriver;
    use simx86::{Machine, MachineConfig};

    /// Full split-stack rig: dom0 with the native driver + backend,
    /// domU with a frontend.
    pub(super) fn rig() -> (
        Arc<Machine>,
        Arc<Hypervisor>,
        Arc<FrontendBlockDriver>,
        Arc<BlkBackend>,
    ) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 4096,
        });
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();

        let q0 = machine.allocator.alloc_many(cpu, 8).unwrap();
        let dom0 = hv.create_domain(cpu, "dom0", q0, 0).unwrap();
        let qu = machine.allocator.alloc_many(cpu, 8).unwrap();
        let domu = hv.create_domain(cpu, "domU", qu, 0).unwrap();

        let bounce = dom0.frames()[0];
        let lower = NativeBlockDriver::new(Arc::clone(&machine), bounce);
        let ring_frame = hv.take_reserved(1).unwrap()[0];
        machine.mem.zero_frame(cpu, ring_frame).unwrap();
        let backend = BlkBackend::new(
            Arc::clone(&hv),
            Arc::clone(&dom0),
            domu.id,
            lower,
            ring_frame,
        );

        let port_b = hv.evtchn_alloc(cpu, &dom0).unwrap();
        let port_f = hv.evtchn_bind(cpu, &domu, dom0.id, port_b).unwrap();
        let buf = domu.frames()[0];
        let frontend = FrontendBlockDriver::new(
            Arc::clone(&hv),
            Arc::clone(&domu),
            Arc::clone(&backend),
            buf,
            port_f,
        );
        (machine, hv, frontend, backend)
    }

    #[test]
    fn split_stack_read_write_roundtrip() {
        let (machine, _hv, frontend, backend) = rig();
        let cpu = machine.boot_cpu();
        let data = vec![0xabu8; BLOCK_SIZE];
        frontend.write_block(cpu, 7, &data).unwrap();
        // Early ack: nothing on the platter yet.
        assert_eq!(backend.queued_writes(), 1);
        assert_ne!(machine.disk.read_raw(7 * 8, 4), vec![0xab; 4]);

        // Read-after-write sees the queued data.
        let mut out = vec![0u8; BLOCK_SIZE];
        frontend.read_block(cpu, 7, &mut out).unwrap();
        assert_eq!(out, data);

        // Flush makes it durable.
        frontend.flush(cpu).unwrap();
        assert_eq!(backend.queued_writes(), 0);
        assert_eq!(machine.disk.read_raw(7 * 8, 4), vec![0xab; 4]);
    }

    #[test]
    fn frontend_write_is_cheaper_than_native_write() {
        let (machine, _hv, frontend, _backend) = rig();
        let cpu = machine.boot_cpu();
        let data = vec![1u8; BLOCK_SIZE];

        let t0 = cpu.cycles();
        frontend.write_block(cpu, 3, &data).unwrap();
        let frontend_cost = cpu.cycles() - t0;

        let bounce = machine.allocator.alloc(cpu).unwrap();
        let native = NativeBlockDriver::new(Arc::clone(&machine), bounce);
        let t0 = cpu.cycles();
        native.write_block(cpu, 4, &data).unwrap();
        let native_cost = cpu.cycles() - t0;

        assert!(
            frontend_cost < native_cost,
            "early-acked split write ({frontend_cost}) must beat synchronous native write ({native_cost})"
        );
    }

    #[test]
    fn grants_are_returned_after_each_request() {
        let (machine, hv, frontend, _backend) = rig();
        let cpu = machine.boot_cpu();
        let mut out = vec![0u8; BLOCK_SIZE];
        frontend.read_block(cpu, 1, &mut out).unwrap();
        frontend.read_block(cpu, 2, &mut out).unwrap();
        // All grants revoked: none outstanding for the frontend domain.
        assert_eq!(hv.grants.outstanding(xenon::DomId(1)), 0);
    }

    #[test]
    fn queue_limit_forces_flush() {
        let (machine, _hv, frontend, backend) = rig();
        let cpu = machine.boot_cpu();
        let data = vec![2u8; BLOCK_SIZE];
        for b in 0..(WRITE_QUEUE_LIMIT as u64 + 2) {
            frontend.write_block(cpu, b % 256, &data).unwrap();
        }
        assert!(backend.queued_writes() <= WRITE_QUEUE_LIMIT);
    }
}

#[cfg(test)]
mod crash_window_tests {
    use super::tests::rig;
    use super::*;

    /// The paper's caveat about the split model's write-behind: "though
    /// at the cost of possible inconsistency during crash."  Model the
    /// crash window at the device level: data a native driver has
    /// written is on the platter; data the backend early-acked is not —
    /// until a flush closes the window.
    #[test]
    fn early_acked_writes_are_lost_in_the_crash_window() {
        let (machine, _hv, frontend, backend) = rig();
        let cpu = machine.boot_cpu();

        // Native path (what domain0/native Linux does): durable at ack.
        let bounce = machine.allocator.alloc(cpu).unwrap();
        let native = NativeBlockDriver::new(Arc::clone(&machine), bounce);
        native
            .write_block(cpu, 10, &vec![0xAAu8; BLOCK_SIZE])
            .unwrap();
        assert_eq!(machine.disk.read_raw(10 * 8, 2), vec![0xAA, 0xAA]);

        // Split path: acked but NOT durable.
        frontend
            .write_block(cpu, 11, &vec![0xBBu8; BLOCK_SIZE])
            .unwrap();
        assert_ne!(machine.disk.read_raw(11 * 8, 2), vec![0xBB, 0xBB]);
        assert_eq!(backend.queued_writes(), 1);

        // Power loss now would lose block 11 but keep block 10: that is
        // the inconsistency window.  A flush closes it.
        frontend.flush(cpu).unwrap();
        assert_eq!(machine.disk.read_raw(11 * 8, 2), vec![0xBB, 0xBB]);
    }
}
