//! Device drivers, in both shapes of the paper's §5.2:
//!
//! * **Native** drivers touch the simulated hardware directly — what a
//!   bare kernel or the driver domain (domain0) uses.
//! * **Frontend** drivers forward requests to a **backend** in the
//!   driver domain over grant-backed shared-memory rings — what a
//!   production domain (domainU) uses.

pub mod blkback;
pub mod block;
pub mod net;
pub mod netback;

pub use blkback::BlkBackend;
pub use block::{BlockDriver, FrontendBlockDriver, NativeBlockDriver};
pub use net::{FrontendNetDriver, NativeNetDriver, NetDriver};
pub use netback::NetBackend;
