//! Network drivers: native and split-model frontend.

use crate::drivers::netback::NetBackend;
use crate::error::KernelError;
use simx86::devices::Packet;
use simx86::mem::FrameNum;
use simx86::{costs, Cpu, Machine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xenon::ring::{NetMessage, Ring};
use xenon::{Domain, Hypervisor};

/// The kernel's view of a network device.
pub trait NetDriver: Send + Sync {
    /// Transmit a raw packet.
    fn send(&self, cpu: &Arc<Cpu>, pkt: &[u8]) -> Result<(), KernelError>;
    /// Pop one received packet, if any.
    fn recv(&self, cpu: &Arc<Cpu>) -> Option<Vec<u8>>;
    /// Driver flavour (diagnostics).
    fn kind(&self) -> &'static str;
}

/// Direct driver over the machine's NIC.
pub struct NativeNetDriver {
    machine: Arc<Machine>,
}

impl NativeNetDriver {
    /// A driver for `machine`'s NIC.
    pub fn new(machine: Arc<Machine>) -> Arc<NativeNetDriver> {
        Arc::new(NativeNetDriver { machine })
    }
}

impl NetDriver for NativeNetDriver {
    fn send(&self, cpu: &Arc<Cpu>, pkt: &[u8]) -> Result<(), KernelError> {
        if cpu.in_non_root() {
            cpu.tick(costs::VMEXIT + costs::VMENTRY); // doorbell exits
        } else if cpu.pl() != simx86::PrivLevel::Pl0 {
            cpu.tick(costs::IO_PRIV_TRAP); // de-privileged doorbell traps
        }
        cpu.tick(costs::NIC_PACKET_BASE + pkt.len() as u64 * costs::NIC_PER_BYTE);
        if self.machine.nic.tx(Packet::new(pkt.to_vec())) {
            Ok(())
        } else {
            Err(KernelError::Invalid("network link down"))
        }
    }

    fn recv(&self, cpu: &Arc<Cpu>) -> Option<Vec<u8>> {
        let pkt = self.machine.nic.rx()?;
        if cpu.in_non_root() {
            cpu.tick((costs::VMEXIT + costs::VMENTRY) / 2);
        } else if cpu.pl() != simx86::PrivLevel::Pl0 {
            cpu.tick(costs::IO_PRIV_TRAP / 2); // reflected rx interrupt path
        }
        cpu.tick(costs::NIC_PACKET_BASE / 2 + pkt.len() as u64 * costs::NIC_PER_BYTE);
        Some(pkt.data.to_vec())
    }

    fn kind(&self) -> &'static str {
        "native-net"
    }
}

/// Extra per-packet processing on the split path beyond the itemized
/// grant/ring/event costs: frontend descriptor management, backend
/// bridging/demux, and the extra softirq passes in both domains.
/// Calibrates ping/Iperf for domainU in Fig. 3 (≈ 0.4× / 0.3× native).
pub const SPLIT_NET_PER_PACKET: u64 = 9_000;

/// Split-model frontend: packets cross to the driver domain's
/// [`NetBackend`] through a grant-backed ring (§5.2).
pub struct FrontendNetDriver {
    hv: Arc<Hypervisor>,
    dom: Arc<Domain>,
    backend: parking_lot::RwLock<Arc<NetBackend>>,
    tx_ring: Ring,
    /// Payload frame owned by the frontend's domain.
    buf: FrameNum,
    evtchn_port: u32,
    next_id: AtomicU64,
}

impl FrontendNetDriver {
    /// Connect a frontend for `dom` to `backend`.
    pub fn new(
        hv: Arc<Hypervisor>,
        dom: Arc<Domain>,
        backend: Arc<NetBackend>,
        buf: FrameNum,
        evtchn_port: u32,
    ) -> Arc<FrontendNetDriver> {
        Arc::new(FrontendNetDriver {
            tx_ring: backend.tx_ring(),
            hv,
            dom,
            backend: parking_lot::RwLock::new(backend),
            buf,
            evtchn_port,
            next_id: AtomicU64::new(1),
        })
    }

    /// Reconnect to a new driver domain's backend after live migration
    /// (§5.2: frontends reconnect *after* the move; in-flight packet
    /// loss is the transport protocol's problem).
    pub fn reconnect(&self, backend: Arc<NetBackend>) {
        *self.backend.write() = backend;
    }
}

impl NetDriver for FrontendNetDriver {
    fn send(&self, cpu: &Arc<Cpu>, pkt: &[u8]) -> Result<(), KernelError> {
        let backend = Arc::clone(&self.backend.read());
        if pkt.len() > simx86::PAGE_SIZE as usize {
            return Err(KernelError::Invalid("packet larger than a frame"));
        }
        let mem = &self.hv.machine.mem;
        mem.write_bytes(self.buf.base(), pkt)?;
        cpu.tick(SPLIT_NET_PER_PACKET + pkt.len() as u64 * costs::NIC_PER_BYTE);
        let gref = self
            .hv
            .grant(cpu, &self.dom, backend.backend_dom_id(), self.buf, true)?;
        let msg = NetMessage {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            len: pkt.len() as u32,
            gref,
        };
        self.tx_ring.push_request(cpu, mem, &msg.encode())?;
        let _ = self.hv.evtchn_send(cpu, &self.dom, self.evtchn_port);
        backend.process_tx(cpu)?;
        // Reclaim the response slot and the grant.
        let _ = self.tx_ring.pop_response(cpu, mem)?;
        self.hv.grant_revoke(cpu, &self.dom, gref)?;
        Ok(())
    }

    fn recv(&self, cpu: &Arc<Cpu>) -> Option<Vec<u8>> {
        let backend = Arc::clone(&self.backend.read());
        // Pull anything the wire delivered into the backend first.
        backend.poll_rx(cpu).ok()?;
        let pkt = backend.take_rx_for(self.dom.id)?;
        // Charged as the rx-ring crossing: grant + ring + copy + the
        // per-packet split-path processing.
        cpu.tick(
            SPLIT_NET_PER_PACKET
                + costs::GRANT_OP
                + costs::RING_POST
                + costs::EVTCHN_NOTIFY
                + pkt.len() as u64 * costs::NIC_PER_BYTE,
        );
        Some(pkt)
    }

    fn kind(&self) -> &'static str {
        "frontend-net"
    }
}
