//! The network backend: driver-domain half of the split network device.
//!
//! Transmit: pops granted packets off the tx ring and forwards them
//! through the driver domain's native NIC driver.  Receive: drains the
//! physical NIC and queues packets per frontend domain (the rx-ring
//! crossing costs are charged on the frontend side when it collects).

use crate::drivers::net::{NativeNetDriver, NetDriver};
use crate::error::KernelError;
use parking_lot::Mutex;
use simx86::mem::FrameNum;
use simx86::{costs, Cpu};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use xenon::ring::{NetMessage, Ring};
use xenon::{DomId, Domain, Hypervisor};

/// The backend.
pub struct NetBackend {
    hv: Arc<Hypervisor>,
    dom: Arc<Domain>,
    frontend: DomId,
    lower: Arc<NativeNetDriver>,
    tx_ring: Ring,
    rx_queues: Mutex<HashMap<DomId, VecDeque<Vec<u8>>>>,
}

impl NetBackend {
    /// A backend in `dom` serving `frontend` over `lower`.
    pub fn new(
        hv: Arc<Hypervisor>,
        dom: Arc<Domain>,
        frontend: DomId,
        lower: Arc<NativeNetDriver>,
        ring_frame: FrameNum,
    ) -> Arc<NetBackend> {
        Arc::new(NetBackend {
            hv,
            dom,
            frontend,
            lower,
            tx_ring: Ring::attach(ring_frame),
            rx_queues: Mutex::new(HashMap::new()),
        })
    }

    /// The shared transmit ring.
    pub fn tx_ring(&self) -> Ring {
        self.tx_ring
    }

    /// The backend's domain id (grant target).
    pub fn backend_dom_id(&self) -> DomId {
        self.dom.id
    }

    /// Service pending transmit requests.
    pub fn process_tx(&self, cpu: &Arc<Cpu>) -> Result<usize, KernelError> {
        let mem = &self.hv.machine.mem;
        let mut n = 0;
        while let Some(slot) = self.tx_ring.pop_request(cpu, mem)? {
            let msg = NetMessage::decode(&slot);
            let (payload, _) = self.hv.grant_map(cpu, &self.dom, self.frontend, msg.gref)?;
            let mut pkt = vec![0u8; msg.len as usize];
            mem.read_bytes(payload.base(), &mut pkt)?;
            cpu.tick(msg.len as u64 * costs::NIC_PER_BYTE); // copy out
            self.hv
                .grant_unmap(cpu, &self.dom, self.frontend, msg.gref)?;
            self.lower.send(cpu, &pkt)?;
            self.tx_ring.push_response(
                cpu,
                mem,
                &NetMessage {
                    id: msg.id,
                    len: msg.len,
                    gref: msg.gref,
                }
                .encode(),
            )?;
            cpu.tick(costs::EVTCHN_NOTIFY);
            n += 1;
        }
        Ok(n)
    }

    /// Drain the physical NIC into per-frontend receive queues.
    ///
    /// Demultiplexing: every packet goes to the single frontend this
    /// backend serves (one-pair model; the driver domain's own traffic
    /// uses its native driver directly).
    pub fn poll_rx(&self, cpu: &Arc<Cpu>) -> Result<usize, KernelError> {
        let mut n = 0;
        while let Some(pkt) = self.lower.recv(cpu) {
            self.rx_queues
                .lock()
                .entry(self.frontend)
                .or_default()
                .push_back(pkt);
            n += 1;
        }
        Ok(n)
    }

    /// Pop a received packet destined for `dom`.
    pub fn take_rx_for(&self, dom: DomId) -> Option<Vec<u8>> {
        self.rx_queues.lock().get_mut(&dom)?.pop_front()
    }

    /// Packets waiting for `dom`.
    pub fn rx_backlog(&self, dom: DomId) -> usize {
        self.rx_queues
            .lock()
            .get(&dom)
            .map(|q| q.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::net::FrontendNetDriver;
    use simx86::devices::EchoWire;
    use simx86::{Machine, MachineConfig};

    fn rig() -> (Arc<Machine>, Arc<Hypervisor>, Arc<FrontendNetDriver>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        // Echo wire: everything transmitted comes straight back.
        machine.nic.connect(Arc::new(EchoWire::new(
            Arc::clone(&machine.nic),
            Arc::clone(&machine.intc),
        )));
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let q0 = machine.allocator.alloc_many(cpu, 8).unwrap();
        let dom0 = hv.create_domain(cpu, "dom0", q0, 0).unwrap();
        let qu = machine.allocator.alloc_many(cpu, 8).unwrap();
        let domu = hv.create_domain(cpu, "domU", qu, 0).unwrap();

        let lower = NativeNetDriver::new(Arc::clone(&machine));
        let ring_frame = hv.take_reserved(1).unwrap()[0];
        machine.mem.zero_frame(cpu, ring_frame).unwrap();
        let backend = NetBackend::new(
            Arc::clone(&hv),
            Arc::clone(&dom0),
            domu.id,
            lower,
            ring_frame,
        );
        let port_b = hv.evtchn_alloc(cpu, &dom0).unwrap();
        let port_f = hv.evtchn_bind(cpu, &domu, dom0.id, port_b).unwrap();
        let buf = domu.frames()[0];
        let frontend =
            FrontendNetDriver::new(Arc::clone(&hv), Arc::clone(&domu), backend, buf, port_f);
        (machine, hv, frontend)
    }

    #[test]
    fn split_send_reaches_wire_and_echo_returns() {
        let (_machine, _hv, frontend) = rig();
        let cpu = _machine.boot_cpu();
        frontend.send(cpu, &[1, 2, 3, 4]).unwrap();
        let back = frontend.recv(cpu).unwrap();
        assert_eq!(back, vec![1, 2, 3, 4]);
        assert!(frontend.recv(cpu).is_none());
    }

    #[test]
    fn split_send_costs_more_than_native_send() {
        let (machine, _hv, frontend) = rig();
        let cpu = machine.boot_cpu();
        let native = NativeNetDriver::new(Arc::clone(&machine));
        let pkt = vec![0u8; 1400];

        let t0 = cpu.cycles();
        native.send(cpu, &pkt).unwrap();
        let native_cost = cpu.cycles() - t0;

        let t0 = cpu.cycles();
        frontend.send(cpu, &pkt).unwrap();
        let split_cost = cpu.cycles() - t0;
        assert!(
            split_cost > native_cost * 3 / 2,
            "split tx ({split_cost}) must be well above native tx ({native_cost})"
        );
    }

    #[test]
    fn oversized_packet_rejected() {
        let (_machine, _hv, frontend) = rig();
        let cpu = _machine.boot_cpu();
        let too_big = vec![0u8; simx86::PAGE_SIZE as usize + 1];
        assert!(frontend.send(cpu, &too_big).is_err());
    }
}
