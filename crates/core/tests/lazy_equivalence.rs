//! Strategy-equivalence property test for `LazyValidate` (§5.1.1).
//!
//! The lazy attach admits the guest after synchronously revalidating
//! only the *kernel-critical* dirty frames; everything else is either
//! restored from the boot pre-cache snapshot or deferred to its first
//! guest touch.  The soundness claim is that none of this machinery is
//! observable in the accounting: after an attach — under an arbitrary
//! native-mode dirty set and with validation faults interleaved into
//! ordinary guest memory traffic — the page_info table is bit-identical
//! (modulo dirty bits, which are charge bookkeeping, not validation
//! state) to what a cold full recompute of the live page tables
//! produces.

use mercury::{Mercury, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
use nimbus::mm::Prot;
use nimbus::Session;
use proptest::prelude::*;
use simx86::paging::{VirtAddr, PAGE_SIZE};
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::page_info::PageInfo;
use xenon::Hypervisor;

fn rig() -> (Arc<Machine>, Arc<Hypervisor>, Arc<Mercury>) {
    let machine = Machine::new(MachineConfig {
        num_cpus: 1,
        mem_frames: 16 * 1024,
        disk_sectors: 64 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
    let kernel = nimbus::Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
    let mercury = Mercury::install(kernel, Arc::clone(&hv), TrackingStrategy::LazyValidate).unwrap();
    (machine, hv, mercury)
}

/// Validation state with the dirty charge-bookkeeping bit masked off.
fn strip(v: Vec<PageInfo>) -> Vec<PageInfo> {
    v.into_iter()
        .map(|mut r| {
            r.dirty = false;
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Post-attach page_info is bit-identical to a cold recompute of
    /// the live tables, for random dirty sets (child churn leaving
    /// freed-but-dirty tables, plus arbitrary extra dirty marks on
    /// pool frames) and with first-touch validation faults interleaved
    /// into ordinary guest pokes.
    #[test]
    fn lazy_attach_accounting_equals_cold_recompute(
        // Each round: a forked child faults in `pages` anonymous pages
        // and exits, leaving its table frames freed but dirty.
        churn_pages in proptest::collection::vec(1usize..12, 1..3),
        // Extra native-mode dirty marks, as indices into the pool.
        extra_dirty in proptest::collection::vec(0usize..8192, 0..48),
        // Guest pages faulted in after admission; the pool free list is
        // LIFO, so these reuse deferred frames and take the validation
        // fault mid-traffic.
        touches in 0usize..24,
    ) {
        let (machine, hv, mercury) = rig();
        let cpu = machine.boot_cpu();
        let dom = mercury.dom0().id;
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);

        // Random dirty set, part 1: child churn (freed + dirty tables).
        for pages in &churn_pages {
            let child = sess.fork().unwrap();
            prop_assert_eq!(sess.waitpid().unwrap(), None);
            let va = sess.mmap(*pages, Prot::RW, MmapBacking::Anon).unwrap();
            for p in 0..*pages as u64 {
                sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
            }
            sess.exit(0).unwrap();
            prop_assert_eq!(sess.waitpid().unwrap().unwrap().0, child);
        }
        // Random dirty set, part 2: arbitrary marks on pool frames
        // (conservative over-approximation is always legal).
        let pool = mercury.kernel().pool_frames();
        for i in &extra_dirty {
            hv.page_info.mark_dirty(pool[*i % pool.len()]);
        }

        // Lazy admission, then fault-interleaved guest traffic.
        mercury.switch_to_virtual(cpu).unwrap();
        if touches > 0 {
            let va = sess.mmap(touches, Prot::RW, MmapBacking::Anon).unwrap();
            for p in 0..touches as u64 {
                sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
            }
        }

        // The invariant the admission must never break: no frame the
        // kernel can execute through is still awaiting validation.
        if let Some(set) = mercury.lazy_set() {
            for f in mercury.kernel().all_table_frames() {
                prop_assert!(!set.contains(f), "critical frame {:?} deferred", f);
            }
        }

        // Live accounting vs a cold recompute of the same tables.
        let live = strip(hv.page_info.snapshot());
        let pgds = mercury.kernel().all_pgds();
        hv.page_info
            .recompute_for(cpu, &machine.mem, dom, pool.len(), &pgds)
            .unwrap();
        let cold = strip(hv.page_info.snapshot());
        prop_assert_eq!(live.len(), cold.len());
        for (i, (a, b)) in live.iter().zip(cold.iter()).enumerate() {
            prop_assert_eq!(a, b, "frame {} diverged (live vs cold recompute)", i);
        }
    }
}
