//! Live-update transparency property test (DESIGN.md §16).
//!
//! The §16 claim is that a hypervisor live-update is invisible to the
//! guest no matter where it stops: interrupted at any phase of the
//! rendezvous-protected critical section, the run either **completes
//! on v2** (handshake and transfer survived; the commit published the
//! successor before the peers were released) or **rolls back to v1**
//! (the incumbent keeps running, the staged successor is discarded) —
//! and in *both* cases guest memory, file contents, and fd positions
//! are bit-identical to a run that never attempted an update at all.
//!
//! The same observation is taken under both event-clock settings
//! (fast-forward on and off), so the test doubles as a skip-neutrality
//! check for the update path: skipping idle time must not change what
//! the guest can see either.

use mercury::{LiveUpdatePhase, Mercury, SwitchError, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking, ReadOutcome};
use nimbus::mm::Prot;
use nimbus::Session;
use proptest::prelude::*;
use simx86::paging::{VirtAddr, PAGE_SIZE};
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::Hypervisor;

/// What the run does mid-workload.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Update {
    /// Baseline: no update staged, no update attempted.
    None,
    /// Stage v2 and run the update with an abort injected at the given
    /// phase (`None` = no injection: the update completes cleanly).
    At(Option<LiveUpdatePhase>),
}

/// Everything the guest can observe about its own state.  Cycle counts
/// are deliberately absent: the update costs time (that is the serving
/// bench's business), it must not cost *state*.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    /// One peek per poked word, poked half before / half after the
    /// update point.
    peeks: Vec<u64>,
    /// Bytes consumed from the journal fd *before* the update point.
    early_read: Vec<u8>,
    /// Bytes read from the same fd *after* it: starts exactly at the
    /// pre-update file position, or the fd position leaked.
    late_read: Vec<u8>,
    /// Whole-file readback and size at the end.
    full_read: Vec<u8>,
    file_size: u64,
}

fn rig() -> (Arc<Machine>, Arc<Mercury>) {
    let machine = Machine::new(MachineConfig {
        num_cpus: 1,
        mem_frames: 16 * 1024,
        disk_sectors: 64 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = nimbus::Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
    let mercury = Mercury::install(kernel, hv, TrackingStrategy::default()).unwrap();
    (machine, mercury)
}

fn data(out: Result<ReadOutcome, nimbus::KernelError>) -> Vec<u8> {
    match out.unwrap() {
        ReadOutcome::Data(d) => d,
        ReadOutcome::Blocked => panic!("file reads never block"),
    }
}

/// One full guest run: file + mmap traffic, the update (or not) in the
/// middle, more traffic, then the observation.
fn observe(update: Update, skip: bool, pages: usize, words: &[u64], split: usize) -> Observed {
    simx86::evclock::set_default_skip(skip);
    let (machine, mercury) = rig();
    let cpu = machine.boot_cpu();
    let sess = Session::new(Arc::clone(mercury.kernel()), 0);
    mercury.switch_to_virtual(cpu).unwrap();

    // Pre-update traffic: journal bytes, then consume some so the fd
    // position sits mid-file across the update.
    let fd = sess.open("journal", true).unwrap();
    let bytes: Vec<u8> = words.iter().map(|w| (*w & 0xff) as u8).collect();
    let split = split.min(bytes.len());
    sess.write(fd, &bytes).unwrap();
    sess.lseek(fd, 0).unwrap();
    let early_read = data(sess.read(fd, split));

    // Guest memory: the first half of the words land before the update.
    let va = sess.mmap(pages as u64, Prot::RW, MmapBacking::Anon).unwrap();
    let addr = |i: usize| VirtAddr(va.0 + (i % pages) as u64 * PAGE_SIZE + (i / pages) as u64 * 8);
    let half = words.len() / 2;
    for (i, w) in words[..half].iter().enumerate() {
        sess.poke(addr(i), *w).unwrap();
    }

    // The update point.
    match update {
        Update::None => {}
        Update::At(phase) => {
            let v2 = Hypervisor::warm_up_versioned(&machine, 2);
            mercury.stage_update(Arc::clone(&v2)).unwrap();
            if phase.is_some() {
                mercury.inject_update_abort(phase);
            }
            let rolls_back = matches!(
                phase,
                Some(LiveUpdatePhase::Handshake) | Some(LiveUpdatePhase::Transfer)
            );
            let out = mercury.live_update(cpu);
            if rolls_back {
                assert!(
                    matches!(out, Err(SwitchError::UpdateRolledBack(_))),
                    "{phase:?} must roll back, got {out:?}"
                );
                assert_eq!(mercury.hv_version(), 1, "incumbent keeps running");
                assert!(!v2.is_active(), "rolled-back successor stays down");
                assert_eq!(v2.reserved_frames(), 0, "husk reservation reclaimed");
            } else {
                assert!(
                    matches!(out, Ok(SwitchOutcome::Completed { .. })),
                    "{phase:?} must complete, got {out:?}"
                );
                assert_eq!(mercury.hv_version(), 2, "successor committed");
            }
            assert_eq!(
                mercury.staged_update_version(),
                None,
                "the staged update is consumed either way"
            );
        }
    }

    // Post-update traffic: the rest of the words, a read resuming at
    // the preserved fd position (a leaked position returns the wrong
    // byte run), an append, and the whole-file readbacks.
    for (i, w) in words[half..].iter().enumerate() {
        sess.poke(addr(half + i), *w).unwrap();
    }
    let late_read = data(sess.read(fd, bytes.len()));
    sess.write(fd, &bytes).unwrap();
    let peeks: Vec<u64> = (0..words.len()).map(|i| sess.peek(addr(i)).unwrap()).collect();
    sess.lseek(fd, 0).unwrap();
    let full_read = data(sess.read(fd, 4 * bytes.len().max(1)));
    let file_size = sess.stat("journal").unwrap().size;

    simx86::evclock::set_default_skip(true);
    Observed {
        peeks,
        early_read,
        late_read,
        full_read,
        file_size,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For random guest workloads, an update interrupted at every phase
    /// — and one that completes — leaves the guest bit-identical to a
    /// run that never updated, under both event-clock settings.
    #[test]
    fn interrupted_update_is_invisible_to_the_guest(
        pages in 1usize..5,
        words in proptest::collection::vec(any::<u64>(), 2..24),
        split in 0usize..24,
    ) {
        let baseline = observe(Update::None, true, pages, &words, split);
        prop_assert_eq!(
            &baseline.peeks[..baseline.peeks.len()],
            &words[..],
            "sanity: pokes must read back"
        );
        for skip in [true, false] {
            let runs = [
                Update::None,
                Update::At(None),
                Update::At(Some(LiveUpdatePhase::Handshake)),
                Update::At(Some(LiveUpdatePhase::Transfer)),
                Update::At(Some(LiveUpdatePhase::Commit)),
            ];
            for update in runs {
                let got = observe(update, skip, pages, &words, split);
                prop_assert_eq!(
                    &got,
                    &baseline,
                    "guest state diverged: update {:?}, skip {}",
                    update,
                    skip
                );
            }
        }
    }
}
