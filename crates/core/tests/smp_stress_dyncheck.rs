//! SMP stress under the vector-clock happens-before checker.
//!
//! With `--features dyncheck` the rendezvous (§5.4) and refcount
//! (§5.1.1) hot paths carry shadow vector clocks.  This test drives
//! repeated attach/detach rounds from the control processor while a
//! peer thread services CPU 1's IPIs and two more threads churn VO
//! guards, then asserts the checker recorded **zero** protocol
//! violations: every check-in happened-before the go decision, every
//! completion happened-before the rendezvous closed, and every
//! refcount exit happened-before the quiescence gate that saw zero.

#![cfg(feature = "dyncheck")]

use mercury::{dyncheck, Mercury, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::Kernel;
use simx86::{Machine, MachineConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xenon::Hypervisor;

fn rig(cpus: usize, strategy: TrackingStrategy) -> (Arc<Machine>, Arc<Mercury>) {
    let machine = Machine::new(MachineConfig {
        num_cpus: cpus,
        mem_frames: 16 * 1024,
        disk_sectors: 64 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
    let mercury = Mercury::install(kernel, hv, strategy).unwrap();
    (machine, mercury)
}

#[test]
fn smp_stress_has_no_happens_before_violations() {
    let (machine, mercury) = rig(2, TrackingStrategy::RecomputeOnSwitch);
    // Start from a clean report buffer (other tests in this binary may
    // share the global).
    let _ = dyncheck::take_reports();

    let stop = Arc::new(AtomicBool::new(false));
    let stop_peer = Arc::new(AtomicBool::new(false));

    // Peer thread: services CPU 1 so it participates in every
    // rendezvous the CP opens.
    let peer = {
        let cpu1 = Arc::clone(&machine.cpus[1]);
        let stop = Arc::clone(&stop_peer);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                cpu1.service_pending();
                std::thread::yield_now();
            }
        })
    };

    // Guard churners: hammer the VO reference count so switch requests
    // race against live sensitive sections and get deferred.
    let churners: Vec<_> = (0..2)
        .map(|_| {
            let rc = Arc::clone(mercury.vo_refcount());
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let g = rc.enter();
                    std::hint::spin_loop();
                    drop(g);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // CP: flip modes repeatedly; a Deferred outcome (guard in flight)
    // is retried until the switch lands.
    let cpu0 = machine.boot_cpu();
    let mut completed = 0u32;
    for round in 0..10u64 {
        let to_virtual = round % 2 == 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let out = if to_virtual {
                mercury.switch_to_virtual(cpu0)
            } else {
                mercury.switch_to_native(cpu0)
            }
            .unwrap_or_else(|e| panic!("switch failed at round {round}: {e}"));
            match out {
                SwitchOutcome::Completed { .. } => {
                    completed += 1;
                    break;
                }
                SwitchOutcome::AlreadyInMode => break,
                SwitchOutcome::Deferred { .. } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "round {round} deferred past deadline"
                    );
                    std::thread::yield_now();
                }
            }
        }
    }
    assert!(completed >= 8, "only {completed} switches completed");

    stop.store(true, Ordering::Release);
    for c in churners {
        c.join().expect("churner panicked");
    }

    // End in native mode (peer thread still servicing CPU 1).
    if mercury.mode() == mercury::ExecMode::Virtual {
        loop {
            match mercury.switch_to_native(cpu0).unwrap() {
                SwitchOutcome::Deferred { .. } => std::thread::yield_now(),
                _ => break,
            }
        }
    }
    stop_peer.store(true, Ordering::Release);
    peer.join().expect("peer thread panicked");

    // The whole run must be clean: no missing happens-before edge was
    // observed by any monitor, and the count balances at this join.
    let reports = dyncheck::take_reports();
    assert!(
        reports.is_empty(),
        "happens-before checker found {} violation(s):\n{}",
        reports.len(),
        reports.join("\n")
    );
    assert_eq!(mercury.vo_refcount().check_balanced(), None);
    assert!(mercury.vo_refcount().is_idle());
}

/// SMP stress over the background scrubber: two donor threads hammer
/// [`BackgroundScrubber::donate`] while a dirtier thread keeps marking
/// pool frames and the control processor flips modes — whose
/// `DirtyRecompute` attach path consumes the *same* dirty set.  Every
/// pop is serialized by the frame-table lock, so the scrubber's
/// accounting must balance exactly, no frame may be retired more often
/// than it was marked, and the happens-before monitors on the
/// rendezvous/refcount paths must stay silent throughout.
#[test]
fn concurrent_scrub_donation_keeps_accounting_balanced() {
    use nimbus::kernel::IDLE_DONATION_QUANTUM;
    use simx86::{costs, Cpu};
    use std::sync::atomic::AtomicU64;
    use xenon::BackgroundScrubber;

    let (machine, mercury) = rig(2, TrackingStrategy::DirtyRecompute);
    let _ = dyncheck::take_reports();
    let scrubber = BackgroundScrubber::new(
        Arc::clone(&mercury.hypervisor().page_info),
        mercury.dom0().id,
    );

    let stop = Arc::new(AtomicBool::new(false));
    let stop_peer = Arc::new(AtomicBool::new(false));

    let peer = {
        let cpu1 = Arc::clone(&machine.cpus[1]);
        let stop = Arc::clone(&stop_peer);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                cpu1.service_pending();
                std::thread::yield_now();
            }
        })
    };

    // Dirtier: re-marks pool frames round-robin, counting raw marks.
    let marks = Arc::new(AtomicU64::new(0));
    let dirtier = {
        let table = Arc::clone(&mercury.hypervisor().page_info);
        let pool = mercury.kernel().pool_frames();
        let stop = Arc::clone(&stop);
        let marks = Arc::clone(&marks);
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                table.mark_dirty(pool[i % pool.len()]);
                marks.fetch_add(1, Ordering::Relaxed);
                i += 1;
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };

    // Donors: each donates idle quanta from its own host-side vCPU.
    let donors: Vec<_> = (0..2u32)
        .map(|k| {
            let s = Arc::clone(&scrubber);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let cpu = Arc::new(Cpu::new(4 + k as usize));
                while !stop.load(Ordering::Acquire) {
                    s.donate(&cpu, IDLE_DONATION_QUANTUM);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // CP: mode round trips; the dirty attach races the donors for the
    // same dirty bits.
    let cpu0 = machine.boot_cpu();
    for round in 0..6u64 {
        let to_virtual = round % 2 == 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let out = if to_virtual {
                mercury.switch_to_virtual(cpu0)
            } else {
                mercury.switch_to_native(cpu0)
            }
            .unwrap_or_else(|e| panic!("switch failed at round {round}: {e}"));
            match out {
                SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => break,
                SwitchOutcome::Deferred { .. } => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "round {round} deferred past deadline"
                    );
                    std::thread::yield_now();
                }
            }
        }
    }

    stop.store(true, Ordering::Release);
    dirtier.join().expect("dirtier panicked");
    for d in donors {
        d.join().expect("donor panicked");
    }
    if mercury.mode() == mercury::ExecMode::Virtual {
        loop {
            match mercury.switch_to_native(cpu0).unwrap() {
                SwitchOutcome::Deferred { .. } => std::thread::yield_now(),
                _ => break,
            }
        }
    }
    stop_peer.store(true, Ordering::Release);
    peer.join().expect("peer thread panicked");

    // Drain the leftover backlog so the final balance is exact.
    let cpu = Arc::new(Cpu::new(6));
    while scrubber.backlog() > 0 {
        scrubber.donate(&cpu, IDLE_DONATION_QUANTUM);
    }

    let reports = dyncheck::take_reports();
    assert!(
        reports.is_empty(),
        "happens-before checker found {} violation(s):\n{}",
        reports.len(),
        reports.join("\n")
    );
    assert!(scrubber.revalidated() > 0, "donors never retired a frame");
    assert_eq!(
        scrubber.cycles_donated(),
        scrubber.revalidated() * costs::PGINFO_RECOMPUTE_PER_FRAME,
        "a pop was charged at the wrong rate (or double-counted)"
    );
    assert!(
        scrubber.revalidated() <= marks.load(Ordering::Relaxed),
        "a frame was retired more often than it was marked"
    );
    assert_eq!(scrubber.backlog(), 0);
}
