//! Virtualization objects: Mercury's switchable, reference-counted
//! operation tables (§4.2, §5.3).
//!
//! A [`CountedVo`] wraps one of the kernel's paravirt implementations
//! (`BareOps` for the native VO, `XenOps` for the virtual VO) and adds
//! what Mercury needs on top:
//!
//! * **entry/exit reference counting** on every function ("all of these
//!   functions are reference-counted to track the execution of
//!   operating systems in a VO", §5.3);
//! * the small **pointer-indirection cost** the paper attributes to
//!   M-N's residual overhead over native Linux (§7.2: "despite a number
//!   pointer indirection introduced by the virtualization objects ...
//!   Mercury still only incurs negligible overhead");
//! * optionally, the **active tracking** mirror cost of §5.1.2's first
//!   strategy: every native page-table mutation also updates the
//!   dormant VMM's frame accounting;
//! * or, under [`TrackingStrategy::DirtyRecompute`] (the default) and
//!   [`TrackingStrategy::LazyValidate`], the far cheaper **dirty
//!   marking**: a native page-table mutation only sets the containing
//!   table frame's dirty bit in the dormant VMM's `page_info`, so the
//!   next attach revalidates just the dirtied frames — synchronously up
//!   to a cap, lazily on first touch beyond it.

use crate::pgtrack::TrackingStrategy;
use crate::refcount::VoRefCount;
use nimbus::paravirt::{ExecMode, KernelMap, PvOps};
use nimbus::KernelError;
use simx86::cpu::IdtTable;
use simx86::mem::FrameNum;
use simx86::paging::Pte;
use simx86::{costs, Cpu};
use std::sync::Arc;
use xenon::PageInfoTable;

/// Cycles charged per VO call: the function-table indirection plus the
/// code/data layout changes the paper attributes M-N's overhead to
/// (Table 1: fork 98 µs → 114 µs over ~400 sensitive ops ≈ 10⁲ cycles
/// per op).
pub const VO_INDIRECT: u64 = 100;

/// A reference-counted virtualization object.
pub struct CountedVo {
    inner: Arc<dyn PvOps>,
    counter: Arc<VoRefCount>,
    /// Frame-accounting strategy; only consulted by the native VO.
    strategy: TrackingStrategy,
    /// The dormant VMM's frame table, for dirty marking from native
    /// mode (only wired on the native VO under `DirtyRecompute`).
    page_info: Option<Arc<PageInfoTable>>,
}

impl CountedVo {
    /// Wrap `inner` with reference counting.
    pub fn new(
        inner: Arc<dyn PvOps>,
        counter: Arc<VoRefCount>,
        strategy: TrackingStrategy,
    ) -> Arc<CountedVo> {
        Arc::new(CountedVo {
            inner,
            counter,
            strategy,
            page_info: None,
        })
    }

    /// [`CountedVo::new`] with the dormant VMM's frame table attached
    /// as the dirty-marking sink — the native VO's wiring under
    /// [`TrackingStrategy::DirtyRecompute`].
    pub fn with_dirty_sink(
        inner: Arc<dyn PvOps>,
        counter: Arc<VoRefCount>,
        strategy: TrackingStrategy,
        page_info: Arc<PageInfoTable>,
    ) -> Arc<CountedVo> {
        Arc::new(CountedVo {
            inner,
            counter,
            strategy,
            page_info: Some(page_info),
        })
    }

    /// The shared reference count.
    pub fn counter(&self) -> &Arc<VoRefCount> {
        &self.counter
    }

    #[inline]
    fn enter(&self, cpu: &Arc<Cpu>) -> crate::refcount::VoGuard {
        cpu.tick(VO_INDIRECT);
        self.counter.enter()
    }

    /// Extra per-entry cost of a native page-table mutation under the
    /// strategies that watch native mode: the full mirror update of
    /// active tracking (§5.1.2), or dirty recompute's one-byte dirty
    /// mark on the containing table frame.
    #[inline]
    fn track(&self, cpu: &Arc<Cpu>, table: FrameNum, entries: u64) {
        if self.mode() != ExecMode::Native {
            return;
        }
        match self.strategy {
            TrackingStrategy::ActiveTracking => {
                cpu.tick(costs::ACTIVE_TRACK_PER_PTE * entries);
            }
            TrackingStrategy::DirtyRecompute | TrackingStrategy::LazyValidate => {
                cpu.tick(costs::DIRTY_TRACK_PER_PTE * entries);
                if let Some(pi) = &self.page_info {
                    pi.mark_dirty(table);
                }
            }
            TrackingStrategy::RecomputeOnSwitch => {}
        }
    }
}

impl PvOps for CountedVo {
    fn mode(&self) -> ExecMode {
        self.inner.mode()
    }
    fn name(&self) -> &'static str {
        match self.inner.mode() {
            ExecMode::Native => "mercury-native-vo",
            ExecMode::Virtual => "mercury-virtual-vo",
        }
    }

    fn irq_disable(&self, cpu: &Arc<Cpu>) {
        let _g = self.enter(cpu);
        self.inner.irq_disable(cpu)
    }
    fn irq_enable(&self, cpu: &Arc<Cpu>) {
        let _g = self.enter(cpu);
        self.inner.irq_enable(cpu)
    }
    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.inner.load_base_table(cpu, pgd)
    }
    fn load_trap_table(&self, cpu: &Arc<Cpu>, idt: Arc<IdtTable>) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.inner.load_trap_table(cpu, idt)
    }
    fn set_kernel_stack(&self, cpu: &Arc<Cpu>, sp: u64) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.inner.set_kernel_stack(cpu, sp)
    }
    fn syscall_entry(&self, cpu: &Arc<Cpu>) {
        cpu.tick(VO_INDIRECT);
        self.inner.syscall_entry(cpu)
    }
    fn syscall_exit(&self, cpu: &Arc<Cpu>) {
        self.inner.syscall_exit(cpu)
    }
    fn context_switch_extra(&self, cpu: &Arc<Cpu>) {
        let _g = self.enter(cpu);
        self.inner.context_switch_extra(cpu)
    }

    fn set_pte(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        index: usize,
        val: Pte,
    ) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.track(cpu, table, 1);
        self.inner.set_pte(cpu, table, index, val)
    }
    fn set_ptes(
        &self,
        cpu: &Arc<Cpu>,
        table: FrameNum,
        updates: &[(usize, Pte)],
    ) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.track(cpu, table, updates.len() as u64);
        self.inner.set_ptes(cpu, table, updates)
    }
    fn flush_tlb(&self, cpu: &Arc<Cpu>) {
        let _g = self.enter(cpu);
        self.inner.flush_tlb(cpu)
    }
    fn flush_tlb_all(&self, cpu: &Arc<Cpu>) {
        let _g = self.enter(cpu);
        self.inner.flush_tlb_all(cpu)
    }
    fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64) {
        let _g = self.enter(cpu);
        self.inner.invlpg(cpu, vpn)
    }
    fn register_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.track(cpu, frame, 1);
        self.inner.register_page_table(cpu, kmap, frame)
    }
    fn unregister_page_table(
        &self,
        cpu: &Arc<Cpu>,
        kmap: &KernelMap,
        frame: FrameNum,
    ) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.track(cpu, frame, 1);
        self.inner.unregister_page_table(cpu, kmap, frame)
    }
    fn pin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        // Tracking a pin replays a table-sized validation in the mirror.
        self.track(cpu, pgd, simx86::paging::ENTRIES_PER_TABLE as u64 / 8);
        self.inner.pin_base_table(cpu, pgd)
    }
    fn unpin_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), KernelError> {
        let _g = self.enter(cpu);
        self.track(cpu, pgd, simx86::paging::ENTRIES_PER_TABLE as u64 / 8);
        self.inner.unpin_base_table(cpu, pgd)
    }

    fn console_write(&self, cpu: &Arc<Cpu>, msg: &str) {
        let _g = self.enter(cpu);
        self.inner.console_write(cpu, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus::paravirt::BareOps;
    use simx86::{Machine, MachineConfig};

    fn rig(strategy: TrackingStrategy) -> (Arc<Machine>, Arc<CountedVo>, Arc<VoRefCount>) {
        let m = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 64,
            disk_sectors: 64,
        });
        let rc = VoRefCount::new();
        let vo = CountedVo::new(BareOps::new(Arc::clone(&m)), Arc::clone(&rc), strategy);
        (m, vo, rc)
    }

    #[test]
    fn ops_delegate_and_leave_count_balanced() {
        let (m, vo, rc) = rig(TrackingStrategy::RecomputeOnSwitch);
        let cpu = m.boot_cpu();
        vo.set_pte(cpu, FrameNum(3), 0, Pte::new(5, Pte::WRITABLE))
            .unwrap();
        assert_eq!(m.mem.read_pte(cpu, FrameNum(3), 0).unwrap().frame(), 5);
        assert!(rc.is_idle());
        assert_eq!(vo.mode(), ExecMode::Native);
        assert_eq!(vo.name(), "mercury-native-vo");
    }

    #[test]
    fn indirection_charges_cycles() {
        let (m, vo, _rc) = rig(TrackingStrategy::RecomputeOnSwitch);
        let cpu = m.boot_cpu();
        let t0 = cpu.cycles();
        vo.flush_tlb(cpu);
        let counted = cpu.cycles() - t0;

        let bare = BareOps::new(Arc::clone(&m));
        let t0 = cpu.cycles();
        bare.flush_tlb(cpu);
        let direct = cpu.cycles() - t0;
        assert_eq!(counted, direct + VO_INDIRECT);
    }

    #[test]
    fn active_tracking_charges_per_entry() {
        let (m, vo_track, _) = rig(TrackingStrategy::ActiveTracking);
        let (m2, vo_plain, _) = rig(TrackingStrategy::RecomputeOnSwitch);
        let updates: Vec<(usize, Pte)> = (0..16).map(|i| (i, Pte::ABSENT)).collect();

        let cpu = m.boot_cpu();
        let t0 = cpu.cycles();
        vo_track.set_ptes(cpu, FrameNum(3), &updates).unwrap();
        let tracked = cpu.cycles() - t0;

        let cpu2 = m2.boot_cpu();
        let t0 = cpu2.cycles();
        vo_plain.set_ptes(cpu2, FrameNum(3), &updates).unwrap();
        let plain = cpu2.cycles() - t0;

        assert_eq!(tracked, plain + 16 * costs::ACTIVE_TRACK_PER_PTE);
    }

    #[test]
    fn dirty_tracking_marks_table_and_charges_less() {
        let m = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 64,
            disk_sectors: 64,
        });
        let sink = Arc::new(PageInfoTable::new(64));
        let vo = CountedVo::with_dirty_sink(
            BareOps::new(Arc::clone(&m)),
            VoRefCount::new(),
            TrackingStrategy::DirtyRecompute,
            Arc::clone(&sink),
        );
        let updates: Vec<(usize, Pte)> = (0..16).map(|i| (i, Pte::ABSENT)).collect();

        let cpu = m.boot_cpu();
        let t0 = cpu.cycles();
        vo.set_ptes(cpu, FrameNum(3), &updates).unwrap();
        let dirty_cost = cpu.cycles() - t0;

        let (m2, vo_plain, _) = rig(TrackingStrategy::RecomputeOnSwitch);
        let cpu2 = m2.boot_cpu();
        let t0 = cpu2.cycles();
        vo_plain.set_ptes(cpu2, FrameNum(3), &updates).unwrap();
        let plain = cpu2.cycles() - t0;

        // The write marked exactly the containing table frame dirty …
        assert!(sink.get(FrameNum(3)).dirty);
        assert!(!sink.get(FrameNum(4)).dirty);
        // … at the dirty rate, well under the active mirror's.
        assert_eq!(dirty_cost, plain + 16 * costs::DIRTY_TRACK_PER_PTE);
        assert!(
            costs::DIRTY_TRACK_PER_PTE * 4 <= costs::ACTIVE_TRACK_PER_PTE,
            "dirty marking must stay far cheaper than the active mirror"
        );
    }
}
