//! The mode switcher: attaching and detaching the pre-cached VMM.
//!
//! [`Mercury::install`] prepares everything ahead of time (§4.1's
//! pre-caching): the VMM is warmed, a domain-0 record for the kernel is
//! created, both virtualization objects are built, and the dedicated
//! switch interrupt vectors are wired up.  A mode switch is then
//! triggered by raising `SELF_VIRT_ATTACH`/`SELF_VIRT_DETACH`; all the
//! work happens inside the interrupt handler at PL0 (§5.1.3), and the
//! privilege change is committed by editing the handler's return frame.
//!
//! Switch phases are **tick-exact**: no cycle inside the handler is
//! ever fast-forwarded through the event clock (`simx86::evclock`) —
//! the phases are what `switch_timeline` measures and what the static
//! budget in `volint_budget.json` prices, so they must cost exactly
//! what their priced operations add up to in every run.  Idle time
//! *between* switches (retry backoffs, serving gaps, halted CPUs) may
//! skip; the boundary is enforced structurally by volint's
//! `SWITCH-ALLOC` rule, since the event-clock API allocates
//! (DESIGN.md §14.2).
//!
//! The reference-count gate and the sub-millisecond commit, end to end:
//!
//! ```
//! use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
//! use nimbus::kernel::{BootMode, KernelConfig};
//! use nimbus::Kernel;
//! use simx86::{costs, Machine, MachineConfig};
//! use std::sync::Arc;
//! use xenon::Hypervisor;
//!
//! let machine = Machine::new(MachineConfig::up());
//! let hv = Hypervisor::warm_up(&machine);
//! let cpu = machine.boot_cpu();
//! let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
//! let kernel = Kernel::boot(
//!     Arc::clone(&machine),
//!     KernelConfig { pool, mode: BootMode::Bare, fs_blocks: 512, fs_first_block: 1 },
//! )
//! .unwrap();
//! let mercury = Mercury::install(kernel, hv, TrackingStrategy::RecomputeOnSwitch).unwrap();
//!
//! // A busy VO defers the switch to the retry timer (§5.1.1) …
//! let guard = mercury.vo_refcount().enter();
//! assert!(matches!(
//!     mercury.switch_to_virtual(cpu).unwrap(),
//!     SwitchOutcome::Deferred { refcount: 1 }
//! ));
//! drop(guard);
//!
//! // … while an idle one commits in sub-millisecond simulated time (§7.4).
//! let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).unwrap() else {
//!     unreachable!()
//! };
//! assert!(costs::cycles_to_us(cycles) < 1000.0);
//! ```

use crate::pgtrack::{TrackingStrategy, RESTORE_PER_FRAME, SYNC_REVALIDATE_CAP};
use crate::refcount::VoRefCount;
use crate::rendezvous::{Rendezvous, RendezvousError, RENDEZVOUS_TIMEOUT};
use crate::shard::{WorkQueue, SHARD_CHUNK_FRAMES};
use crate::vo::CountedVo;
use nimbus::paravirt::{BareOps, ExecMode, HvmOps, PvOps, XenOps};
use nimbus::Kernel;
use parking_lot::{Mutex, RwLock};
use simx86::cpu::{vectors, InterruptSink, PrivLevel, TrapFrame};
use simx86::mem::FrameNum;
use simx86::paging::Pte;
use simx86::vmx::Ept;
use simx86::{costs, Cpu, LazySet, Machine};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use xenon::{Domain, Hypervisor};

/// Which switching mechanism Mercury uses (the paper's §8 extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssistMode {
    /// The paper's implemented design: paravirtual de-privileging,
    /// page-table writability flips, selector fixups, frame-accounting
    /// recompute.
    #[default]
    Software,
    /// VT-x/EPT style (§8 future work): virtual mode runs the kernel in
    /// non-root PL0 behind an EPT built at install time; the switch is
    /// a VMCS load per CPU — no transfer functions at all.
    HardwareAssisted,
}

/// Fine-grained mode classification using the paper's §6 terminology:
/// *partial-virtual* mode hosts other operating systems (the machine is
/// a driver domain); *full-virtual* mode means the OS is the sole
/// domain and therefore live-migratable as a unit (§6.3's "switch the
/// machine to be maintained to the full-virtual mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeDetail {
    /// On bare hardware.
    Native,
    /// On the VMM, hosting `guests` other domains.
    PartialVirtual {
        /// Number of hosted guest domains.
        guests: usize,
    },
    /// On the VMM, alone — ready to be migrated.
    FullVirtual,
}

/// Result of a switch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOutcome {
    /// Switch committed; cycles spent inside the switch handler (the
    /// §7.4 "mode switch time").
    Completed {
        /// Cycles between handler entry and commit.
        cycles: u64,
    },
    /// The kernel was already in the requested mode.
    AlreadyInMode,
    /// Virtualization-sensitive code was in flight; the switch was
    /// deferred to the retry timer (§5.1.1).
    Deferred {
        /// The offending reference count.
        refcount: usize,
    },
}

/// Why a switch failed outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The SMP rendezvous timed out (a CPU is not servicing interrupts).
    Rendezvous(RendezvousError),
    /// Cannot detach while hosting other domains — migrate or destroy
    /// them first.
    GuestsPresent(usize),
    /// A state transfer step failed (the kernel may be inconsistent —
    /// the paper's future-work "failure-resistant mode switch" applies).
    Transfer(String),
    /// No switch has been requested on this CPU.
    NothingPending,
    /// Live-update was requested but no successor VMM has been staged
    /// with [`Mercury::stage_update`].
    NoUpdateStaged,
    /// Live-update only applies while the node runs *on* the VMM being
    /// replaced; in native mode the dormant VMM can simply be swapped
    /// wholesale.
    NotVirtual,
    /// A live-update transfer failed and the node rolled back to the
    /// incumbent VMM (guest state untouched — DESIGN.md §16 rule #3).
    UpdateRolledBack(String),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::Rendezvous(e) => write!(f, "SMP rendezvous failed: {e:?}"),
            SwitchError::GuestsPresent(n) => {
                write!(f, "cannot detach while hosting {n} guest domain(s)")
            }
            SwitchError::Transfer(e) => write!(f, "state transfer failed: {e}"),
            SwitchError::NothingPending => write!(f, "no switch outcome recorded"),
            SwitchError::NoUpdateStaged => write!(f, "no successor VMM staged for live-update"),
            SwitchError::NotVirtual => {
                write!(f, "live-update requires virtual mode (the incumbent VMM must be live)")
            }
            SwitchError::UpdateRolledBack(e) => {
                write!(f, "live-update rolled back to the incumbent VMM: {e}")
            }
        }
    }
}

impl std::error::Error for SwitchError {}

/// Running switch statistics.
#[derive(Debug, Default)]
pub struct SwitchStats {
    /// Completed native→virtual switches.
    pub attaches: AtomicU64,
    /// Completed virtual→native switches.
    pub detaches: AtomicU64,
    /// Requests deferred by the reference-count gate.
    pub deferrals: AtomicU64,
    /// Cycles of the most recent attach.
    pub last_attach_cycles: AtomicU64,
    /// Cycles of the most recent detach.
    pub last_detach_cycles: AtomicU64,
    /// Switch attempts abandoned because the SMP rendezvous failed
    /// (a peer CPU never reached its service point).  A dependability
    /// watchdog reads this to decide when to fall back to native-mode
    /// recovery (DESIGN.md §12).
    pub rendezvous_failures: AtomicU64,
    /// Wall-clock (makespan) cycles of the most recent attach-time
    /// frame-accounting phase — the §7.4 recompute, serial or sharded.
    pub last_pginfo_cycles: AtomicU64,
    /// Cumulative cycles spent inside completed native→virtual
    /// switches.  Serving-layer reports subtract two snapshots of this
    /// to charge exactly the switch cost incurred during a traffic
    /// window (the `serving_tail` bench's per-scenario accounting).
    pub total_attach_cycles: AtomicU64,
    /// Cumulative cycles spent inside completed virtual→native
    /// switches (see [`SwitchStats::total_attach_cycles`]).
    pub total_detach_cycles: AtomicU64,
    /// Completed hv-to-hv live-updates (DESIGN.md §16).
    pub live_updates: AtomicU64,
    /// Live-update attempts that failed the handshake or transfer and
    /// rolled back to the incumbent VMM.
    pub live_update_rollbacks: AtomicU64,
    /// Cycles of the most recent completed live-update (handler entry
    /// to commit, the same accounting as attach/detach).
    pub last_update_cycles: AtomicU64,
    /// Cumulative cycles spent inside completed live-updates.
    pub total_update_cycles: AtomicU64,
}

/// The phases of a live-update at which it can be interrupted; used by
/// the fault-injection hooks and the interruption property tests to
/// pin failures to a specific point of the protocol.
///
/// The commit (the VMM-slot swap plus VO swap, published before the
/// rendezvoused peers are released) is the linearization point: an
/// interruption *before* it rolls back to the incumbent VMM with guest
/// state bit-identical, an interruption *at or after* it completes on
/// the successor (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveUpdatePhase {
    /// Version/pristine/machine handshake with the staged successor.
    Handshake,
    /// State transfer: page_info recompute on the successor, event-
    /// channel and grant re-binding, domain adoption.
    Transfer,
    /// The slot swap itself — interruption here can no longer abort.
    Commit,
}

/// Descriptor of the rendezvous round in flight, published by the
/// control processor for its peers.  The epoch pins every peer-side
/// rendezvous operation to *this* round so a stale interrupt from an
/// aborted round can never check into (or complete) a later one.
#[derive(Debug, Clone, Copy)]
struct RvRound {
    epoch: u32,
    target: ExecMode,
}

/// One unit of the sharded attach-time recompute (§5.4 work phase).
#[derive(Debug, Clone, Copy)]
enum ShardChunk {
    /// A slice of the per-frame accounting scan: pure simulated cycles.
    Scan(u64),
    /// Validate one base table (and the L1s it claims) concurrently.
    Pgd(FrameNum),
}

/// A successor VMM staged for live-update, with both virtualization
/// objects pre-built against it (§4.1 pre-caching applied to the
/// update itself: nothing on the switch-critical path allocates).
struct StagedUpdate {
    hv: Arc<Hypervisor>,
    native_vo: Arc<CountedVo>,
    virtual_vo: Arc<CountedVo>,
}

/// The self-virtualization engine for one kernel.
pub struct Mercury {
    kernel: Arc<Kernel>,
    /// The VMM currently double-buffered under the kernel.  A slot
    /// (not a bare field) because a live-update replaces it wholesale;
    /// every switch path snapshots it once at entry.
    hv_slot: RwLock<Arc<Hypervisor>>,
    machine: Arc<Machine>,
    dom0: Arc<Domain>,
    refcount: Arc<VoRefCount>,
    /// Native VO slot: rebuilt at live-update because its dirty sink
    /// binds the incumbent VMM's page_info table.
    native_vo_slot: RwLock<Arc<CountedVo>>,
    /// Virtual VO slot: rebuilt at live-update because `XenOps` binds
    /// the incumbent VMM.
    virtual_vo_slot: RwLock<Arc<CountedVo>>,
    strategy: TrackingStrategy,
    assist: AssistMode,
    /// EPT for hardware-assisted mode (built at install).
    ept: Option<Arc<Ept>>,
    hvm_vo: Option<Arc<CountedVo>>,
    rendezvous: Rendezvous,
    /// The rendezvous round in flight (peers read it).  Set only after
    /// [`Rendezvous::begin`] succeeds and cleared on *every* exit path,
    /// so a failed round can never leave a stale target for a later
    /// peer to reload into (the split-brain hazard of §5.4).
    // volint::guarded_by(rendezvous) — peers may read it only from inside a rendezvous round
    rv_round: Mutex<Option<RvRound>>,
    /// Work queue of the sharded recompute, published while parked
    /// peers should pull chunks; `None` outside the work phase.
    // volint::guarded_by(rendezvous) — published/cleared only while the CP owns the round
    shard_job: Mutex<Option<Arc<WorkQueue<ShardChunk>>>>,
    /// Whether the attach-time recompute is sharded across rendezvoused
    /// peers (default on; only takes effect when peers exist).
    sharded: AtomicBool,
    /// Whether a snapshot baseline exists for the dirty strategies'
    /// dirty-bit accounting — established once at boot (the install-
    /// time pre-cache) and refreshed at every detach.
    dirty_baseline: AtomicBool,
    /// Frames admitted lazily by the most recent attach, still awaiting
    /// their first-touch validation; `None` outside a lazy admission
    /// window.  Registered on every CPU's MMU while set.
    lazy_set: Mutex<Option<Arc<LazySet>>>,
    /// Deferred switch target for the retry timer.
    pending: Mutex<Option<ExecMode>>,
    /// The staged successor VMM awaiting [`Mercury::live_update`], if
    /// any.  Deliberately *not* rendezvous-guarded: staging happens off
    /// the switch path ([`Mercury::stage_update`] pre-builds the VOs
    /// there), and only the consume inside the update round races the
    /// protocol — a plain mutex covers both.
    pending_update: Mutex<Option<StagedUpdate>>,
    /// Fault-injection hook: abort the next live-update at this phase
    /// (the interruption property tests and faultgen campaigns set it).
    update_abort: Mutex<Option<LiveUpdatePhase>>,
    /// Husk of a successor consumed by a rolled-back update, parked
    /// here by the critical section (a pointer move — freeing its
    /// 512-frame reservation is allocator work that must not extend
    /// the stop-the-world window).  [`Mercury::live_update`] drains it
    /// off the critical path.
    retired_update: Mutex<Option<Arc<Hypervisor>>>,
    last_outcome: Mutex<Option<Result<SwitchOutcome, SwitchError>>>,
    /// Statistics.
    pub stats: SwitchStats,
}

struct SwitchSink(Weak<Mercury>);

impl InterruptSink for SwitchSink {
    fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        let Some(m) = self.0.upgrade() else { return };
        match frame.vector {
            vectors::SELF_VIRT_ATTACH => m.handle_switch(cpu, frame, ExecMode::Virtual),
            vectors::SELF_VIRT_DETACH => m.handle_switch(cpu, frame, ExecMode::Native),
            vectors::SELF_VIRT_UPDATE => m.handle_live_update(cpu, frame),
            vectors::SELF_VIRT_RENDEZVOUS => m.handle_rendezvous_peer(cpu, frame),
            _ => {}
        }
    }
}

impl Mercury {
    /// Install self-virtualization onto a bare-booted kernel.
    ///
    /// Pre-caches everything a switch needs: the (already warm)
    /// hypervisor gets a domain-0 record covering the kernel's frames,
    /// the two virtualization objects are built around a shared
    /// reference count, the kernel's paravirt pointer is relocated to
    /// the native VO, and the dedicated interrupt vectors plus the
    /// retry timer are wired up.
    pub fn install(
        kernel: Arc<Kernel>,
        hv: Arc<Hypervisor>,
        strategy: TrackingStrategy,
    ) -> Result<Arc<Mercury>, SwitchError> {
        Self::install_with_assist(kernel, hv, strategy, AssistMode::Software)
    }

    /// [`Mercury::install`] with an explicit switching mechanism.  With
    /// [`AssistMode::HardwareAssisted`], the EPT over the kernel's
    /// frames is built here (warm-up, off the switch path), realizing
    /// §8's "nested page table ... could ease the tracking of the
    /// states of each page".
    pub fn install_with_assist(
        kernel: Arc<Kernel>,
        hv: Arc<Hypervisor>,
        strategy: TrackingStrategy,
        assist: AssistMode,
    ) -> Result<Arc<Mercury>, SwitchError> {
        assert_eq!(
            kernel.exec_mode(),
            ExecMode::Native,
            "Mercury installs onto a native-booted kernel"
        );
        let machine = Arc::clone(&kernel.machine);
        let cpu = machine.boot_cpu();

        // Pre-create the kernel's dom0 record while the VMM is dormant:
        // ownership of every pool frame is established once, not per
        // switch.
        let dom0 = hv
            .create_domain(cpu, "mercury-os", kernel.pool_frames(), 0)
            .map_err(|e| SwitchError::Transfer(e.to_string()))?;

        let refcount = VoRefCount::new();
        // The native VO gets the dormant VMM's page_info table as its
        // dirty sink so DirtyRecompute can mark mutated table frames.
        let native_vo = CountedVo::with_dirty_sink(
            BareOps::new(Arc::clone(&machine)) as Arc<dyn PvOps>,
            Arc::clone(&refcount),
            strategy,
            Arc::clone(&hv.page_info),
        );
        let virtual_vo = CountedVo::new(
            XenOps::new(Arc::clone(&hv), Arc::clone(&dom0)) as Arc<dyn PvOps>,
            Arc::clone(&refcount),
            strategy,
        );
        kernel.set_pv(Arc::clone(&native_vo) as Arc<dyn PvOps>);

        let (ept, hvm_vo) = if assist == AssistMode::HardwareAssisted {
            let frames = kernel.pool_frames();
            cpu.tick(costs::EPT_BUILD_PER_FRAME * frames.len() as u64);
            let ept = Ept::new(machine.mem.num_frames());
            ept.allow_all(&frames);
            let hvm_vo = CountedVo::new(
                HvmOps::new(Arc::clone(&machine)) as Arc<dyn PvOps>,
                Arc::clone(&refcount),
                strategy,
            );
            (Some(ept), Some(hvm_vo))
        } else {
            (None, None)
        };

        Ok(Self::finish_install(
            kernel, hv, machine, dom0, refcount, native_vo, virtual_vo, strategy, assist, ept,
            hvm_vo,
        ))
    }

    /// Install Mercury onto a kernel already running in **virtual mode**
    /// as `dom` on `hv` — the shape of a system restored from a
    /// checkpoint or freshly live-migrated in.  Once adopted, the
    /// kernel can `switch_to_native` and run at full speed (§6.3's
    /// "migrated back and the machine is returned to the native mode").
    pub fn adopt(
        kernel: Arc<Kernel>,
        hv: Arc<Hypervisor>,
        dom: Arc<Domain>,
        strategy: TrackingStrategy,
    ) -> Result<Arc<Mercury>, SwitchError> {
        assert_eq!(
            kernel.exec_mode(),
            ExecMode::Virtual,
            "Mercury adopts a kernel currently running as a guest"
        );
        let machine = Arc::clone(&kernel.machine);
        let refcount = VoRefCount::new();
        let native_vo = CountedVo::with_dirty_sink(
            BareOps::new(Arc::clone(&machine)) as Arc<dyn PvOps>,
            Arc::clone(&refcount),
            strategy,
            Arc::clone(&hv.page_info),
        );
        let virtual_vo = CountedVo::new(
            XenOps::new(Arc::clone(&hv), Arc::clone(&dom)) as Arc<dyn PvOps>,
            Arc::clone(&refcount),
            strategy,
        );
        kernel.set_pv(Arc::clone(&virtual_vo) as Arc<dyn PvOps>);
        Ok(Self::finish_install(
            kernel,
            hv,
            machine,
            dom,
            refcount,
            native_vo,
            virtual_vo,
            strategy,
            AssistMode::Software,
            None,
            None,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_install(
        kernel: Arc<Kernel>,
        hv: Arc<Hypervisor>,
        machine: Arc<Machine>,
        dom0: Arc<Domain>,
        refcount: Arc<VoRefCount>,
        native_vo: Arc<CountedVo>,
        virtual_vo: Arc<CountedVo>,
        strategy: TrackingStrategy,
        assist: AssistMode,
        ept: Option<Arc<Ept>>,
        hvm_vo: Option<Arc<CountedVo>>,
    ) -> Arc<Mercury> {
        let mercury = Arc::new(Mercury {
            kernel: Arc::clone(&kernel),
            hv_slot: RwLock::new(hv),
            machine,
            dom0,
            refcount,
            native_vo_slot: RwLock::new(native_vo),
            virtual_vo_slot: RwLock::new(virtual_vo),
            strategy,
            assist,
            ept,
            hvm_vo,
            rendezvous: Rendezvous::new(),
            rv_round: Mutex::new(None),
            shard_job: Mutex::new(None),
            sharded: AtomicBool::new(true),
            dirty_baseline: AtomicBool::new(false),
            lazy_set: Mutex::new(None),
            pending: Mutex::new(None),
            pending_update: Mutex::new(None),
            update_abort: Mutex::new(None),
            retired_update: Mutex::new(None),
            last_outcome: Mutex::new(None),
            stats: SwitchStats::default(),
        });

        // Boot-time pre-cache (the always-on dirty-tracking default):
        // for the dirty strategies on a native-booted kernel, compute
        // the page_info snapshot *now*, on the boot CPU, off the switch
        // path — one full-rate scan at install time buys every future
        // attach (including the first) the O(dirty) path.  An adopted
        // kernel is live in virtual mode: its table is already correct
        // and the baseline is established by the first detach.
        if strategy.uses_dirty_baseline() && kernel.exec_mode() == ExecMode::Native {
            let cpu = mercury.machine.boot_cpu();
            let owned = kernel.pool_frames().len() as u64;
            cpu.tick(costs::PGINFO_RECOMPUTE_PER_FRAME * owned);
            merctrace::counter!(cpu.id, "switch.precache.frames", owned, cpu.cycles());
            mercury.hv().page_info.reset_dirty_for(mercury.dom0.id);
            mercury.dirty_baseline.store(true, Ordering::Release);
        }

        kernel.set_self_virt_sink(Arc::new(SwitchSink(Arc::downgrade(&mercury))));

        // Retry timer (§5.1.1): every kernel timer tick (10 ms), re-raise
        // a deferred switch once the VO is idle.
        let weak = Arc::downgrade(&mercury);
        kernel.register_timer_callback(Arc::new(move |cpu: &Arc<Cpu>| {
            let Some(m) = weak.upgrade() else { return };
            let target = *m.pending.lock();
            if let Some(target) = target {
                if m.refcount.is_idle() {
                    cpu.raise(match target {
                        ExecMode::Virtual => vectors::SELF_VIRT_ATTACH,
                        ExecMode::Native => vectors::SELF_VIRT_DETACH,
                    });
                }
            }
        }));
        mercury
    }

    // ---- public API -------------------------------------------------------

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.kernel.exec_mode()
    }

    /// Current mode in the paper's partial/full-virtual terminology.
    pub fn mode_detail(&self) -> ModeDetail {
        match self.mode() {
            ExecMode::Native => ModeDetail::Native,
            ExecMode::Virtual => {
                let guests = self.hv().domains().len().saturating_sub(1);
                if guests == 0 {
                    ModeDetail::FullVirtual
                } else {
                    ModeDetail::PartialVirtual { guests }
                }
            }
        }
    }

    /// The kernel under management.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The VMM currently double-buffered under the kernel.  Returns an
    /// owned snapshot: a concurrent live-update can replace the slot,
    /// and holders of the old `Arc` keep a consistent (if outdated)
    /// view rather than a dangling reference.
    pub fn hypervisor(&self) -> Arc<Hypervisor> {
        self.hv()
    }

    /// Version of the VMM currently in the slot.
    pub fn hv_version(&self) -> u32 {
        self.hv().version()
    }

    fn hv(&self) -> Arc<Hypervisor> {
        Arc::clone(&self.hv_slot.read())
    }

    fn native_vo(&self) -> Arc<CountedVo> {
        Arc::clone(&self.native_vo_slot.read())
    }

    fn virtual_vo(&self) -> Arc<CountedVo> {
        Arc::clone(&self.virtual_vo_slot.read())
    }

    /// The kernel's domain record (dom0 once attached).
    pub fn dom0(&self) -> &Arc<Domain> {
        &self.dom0
    }

    /// The shared VO reference count (a long-running sensitive section
    /// can be marked by holding a guard from it).
    pub fn vo_refcount(&self) -> &Arc<VoRefCount> {
        &self.refcount
    }

    /// The frame-accounting strategy in force.
    pub fn strategy(&self) -> TrackingStrategy {
        self.strategy
    }

    /// The switching mechanism in force.
    pub fn assist(&self) -> AssistMode {
        self.assist
    }

    /// Enable or disable sharding the attach-time recompute across
    /// rendezvoused peers (§5.4 work phase).  Default on; with no peer
    /// CPUs the serial walk is always used.
    pub fn set_sharded_recompute(&self, on: bool) {
        self.sharded.store(on, Ordering::Release);
    }

    /// Whether the attach-time recompute is sharded across peers.
    pub fn sharded_recompute(&self) -> bool {
        self.sharded.load(Ordering::Acquire)
    }

    /// A switch target deferred by the reference-count gate, if any.
    pub fn pending_target(&self) -> Option<ExecMode> {
        *self.pending.lock()
    }

    /// The pending set of the current lazy admission window, if one is
    /// open (frames deferred by the last attach, awaiting their first
    /// guest touch).
    ///
    /// ```
    /// # use mercury::{Mercury, TrackingStrategy};
    /// # use nimbus::kernel::{BootMode, KernelConfig};
    /// # use nimbus::Kernel;
    /// # use simx86::{Machine, MachineConfig};
    /// # use std::sync::Arc;
    /// # use xenon::Hypervisor;
    /// # let machine = Machine::new(MachineConfig::up());
    /// # let hv = Hypervisor::warm_up(&machine);
    /// # let cpu = machine.boot_cpu();
    /// # let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
    /// # let kernel = Kernel::boot(
    /// #     Arc::clone(&machine),
    /// #     KernelConfig { pool, mode: BootMode::Bare, fs_blocks: 512, fs_first_block: 1 },
    /// # )
    /// # .unwrap();
    /// // LazyValidate admits the guest after validating only the dirty
    /// // kernel-critical frames; anything else dirty waits in the
    /// // pending set for its first touch.
    /// let mercury =
    ///     Mercury::install(kernel, hv, TrackingStrategy::LazyValidate).unwrap();
    /// assert!(mercury.lazy_set().is_none(), "no window before an attach");
    /// mercury.switch_to_virtual(cpu).unwrap();
    /// let pending = mercury.lazy_pending();
    /// mercury.switch_to_native(cpu).unwrap();
    /// assert!(mercury.lazy_set().is_none(), "detach drains the window");
    /// # let _ = pending;
    /// ```
    pub fn lazy_set(&self) -> Option<Arc<LazySet>> {
        self.lazy_set.lock().clone()
    }

    /// Number of frames still awaiting first-touch validation in the
    /// current lazy admission window (0 when no window is open).
    pub fn lazy_pending(&self) -> usize {
        self.lazy_set.lock().as_ref().map_or(0, |s| s.remaining())
    }

    /// Request native→virtual (attach the VMM).  Triggers the dedicated
    /// interrupt on `cpu` (the control processor) and services it.
    pub fn switch_to_virtual(&self, cpu: &Arc<Cpu>) -> Result<SwitchOutcome, SwitchError> {
        self.request(cpu, vectors::SELF_VIRT_ATTACH)
    }

    /// Request virtual→native (detach the VMM).
    pub fn switch_to_native(&self, cpu: &Arc<Cpu>) -> Result<SwitchOutcome, SwitchError> {
        self.request(cpu, vectors::SELF_VIRT_DETACH)
    }

    // ---- hypervisor live-update (DESIGN.md §16) -----------------------------

    /// Stage `successor` for a hypervisor live-update: validate the
    /// version handshake *now* and pre-build both virtualization
    /// objects against the successor, so the switch-critical handler
    /// allocates nothing (§4.1 pre-caching applied to the update).
    ///
    /// The successor must be strictly newer, dormant, pristine and on
    /// the same machine ([`xenon::liveupdate::handshake`]); staging an
    /// unacceptable successor fails here, not mid-rendezvous.
    pub fn stage_update(&self, successor: Arc<Hypervisor>) -> Result<(), SwitchError> {
        xenon::liveupdate::handshake(&self.hv(), &successor)
            .map_err(|e| SwitchError::Transfer(e.to_string()))?;
        let native_vo = CountedVo::with_dirty_sink(
            BareOps::new(Arc::clone(&self.machine)) as Arc<dyn PvOps>,
            Arc::clone(&self.refcount),
            self.strategy,
            Arc::clone(&successor.page_info),
        );
        let virtual_vo = CountedVo::new(
            XenOps::new(Arc::clone(&successor), Arc::clone(&self.dom0)) as Arc<dyn PvOps>,
            Arc::clone(&self.refcount),
            self.strategy,
        );
        *self.pending_update.lock() = Some(StagedUpdate {
            hv: successor,
            native_vo,
            virtual_vo,
        });
        Ok(())
    }

    /// Version of the staged successor VMM, if one is pending.
    pub fn staged_update_version(&self) -> Option<u32> {
        self.pending_update.lock().as_ref().map(|s| s.hv.version())
    }

    /// Drop a staged successor without applying it, handing its
    /// reserved frame pool back to the machine allocator (repeatedly
    /// staging and abandoning updates must not bleed memory).
    pub fn clear_staged_update(&self) {
        if let Some(staged) = self.pending_update.lock().take() {
            for f in staged.hv.decommission() {
                self.machine.allocator.free(f);
            }
        }
    }

    /// Abort the next live-update at `phase` (fault injection for the
    /// interruption property tests and the faultgen campaigns).  The
    /// injection is one-shot: it is consumed when it fires.
    pub fn inject_update_abort(&self, phase: Option<LiveUpdatePhase>) {
        *self.update_abort.lock() = phase;
    }

    /// Live-update the running VMM to the staged successor: rendezvous
    /// every CPU, transfer hypervisor state v1 → v2 (the guest's
    /// domain record is *adopted*, never copied — guest memory and
    /// in-flight I/O rings are bit-identical across the swap by
    /// construction), commit the VMM/VO slots, and release the peers
    /// onto the successor.  No detach to native happens in between.
    ///
    /// The block rings are quiesced here, *before* the switch-critical
    /// handler runs, so the flush's disk I/O never extends the
    /// stop-the-world window.  After a committed update the incumbent
    /// is decommissioned and its reserved frames returned to the
    /// allocator (the successor holds its own reservation), so
    /// repeated updates do not leak the 512-frame warm-up pool.
    pub fn live_update(&self, cpu: &Arc<Cpu>) -> Result<SwitchOutcome, SwitchError> {
        if self.pending_update.lock().is_none() {
            return Err(SwitchError::NoUpdateStaged);
        }
        let from = self.hv();
        self.kernel
            .sync(cpu)
            .map_err(|e| SwitchError::Transfer(e.to_string()))?;
        let out = self.request(cpu, vectors::SELF_VIRT_UPDATE);
        // Off the critical path either way: a committed update retires
        // the incumbent, a rolled-back one retires the discarded
        // successor husk the critical section parked for us.  Both
        // reservations go back to the machine allocator.
        let retiree = match &out {
            Ok(SwitchOutcome::Completed { .. }) => Some(Arc::clone(&from)),
            _ => self.retired_update.lock().take(),
        };
        if let Some(husk) = retiree {
            let reclaimed = husk.decommission();
            let _n = reclaimed.len() as u64;
            for f in reclaimed {
                self.machine.allocator.free(f);
            }
            merctrace::counter!(cpu.id, "switch.liveupdate.reclaimed", _n, cpu.cycles());
        }
        out
    }

    fn request(&self, cpu: &Arc<Cpu>, vector: u8) -> Result<SwitchOutcome, SwitchError> {
        *self.last_outcome.lock() = None;
        cpu.raise(vector);
        // The switch executes at the next interrupt-service point; for
        // the requester that is right here.
        cpu.service_pending();
        self.last_outcome
            .lock()
            .take()
            .unwrap_or(Err(SwitchError::NothingPending))
    }

    // ---- handler paths ------------------------------------------------------

    // volint::root(SWITCH, RENDEZVOUS)
    fn handle_switch(self: &Arc<Self>, cpu: &Arc<Cpu>, frame: &mut TrapFrame, target: ExecMode) {
        let result = self.try_switch(cpu, frame, target);
        if let Ok(SwitchOutcome::Completed { cycles }) = &result {
            match target {
                ExecMode::Virtual => {
                    self.stats.attaches.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .last_attach_cycles
                        .store(*cycles, Ordering::Relaxed);
                    self.stats
                        .total_attach_cycles
                        .fetch_add(*cycles, Ordering::Relaxed);
                }
                ExecMode::Native => {
                    self.stats.detaches.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .last_detach_cycles
                        .store(*cycles, Ordering::Relaxed);
                    self.stats
                        .total_detach_cycles
                        .fetch_add(*cycles, Ordering::Relaxed);
                }
            }
            *self.pending.lock() = None;
        }
        if let Err(SwitchError::Rendezvous(_)) = &result {
            self.stats.rendezvous_failures.fetch_add(1, Ordering::Relaxed);
        }
        *self.last_outcome.lock() = Some(result);
    }

    // volint::root(SWITCH, RENDEZVOUS)
    fn handle_live_update(self: &Arc<Self>, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        let result = self.try_live_update(cpu, frame);
        match &result {
            Ok(SwitchOutcome::Completed { cycles }) => {
                self.stats.live_updates.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .last_update_cycles
                    .store(*cycles, Ordering::Relaxed);
                self.stats
                    .total_update_cycles
                    .fetch_add(*cycles, Ordering::Relaxed);
            }
            Err(SwitchError::Rendezvous(_)) => {
                self.stats.rendezvous_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(SwitchError::UpdateRolledBack(_)) => {
                self.stats
                    .live_update_rollbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        *self.last_outcome.lock() = Some(result);
    }

    /// The live-update critical section: the §5.4 rendezvous protocol
    /// reused verbatim around an hv-to-hv transfer instead of a mode
    /// change.  The round target stays `Virtual` throughout — only the
    /// VMM under the (unchanged) mode is replaced, so a peer released
    /// after a rollback reloads the incumbent and one released after a
    /// commit reloads the successor, both through the same slot read.
    fn try_live_update(
        self: &Arc<Self>,
        cpu: &Arc<Cpu>,
        frame: &mut TrapFrame,
    ) -> Result<SwitchOutcome, SwitchError> {
        if self.mode() != ExecMode::Virtual {
            return Err(SwitchError::NotVirtual);
        }
        if self.assist != AssistMode::Software {
            return Err(SwitchError::Transfer(
                // volint::allow(SWITCH-ALLOC): message materializes only on the refused path, before any transfer starts
                "live-update requires the software switching mechanism".to_string(),
            ));
        }
        let from = self.hv();
        // §5.1.1 gate, unchanged for updates: never swap the VMM under
        // in-flight virtualization-sensitive code.
        let rc = self.refcount.current();
        if rc != 0 {
            self.stats.deferrals.fetch_add(1, Ordering::Relaxed);
            merctrace::counter!(cpu.id, "switch.deferred", 1, cpu.cycles());
            return Ok(SwitchOutcome::Deferred { refcount: rc });
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.refcount.assert_quiescent();

        let t0 = cpu.rdtsc();
        let peers = self.machine.num_cpus() - 1;
        if peers > 0 {
            merctrace::span_begin!(cpu.id, "switch.rendezvous.gather", cpu.cycles());
            let epoch = self.rendezvous.begin().map_err(SwitchError::Rendezvous)?;
            *self.rv_round.lock() = Some(RvRound {
                epoch,
                target: ExecMode::Virtual,
            });
            self.machine
                .intc
                .broadcast_ipi(cpu, vectors::SELF_VIRT_RENDEZVOUS);
            if let Err(e) = self.rendezvous.wait_ready(peers) {
                *self.rv_round.lock() = None;
                return Err(SwitchError::Rendezvous(e));
            }
            merctrace::span_end!(cpu.id, "switch.rendezvous.gather", cpu.cycles());
        }

        let transfer = self.update_transfer(cpu, &from);

        if peers > 0 {
            // Peers reload for Virtual either way: after a committed
            // transfer the slot already holds the successor; after a
            // rollback it still holds the incumbent.
            merctrace::span_begin!(cpu.id, "switch.rendezvous.release", cpu.cycles());
            self.rendezvous.signal_go();
            let done = self.rendezvous.wait_done(peers);
            *self.rv_round.lock() = None;
            done.map_err(SwitchError::Rendezvous)?;
            merctrace::span_end!(cpu.id, "switch.rendezvous.release", cpu.cycles());
        }
        transfer?;

        // Per-CPU reload on the CP: the successor's gate table goes
        // live here, exactly as on any attach-side reload.
        merctrace::span_begin!(cpu.id, "switch.reload_cpu", cpu.cycles());
        self.reload_cpu(cpu, ExecMode::Virtual);
        merctrace::span_end!(cpu.id, "switch.reload_cpu", cpu.cycles());
        frame.return_pl = PrivLevel::Pl1;

        Ok(SwitchOutcome::Completed {
            cycles: cpu.rdtsc() - t0,
        })
    }

    /// The hv-to-hv handshake, transfer and commit, executed between
    /// rendezvous gather and release.  Any failure before the commit
    /// discards the successor back to pristine and leaves the incumbent
    /// committed — the DESIGN.md §16 rollback; the staged update is
    /// consumed either way (a rolled-back successor must be re-staged).
    fn update_transfer(&self, cpu: &Arc<Cpu>, from: &Arc<Hypervisor>) -> Result<(), SwitchError> {
        let Some(staged) = self.pending_update.lock().take() else {
            return Err(SwitchError::NoUpdateStaged);
        };
        let abort = self.update_abort.lock().take();

        // Phase 1: handshake, re-checked inside the critical section —
        // the world may have moved since staging (a guest created, the
        // successor corrupted).
        merctrace::span_begin!(cpu.id, "switch.liveupdate.handshake", cpu.cycles());
        // volint::cost(2048) — LIVE_UPDATE_HANDSHAKE: flat version-order/pristine/machine checks plus the ring-flush bookkeeping
        cpu.tick(costs::LIVE_UPDATE_HANDSHAKE);
        let hs = xenon::liveupdate::handshake(from, &staged.hv);
        merctrace::span_end!(cpu.id, "switch.liveupdate.handshake", cpu.cycles());
        if abort == Some(LiveUpdatePhase::Handshake) {
            *self.retired_update.lock() = Some(staged.hv);
            return Err(SwitchError::UpdateRolledBack(
                // volint::allow(SWITCH-ALLOC): message materializes only on the injected-fault path
                "injected handshake fault".to_string(),
            ));
        }
        if let Err(e) = hs {
            *self.retired_update.lock() = Some(staged.hv);
            return Err(SwitchError::UpdateRolledBack(
                // volint::allow(SWITCH-ALLOC): message materializes only on the failure path, after the update has already aborted
                e.to_string(),
            ));
        }

        // Phase 2: state transfer.  The successor's frame accounting is
        // recomputed from the authoritative guest page tables (cold —
        // the successor has no dirty baseline to lean on), which also
        // heals any corruption the incumbent's table may carry; ports,
        // grants and the domain records themselves carry over adopted,
        // not copied.
        merctrace::span_begin!(cpu.id, "switch.liveupdate.transfer", cpu.cycles());
        // volint::cost(1638400) — cold successor rebuild: ≤ 16384 pool frames × PGINFO_RECOMPUTE_PER_FRAME(100)
        let res = xenon::liveupdate::transfer(
            cpu,
            from,
            &staged.hv,
            costs::PGINFO_RECOMPUTE_PER_FRAME,
        );
        let injected_tx = abort == Some(LiveUpdatePhase::Transfer);
        if injected_tx || res.is_err() {
            xenon::liveupdate::discard(cpu, &staged.hv);
        }
        merctrace::span_end!(cpu.id, "switch.liveupdate.transfer", cpu.cycles());
        if injected_tx {
            *self.retired_update.lock() = Some(staged.hv);
            return Err(SwitchError::UpdateRolledBack(
                // volint::allow(SWITCH-ALLOC): message materializes only on the injected-fault path
                "injected transfer fault".to_string(),
            ));
        }
        let _report = match res {
            Ok(r) => r,
            Err(e) => {
                *self.retired_update.lock() = Some(staged.hv);
                return Err(SwitchError::UpdateRolledBack(
                    // volint::allow(SWITCH-ALLOC): message materializes only on the failure path, after the update has already aborted
                    e.to_string(),
                ));
            }
        };
        merctrace::counter!(
            cpu.id,
            "switch.liveupdate.frames",
            _report.frames as u64,
            cpu.cycles()
        );

        // Phase 3: commit — the linearization point.  Published before
        // the peers are released, so every CPU (peers via their reload,
        // the CP right after) installs the successor.  An injected
        // `Commit` abort lands after the slot swap by definition: the
        // update can no longer be abandoned and completes on v2.
        merctrace::span_begin!(cpu.id, "switch.vo_swap", cpu.cycles());
        staged.hv.activate();
        *self.hv_slot.write() = Arc::clone(&staged.hv);
        *self.native_vo_slot.write() = Arc::clone(&staged.native_vo);
        *self.virtual_vo_slot.write() = Arc::clone(&staged.virtual_vo);
        // volint::cost(256) — one pointer store plus the trace probes
        self.kernel
            .set_pv(Arc::clone(&staged.virtual_vo) as Arc<dyn PvOps>);
        merctrace::span_end!(cpu.id, "switch.vo_swap", cpu.cycles());
        Ok(())
    }

    fn try_switch(
        self: &Arc<Self>,
        cpu: &Arc<Cpu>,
        frame: &mut TrapFrame,
        target: ExecMode,
    ) -> Result<SwitchOutcome, SwitchError> {
        if self.mode() == target {
            return Ok(SwitchOutcome::AlreadyInMode);
        }
        if target == ExecMode::Native {
            let guests = self.hv().domains().len().saturating_sub(1);
            if guests > 0 {
                return Err(SwitchError::GuestsPresent(guests));
            }
        }
        // §5.1.1: only switch when no virtualization-sensitive code is
        // in flight; otherwise defer to the retry timer.
        let rc = self.refcount.current();
        if rc != 0 {
            *self.pending.lock() = Some(target);
            self.stats.deferrals.fetch_add(1, Ordering::Relaxed);
            merctrace::counter!(cpu.id, "switch.deferred", 1, cpu.cycles());
            return Ok(SwitchOutcome::Deferred { refcount: rc });
        }
        // Dynamic invariant: every exit that let the count reach zero
        // must happen-before this decision point.
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.refcount.assert_quiescent();

        let t0 = cpu.rdtsc();
        // Probe name for the whole-switch span; only read when tracing
        // is compiled in, hence the underscore.
        let _span = match target {
            ExecMode::Virtual => "switch.attach",
            ExecMode::Native => "switch.detach",
        };
        merctrace::span_begin!(cpu.id, _span, cpu.cycles());

        // §5.4: rendezvous the other CPUs.  The round descriptor is
        // published only *after* begin() succeeds — a Busy begin must
        // not clobber the target of the round another CPU owns — and is
        // torn down on every error path so no stale target survives an
        // aborted round.
        let peers = self.machine.num_cpus() - 1;
        let mut rv_epoch = 0u32;
        if peers > 0 {
            merctrace::span_begin!(cpu.id, "switch.rendezvous.gather", cpu.cycles());
            rv_epoch = self.rendezvous.begin().map_err(SwitchError::Rendezvous)?;
            *self.rv_round.lock() = Some(RvRound {
                epoch: rv_epoch,
                target,
            });
            self.machine
                .intc
                .broadcast_ipi(cpu, vectors::SELF_VIRT_RENDEZVOUS);
            let _w0 = cpu.cycles();
            if let Err(e) = self.rendezvous.wait_ready(peers) {
                *self.rv_round.lock() = None;
                return Err(SwitchError::Rendezvous(e));
            }
            merctrace::hist!(
                cpu.id,
                "switch.rendezvous.wait",
                cpu.cycles() - _w0,
                cpu.cycles()
            );
            merctrace::span_end!(cpu.id, "switch.rendezvous.gather", cpu.cycles());
        }

        let transfer = match (self.assist, target) {
            (AssistMode::Software, ExecMode::Virtual) => self.attach_transfer(cpu),
            (AssistMode::Software, ExecMode::Native) => self.detach_transfer(cpu),
            // Hardware-assisted transfers are trivial: the VMCS/EPT
            // carry all the state (§8).  Per-CPU work happens in
            // reload_cpu.
            (AssistMode::HardwareAssisted, ExecMode::Virtual) => {
                self.hv().activate();
                Ok(())
            }
            (AssistMode::HardwareAssisted, ExecMode::Native) => {
                self.hv().deactivate();
                Ok(())
            }
        };
        if let Err(e) = &transfer {
            // Failure-resistant mode switch (the paper's §8 future-work
            // item): a half-applied transfer would leave the kernel in
            // the "undefined state" §4.2 warns about — stale selectors,
            // wrong table writability.  Compensate before unwinding.
            self.rollback_transfer(cpu, target, e);
        }

        if peers > 0 {
            // Release the peers to do their per-CPU reload; on a failed
            // transfer they reload for the *current* (unchanged) mode.
            if transfer.is_err() {
                *self.rv_round.lock() = Some(RvRound {
                    epoch: rv_epoch,
                    target: self.mode(),
                });
            }
            merctrace::span_begin!(cpu.id, "switch.rendezvous.release", cpu.cycles());
            self.rendezvous.signal_go();
            let done = self.rendezvous.wait_done(peers);
            *self.rv_round.lock() = None;
            done.map_err(SwitchError::Rendezvous)?;
            merctrace::span_end!(cpu.id, "switch.rendezvous.release", cpu.cycles());
        }
        transfer?;

        // Per-CPU reload on the control processor, and the return-stack
        // privilege edit (§5.1.3).  Non-root guests keep PL0: hardware
        // assist removes the de-privileging entirely.
        merctrace::span_begin!(cpu.id, "switch.reload_cpu", cpu.cycles());
        self.reload_cpu(cpu, target);
        merctrace::span_end!(cpu.id, "switch.reload_cpu", cpu.cycles());
        frame.return_pl = match (self.assist, target) {
            (AssistMode::Software, ExecMode::Virtual) => PrivLevel::Pl1,
            _ => PrivLevel::Pl0,
        };

        // Relocate the kernel's sensitive code: one pointer store.
        merctrace::span_begin!(cpu.id, "switch.vo_swap", cpu.cycles());
        // volint::cost(256) — one pointer store plus the trace probes
        self.kernel.set_pv(match (self.assist, target) {
            (AssistMode::HardwareAssisted, ExecMode::Virtual) => {
                // volint::allow(SWITCH-PANIC): hvm_vo is built at install time whenever assist is HardwareAssisted; checked invariant, not input
                Arc::clone(self.hvm_vo.as_ref().expect("hvm VO built at install")) as Arc<dyn PvOps>
            }
            (_, ExecMode::Virtual) => self.virtual_vo() as Arc<dyn PvOps>,
            (_, ExecMode::Native) => self.native_vo() as Arc<dyn PvOps>,
        });
        merctrace::span_end!(cpu.id, "switch.vo_swap", cpu.cycles());

        merctrace::span_end!(cpu.id, _span, cpu.cycles());
        Ok(SwitchOutcome::Completed {
            cycles: cpu.rdtsc() - t0,
        })
    }

    // volint::root(SWITCH, RENDEZVOUS)
    fn handle_rendezvous_peer(self: &Arc<Self>, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        // No round published — this is a stale interrupt left over from
        // an aborted rendezvous.  Nothing to join.
        let Some(round) = *self.rv_round.lock() else {
            return;
        };
        // Check in pinned to this round's epoch, and serve recompute
        // chunks while parked (§5.4 work phase).  A Stale error means
        // the round we saw was torn down before our check-in landed.
        let mut served = 0usize;
        if self
            .rendezvous
            .check_in_and_wait_serving(round.epoch, || self.shard_poll(cpu, &mut served))
            .is_err()
        {
            return;
        }
        // Re-read the target: a failed transfer rewrites the round so
        // peers reload for the unchanged mode.
        let target = (*self.rv_round.lock())
            .map(|r| r.target)
            .unwrap_or(round.target);
        merctrace::span_begin!(cpu.id, "switch.reload_cpu", cpu.cycles());
        self.reload_cpu(cpu, target);
        merctrace::span_end!(cpu.id, "switch.reload_cpu", cpu.cycles());
        frame.return_pl = match (self.assist, target) {
            (AssistMode::Software, ExecMode::Virtual) => PrivLevel::Pl1,
            _ => PrivLevel::Pl0,
        };
        self.rendezvous.complete_for(round.epoch);
    }

    /// Per-CPU hardware state reload (§5.1.3): gate table, descriptor
    /// table, and a CR3 reload to flush stale translations — or, with
    /// hardware assist, a VMCS load and non-root entry/exit.
    fn reload_cpu(&self, cpu: &Arc<Cpu>, target: ExecMode) {
        // Read the slot fresh: a peer parked across a live-update must
        // install the successor the commit published, not the VMM that
        // was live when it checked in.
        let hv = self.hv();
        // volint::cost(8192) — STATE_RELOAD + gate/GDT swap + CR3 reload, flat per-CPU work
        if self.assist == AssistMode::HardwareAssisted {
            cpu.tick(costs::VMCS_SWITCH);
            match target {
                ExecMode::Virtual => {
                    cpu.set_non_root(self.ept.clone());
                    cpu.tick(costs::VMENTRY);
                    hv.set_current(cpu.id, Some(self.dom0.id));
                }
                ExecMode::Native => {
                    cpu.set_non_root(None);
                    cpu.tick(costs::VMEXIT);
                    hv.set_current(cpu.id, None);
                }
            }
            return;
        }
        match target {
            ExecMode::Virtual => {
                hv.install_on_cpu(cpu);
                hv.set_current(cpu.id, Some(self.dom0.id));
            }
            ExecMode::Native => {
                hv.remove_from_cpu(cpu, self.kernel.idt());
                hv.set_current(cpu.id, None);
            }
        }
        // Reload the (unchanged) base pointer: flushes the TLB so
        // writability flips take effect.
        cpu.set_cr3_raw(cpu.cr3_raw());
    }

    // ---- state transfer (§5.1.2) --------------------------------------------

    /// Flip the direct-map writability of every page-table frame.
    fn flip_table_frames(&self, cpu: &Arc<Cpu>, to_readonly: bool) -> Result<(), SwitchError> {
        let kmap = self.kernel.kmap();
        let mem = &self.machine.mem;
        // volint::bound(256) — kernel table frames: one L2 root plus L1 tables for a 64 MiB pool, ≤ 256 by construction
        for f in self.kernel.all_table_frames() {
            // volint::cost(12) — per-frame PTE read + writability flip
            let Some((l1, idx)) = kmap.locate(f) else {
                continue;
            };
            let pte = mem
                .read_pte(cpu, l1, idx)
                // volint::allow(SWITCH-ALLOC): map_err string materializes only on the failure path, after the transfer has already aborted
                .map_err(|e| SwitchError::Transfer(e.to_string()))?;
            if !pte.present() {
                continue;
            }
            let new = if to_readonly {
                pte.without_flags(Pte::WRITABLE)
            } else {
                pte.with_flags(Pte::WRITABLE)
            };
            mem.write_pte(cpu, l1, idx, new)
                // volint::allow(SWITCH-ALLOC): map_err string materializes only on the failure path, after the transfer has already aborted
                .map_err(|e| SwitchError::Transfer(e.to_string()))?;
        }
        Ok(())
    }

    /// Rewrite cached kernel-segment selectors on every saved kernel
    /// stack (the §5.1.2 stack stub), and charge the per-thread segment
    /// transfer.
    fn fix_selectors(&self, cpu: &Arc<Cpu>, dpl: PrivLevel) {
        // volint::cost(4480) — ≤ 64 processes × THREAD_SEG_TRANSFER(70) selector rewrites
        self.kernel.fix_kstack_selectors(cpu, |ctx| {
            ctx.cs.rpl = dpl;
            ctx.ss.rpl = dpl;
        });
        cpu.tick(costs::THREAD_SEG_TRANSFER * self.kernel.process_count() as u64);
    }

    /// Undo a partially applied state transfer so the kernel continues
    /// safely in its previous mode.
    fn rollback_transfer(&self, cpu: &Arc<Cpu>, target: ExecMode, _cause: &SwitchError) {
        let hv = self.hv();
        match target {
            ExecMode::Virtual => {
                // Reverse of attach_transfer, tolerating partial state.
                hv.deactivate();
                hv.page_info.clear_types_for(self.dom0.id);
                // volint::allow(SWITCH-ALLOC): Vec::new is capacity 0 — no heap touch; rollback path besides
                self.dom0.reset_pgds(Vec::new());
                self.fix_selectors(cpu, PrivLevel::Pl0);
                let _ = self.flip_table_frames(cpu, false);
            }
            ExecMode::Native => {
                // Reverse of detach_transfer: re-arm the virtual state.
                let _ = self.flip_table_frames(cpu, true);
                self.fix_selectors(cpu, PrivLevel::Pl1);
                let pgds = self.kernel.all_pgds();
                let frames = self.kernel.pool_frames();
                let _ = hv.page_info.recompute_for_at(
                    cpu,
                    &self.machine.mem,
                    self.dom0.id,
                    frames.len(),
                    &pgds,
                    self.strategy.attach_per_frame_cost(),
                );
                self.dom0.reset_pgds(pgds);
                hv.activate();
            }
        }
    }

    fn attach_transfer(&self, cpu: &Arc<Cpu>) -> Result<(), SwitchError> {
        let hv = self.hv();
        // 1. Page-table pages become read-only in the direct map.
        merctrace::span_begin!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
        self.flip_table_frames(cpu, true)?;
        merctrace::span_end!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
        // 2. Kernel-segment privilege in every saved thread context
        //    becomes PL1.
        merctrace::span_begin!(cpu.id, "switch.transfer.fix_selectors", cpu.cycles());
        self.fix_selectors(cpu, PrivLevel::Pl1);
        merctrace::span_end!(cpu.id, "switch.transfer.fix_selectors", cpu.cycles());
        // 3. Frame accounting: make the VMM's page_info correct again.
        //    With a dirty baseline (the always-on default — established
        //    at boot and refreshed at every detach) the phase is
        //    O(dirty): synchronous revalidation of the dirty frames up
        //    to a static cap, snapshot-restore of the clean ones, and
        //    lazy first-touch deferral of the rest.  Without one (the
        //    legacy strategies) it is the full-rate recompute — serial,
        //    or sharded across the rendezvoused peers (§5.4).
        let pgds = self.kernel.all_pgds();
        let owned = self.kernel.pool_frames().len();
        let p0 = cpu.cycles();
        if self.strategy.uses_dirty_baseline() && self.dirty_baseline.load(Ordering::Acquire) {
            self.dirty_attach_phase(cpu, &pgds, owned)?;
        } else {
            merctrace::span_begin!(cpu.id, "switch.transfer.pginfo_full", cpu.cycles());
            let peers = self.machine.num_cpus() - 1;
            if peers > 0 && self.sharded.load(Ordering::Acquire) {
                self.sharded_recompute_phase(cpu, &pgds, owned)?;
            } else {
                // volint::cost(1638400) — worst case serial scan: 16384 pool frames × PGINFO_RECOMPUTE_PER_FRAME(100)
                cpu.tick(self.pginfo_scan_cycles(owned));
                hv.page_info
                    .recompute_for_at(cpu, &self.machine.mem, self.dom0.id, owned, &pgds, 0)
                    // volint::allow(SWITCH-ALLOC): map_err string materializes only on the failure path, after the transfer has already aborted
                    .map_err(|e| SwitchError::Transfer(e.to_string()))?;
            }
            merctrace::span_end!(cpu.id, "switch.transfer.pginfo_full", cpu.cycles());
        }
        self.stats
            .last_pginfo_cycles
            .store(cpu.cycles() - p0, Ordering::Relaxed);
        self.dom0.reset_pgds(pgds);
        // 4. Activate the pre-cached VMM and register the kernel's trap
        //    table with it (the VO-assistant step of §4.4).
        merctrace::span_begin!(cpu.id, "switch.transfer.trap_table", cpu.cycles());
        // volint::cost(8192) — VMM activation flag flip + trap-table registration (≤ 32 gates)
        hv.activate();
        self.virtual_vo()
            .load_trap_table(cpu, self.kernel.idt())
            // volint::allow(SWITCH-ALLOC): map_err string materializes only on the failure path, after the transfer has already aborted
            .map_err(|e| SwitchError::Transfer(e.to_string()))?;
        merctrace::span_end!(cpu.id, "switch.transfer.trap_table", cpu.cycles());
        Ok(())
    }

    fn detach_transfer(&self, cpu: &Arc<Cpu>) -> Result<(), SwitchError> {
        let hv = self.hv();
        // 0. Close the lazy admission window.  Frames still awaiting
        //    their first touch are drained in bulk: the clear below
        //    discards the accounting they would have validated into, so
        //    the deferred debt is void (DESIGN.md §7b).  The set is
        //    sealed and deregistered so a straggler touch after this
        //    point fails loudly instead of validating into a dead
        //    table.
        if let Some(set) = self.lazy_set.lock().take() {
            let _stragglers = set.drain().len();
            set.seal();
            merctrace::counter!(cpu.id, "switch.lazy.stragglers", _stragglers, cpu.cycles());
            // volint::bound(16) — one deregistration per CPU
            for peer in &self.machine.cpus {
                peer.set_lazy_set(None);
            }
        }
        // 1. The dormant VMM stops tracking.  The legacy strategies
        //    wipe its accounting wholesale (a per-frame release pass —
        //    the "cheap direction" of §7.4, but still O(owned)).  The
        //    dirty-baseline strategies *retain* the just-live
        //    accounting as the next attach's snapshot and only drop the
        //    type restrictions on the pinned table frames, so the
        //    detach-side accounting phase is O(tables) — the other half
        //    of keeping the table perpetually warm (DESIGN.md §7b).
        if self.strategy.uses_dirty_baseline() {
            merctrace::span_begin!(cpu.id, "switch.transfer.pginfo_retain", cpu.cycles());
            let tables = self.kernel.all_table_frames().len();
            // volint::cost(6400) — release pass over the ≤ 256 pinned table frames × PGINFO_CLEAR_PER_FRAME(25); the snapshot itself is retained, not wiped
            cpu.tick(self.strategy.detach_cost(self.kernel.pool_frames().len(), tables));
            hv.page_info.clear_types_for(self.dom0.id);
            // volint::allow(SWITCH-ALLOC): Vec::new is capacity 0 — no heap touch
            self.dom0.reset_pgds(Vec::new());
            // The state just validated *is* the snapshot; dirty
            // tracking (re)starts from here.
            hv.page_info.reset_dirty_for(self.dom0.id);
            self.dirty_baseline.store(true, Ordering::Release);
            merctrace::span_end!(cpu.id, "switch.transfer.pginfo_retain", cpu.cycles());
        } else {
            merctrace::span_begin!(cpu.id, "switch.transfer.pginfo_clear", cpu.cycles());
            // volint::cost(409600) — 16384 pool frames × PGINFO_CLEAR_PER_FRAME(25)
            cpu.tick(costs::PGINFO_CLEAR_PER_FRAME * self.kernel.pool_frames().len() as u64);
            hv.page_info.clear_types_for(self.dom0.id);
            // volint::allow(SWITCH-ALLOC): Vec::new is capacity 0 — no heap touch
            self.dom0.reset_pgds(Vec::new());
            merctrace::span_end!(cpu.id, "switch.transfer.pginfo_clear", cpu.cycles());
        }
        // 2. Page-table pages become writable again.
        merctrace::span_begin!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
        self.flip_table_frames(cpu, false)?;
        merctrace::span_end!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
        // 3. Saved kernel selectors go back to PL0.
        merctrace::span_begin!(cpu.id, "switch.transfer.fix_selectors", cpu.cycles());
        self.fix_selectors(cpu, PrivLevel::Pl0);
        merctrace::span_end!(cpu.id, "switch.transfer.fix_selectors", cpu.cycles());
        // 4. Deactivate.
        hv.deactivate();
        Ok(())
    }

    /// The O(dirty) accounting phase of the dirty-baseline strategies
    /// (the always-on default): partition the dirty population against
    /// the kernel-critical frame set, synchronously revalidate the
    /// critical frames (plus, for [`TrackingStrategy::DirtyRecompute`],
    /// non-critical dirty frames up to [`SYNC_REVALIDATE_CAP`]),
    /// restore clean frames from the snapshot, and defer the remainder
    /// to first-touch validation faults.
    ///
    /// Admission invariant (DESIGN.md §7b): a kernel-critical frame is
    /// never deferred — the sync quota is at least the critical-dirty
    /// count under every strategy — so the guest can never execute
    /// through a page-table frame whose validation is still pending.
    fn dirty_attach_phase(
        &self,
        cpu: &Arc<Cpu>,
        pgds: &[FrameNum],
        owned: usize,
    ) -> Result<(), SwitchError> {
        merctrace::span_begin!(cpu.id, "switch.transfer.pginfo_recompute", cpu.cycles());
        let hv = self.hv();
        let dom = self.dom0.id;
        // Kernel-critical frames: the page-table frames a guest could
        // subvert the VMM through.  (Gate and descriptor tables are not
        // frame-backed in this machine model; their transfer is the
        // trap_table phase.)
        let critical: std::collections::BTreeSet<u32> = self
            .kernel
            .all_table_frames()
            .into_iter()
            .map(|f| f.0)
            // volint::allow(SWITCH-ALLOC): the critical set is bounded by the ≤ 256 kernel table frames and built once per attach
            .collect();
        let dirty = hv.page_info.dirty_frames_for(dom);
        // Critical frames sort first so the sync quota can never
        // truncate them.
        let (mut ordered, rest): (Vec<FrameNum>, Vec<FrameNum>) =
            dirty.into_iter().partition(|f| critical.contains(&f.0));
        let n_critical = ordered.len();
        // volint::allow(SWITCH-ALLOC): extends the partitioned work-list in place (total length = dirty count)
        ordered.extend(rest);
        let quota = match self.strategy {
            // Lazy admission: only the critical frames hold the guest.
            TrackingStrategy::LazyValidate => n_critical,
            // Capped dirty recompute.  The cap (4096) exceeds the ≤ 256
            // kernel table frames, so criticals always fit under it.
            _ => SYNC_REVALIDATE_CAP.max(n_critical),
        };
        let sync = ordered.len().min(quota);
        let clean = owned.saturating_sub(ordered.len());
        // volint::cost(491520) — capped synchronous revalidation: SYNC_REVALIDATE_CAP(4096) × PGINFO_RECOMPUTE_PER_FRAME(100) + 16384 clean frames × RESTORE_PER_FRAME(5)
        cpu.tick(
            sync as u64 * costs::PGINFO_RECOMPUTE_PER_FRAME + clean as u64 * RESTORE_PER_FRAME,
        );
        // The validation itself rebuilds the whole accounting from the
        // live tables — the cycle charge above models the dirty/clean
        // split; correctness never depends on a dirty bit (a scrubbed
        // or deferred frame still validates through here).
        hv.page_info
            .recompute_for_at(cpu, &self.machine.mem, dom, owned, pgds, 0)
            // volint::allow(SWITCH-ALLOC): map_err string materializes only on the failure path, after the transfer has already aborted
            .map_err(|e| SwitchError::Transfer(e.to_string()))?;

        // Lazy admission: enqueue everything past the sync quota for
        // first-touch validation and register the pending set on every
        // CPU (registration flushes each TLB, so no cached translation
        // can bypass the first-touch check).
        merctrace::span_begin!(cpu.id, "switch.transfer.lazy_admit", cpu.cycles());
        // volint::cost(16384) — deferral enqueue: ≤ 16384 pool frames × LAZY_DEFER_PER_FRAME(1)
        // volint::allow(SWITCH-PANIC): sync = ordered.len().min(quota), so the slice start is always in bounds
        let deferred = &ordered[sync..];
        cpu.tick(deferred.len() as u64 * costs::LAZY_DEFER_PER_FRAME);
        if !deferred.is_empty() {
            debug_assert!(
                deferred.iter().all(|f| !critical.contains(&f.0)),
                "kernel-critical frame deferred past admission"
            );
            // volint::allow(SWITCH-ALLOC): one Arc'd pending set per lazy admission window
            let set = Arc::new(LazySet::new(deferred.iter().copied()));
            merctrace::counter!(
                cpu.id,
                "switch.lazy.deferred",
                deferred.len() as u64,
                cpu.cycles()
            );
            // volint::bound(16) — one registration per CPU
            for peer in &self.machine.cpus {
                peer.set_lazy_set(Some(Arc::clone(&set)));
            }
            *self.lazy_set.lock() = Some(set);
        }
        merctrace::span_end!(cpu.id, "switch.transfer.lazy_admit", cpu.cycles());
        merctrace::span_end!(cpu.id, "switch.transfer.pginfo_recompute", cpu.cycles());
        Ok(())
    }

    // ---- sharded recompute (§5.4 work phase) --------------------------------

    /// Total attach-time accounting (scan) cycles for the strategy in
    /// force, given the current dirty-frame population.
    fn pginfo_scan_cycles(&self, owned: usize) -> u64 {
        let dirty = if self.strategy.uses_dirty_baseline()
            && self.dirty_baseline.load(Ordering::Acquire)
        {
            self.hv().page_info.count_dirty_for(self.dom0.id)
        } else {
            // No baseline → every frame counts dirty; uniform-rate
            // strategies ignore the count anyway.
            owned
        };
        self.strategy.attach_cost(owned, dirty)
    }

    /// Rebuild page_info with the rendezvoused peers as workers: the
    /// accounting scan and the per-pgd validation walks are chunked
    /// onto a shared work queue that parked peers drain concurrently
    /// with the control processor.  The CP charges itself the phase
    /// *makespan* (max per-CPU spend), not the serial sum.
    fn sharded_recompute_phase(
        &self,
        cpu: &Arc<Cpu>,
        pgds: &[FrameNum],
        owned: usize,
    ) -> Result<(), SwitchError> {
        let hv = self.hv();
        let dom = self.dom0.id;
        let scan_total = self.pginfo_scan_cycles(owned);
        hv.page_info.clear_types_for(dom);

        // Split the uniform scan into SHARD_CHUNK_FRAMES-sized slices
        // and append one validation chunk per base table.
        let n_scan = owned.div_ceil(SHARD_CHUNK_FRAMES).max(1);
        // volint::allow(SWITCH-ALLOC): chunk list is built before any peer starts pulling; §5.4 accepts one allocation burst to set up the work queue
        let mut chunks = Vec::with_capacity(n_scan + pgds.len());
        let base = scan_total / n_scan as u64;
        let rem = scan_total % n_scan as u64;
        // volint::bound(128) — n_scan ≤ 16384 frames / SHARD_CHUNK_FRAMES(256) = 64, plus one chunk per pgd
        for i in 0..n_scan as u64 {
            // volint::allow(SWITCH-ALLOC): pushes into the pre-sized chunk list (capacity reserved above)
            chunks.push(ShardChunk::Scan(base + u64::from(i < rem)));
        }
        // volint::allow(SWITCH-ALLOC): extends the pre-sized chunk list (capacity reserved above)
        chunks.extend(pgds.iter().map(|&p| ShardChunk::Pgd(p)));

        // volint::allow(SWITCH-ALLOC): one Arc for the shared work queue, made before the peers are released
        let job = Arc::new(WorkQueue::new(chunks));
        merctrace::span_begin!(cpu.id, "switch.transfer.pginfo_shard", cpu.cycles());
        *self.shard_job.lock() = Some(Arc::clone(&job));
        // The CP joins the work phase as an ordinary worker, up to its
        // fair share.  Simulated time is charged to whichever CPU pulls
        // a chunk, so an uncapped queue would let one fast *host
        // thread* soak up the whole phase and serialize the modelled
        // cost; the per-CPU cap keeps the simulated schedule parallel
        // no matter how the host OS schedules the worker threads.
        let cap = self.shard_fair_share(&job);
        let mut served = 0usize;
        // volint::bound(128) — CP fair share is capped at the chunk count, ≤ 128
        while served < cap && self.shard_exec_one(cpu, &job) {
            served += 1;
            std::thread::yield_now();
        }
        // … then waits for in-flight peer chunks to retire.  The job is
        // unpublished before signal_go, so every peer chunk completion
        // happens-before the release (checked by dyncheck's
        // WorkMonitor inside wait_drained).
        let drained = job.wait_drained(RENDEZVOUS_TIMEOUT);
        *self.shard_job.lock() = None;
        merctrace::span_end!(cpu.id, "switch.transfer.pginfo_shard", cpu.cycles());
        if !drained {
            hv.page_info.clear_types_for(dom);
            return Err(SwitchError::Transfer(
                "sharded recompute work queue never drained".into(),
            ));
        }
        // Makespan accounting: the workers ran concurrently, so the
        // phase costs the slowest CPU's spend; the CP already paid its
        // own share while pulling chunks.
        let own = job.spent_of(cpu.id as u32);
        cpu.tick(job.max_spent().saturating_sub(own));
        if job.failed() {
            hv.page_info.clear_types_for(dom);
            return Err(SwitchError::Transfer(
                "sharded page_info validation failed".into(),
            ));
        }
        Ok(())
    }

    /// Pull and execute one chunk from `job` on `cpu`, charging the
    /// dispatch overhead and the chunk's work to that CPU.  Returns
    /// whether a chunk was executed.
    fn shard_exec_one(&self, cpu: &Arc<Cpu>, job: &WorkQueue<ShardChunk>) -> bool {
        let Some((_, chunk)) = job.pull() else {
            return false;
        };
        let t0 = cpu.cycles();
        cpu.tick(costs::SHARD_CHUNK_DISPATCH);
        match *chunk {
            ShardChunk::Scan(cycles) => cpu.tick(cycles),
            ShardChunk::Pgd(pgd) => {
                if self
                    .hv()
                    .page_info
                    .validate_l2_shared(cpu, &self.machine.mem, pgd, self.dom0.id)
                    .is_err()
                {
                    job.fail();
                }
            }
        }
        merctrace::counter!(cpu.id, "switch.shard.chunk", 1, cpu.cycles());
        job.complete_one(cpu.id as u32, cpu.cycles() - t0);
        true
    }

    /// A worker's fair share of `job`'s chunks (see
    /// [`Mercury::sharded_recompute_phase`] on why claims are capped).
    fn shard_fair_share(&self, job: &WorkQueue<ShardChunk>) -> usize {
        job.total().div_ceil(self.machine.num_cpus())
    }

    /// The parked peer's work-phase callback: serve one recompute chunk
    /// if a job is published and this peer is under its fair-share cap.
    /// Returns whether work was done (resets the peer's rendezvous
    /// deadline).  `served` counts this peer's claims across the round.
    fn shard_poll(&self, cpu: &Arc<Cpu>, served: &mut usize) -> bool {
        let job = self.shard_job.lock().clone();
        let Some(job) = job else { return false };
        if *served >= self.shard_fair_share(&job) {
            return false;
        }
        if self.shard_exec_one(cpu, &job) {
            *served += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nimbus::drivers::block::NativeBlockDriver;
    use nimbus::drivers::net::NativeNetDriver;
    use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
    use nimbus::mm::Prot;
    use nimbus::Session;
    use simx86::paging::{VirtAddr, PAGE_SIZE};
    use simx86::MachineConfig;

    pub(crate) fn rig(
        cpus: usize,
        strategy: TrackingStrategy,
    ) -> (Arc<Machine>, Arc<Hypervisor>, Arc<Mercury>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: cpus,
            mem_frames: 16 * 1024,
            disk_sectors: 64 * 1024,
        });
        // Pre-cache the VMM first so its reservation comes off the top.
        let hv = Hypervisor::warm_up(&machine);
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 4096,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
        let mercury = Mercury::install(kernel, Arc::clone(&hv), strategy).unwrap();
        (machine, hv, mercury)
    }

    #[test]
    fn install_keeps_native_mode_with_counted_vo() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        assert_eq!(mercury.mode(), ExecMode::Native);
        assert_eq!(mercury.kernel().pv().name(), "mercury-native-vo");
        assert!(!hv.is_active());
        assert_eq!(machine.boot_cpu().pl(), PrivLevel::Pl0);
        // dom0 record pre-created, owning the kernel's frames.
        assert!(mercury.dom0().frame_count() > 4000);
    }

    #[test]
    fn attach_enters_virtual_mode_correctly() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let outcome = mercury.switch_to_virtual(cpu).unwrap();
        let SwitchOutcome::Completed { cycles } = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert!(cycles > 0);
        assert_eq!(mercury.mode(), ExecMode::Virtual);
        assert_eq!(
            cpu.pl(),
            PrivLevel::Pl1,
            "privilege dropped via return stack"
        );
        assert!(hv.is_active());
        assert_eq!(cpu.current_idt().unwrap().owner, "xenon");
        assert_eq!(cpu.current_gdt(), simx86::cpu::Gdt::VIRTUALIZED);
        // Every live pgd is pinned & typed.
        for pgd in mercury.kernel().all_pgds() {
            let (typ, count) = hv.page_info.type_of(pgd);
            assert_eq!(typ, xenon::PageType::L2);
            assert!(count > 0);
            assert!(hv.page_info.get(pgd).pinned);
        }
        // Table frames are read-only in the direct map (§5.1.2 item 1).
        let kmap = mercury.kernel().kmap();
        for f in mercury.kernel().all_table_frames() {
            if let Some((l1, idx)) = kmap.locate(f) {
                let pte = machine.mem.read_pte(cpu, l1, idx).unwrap();
                assert!(!pte.writable(), "table frame {f:?} still writable");
            }
        }
    }

    #[test]
    fn detach_restores_native_exactly() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        let outcome = mercury.switch_to_native(cpu).unwrap();
        assert!(matches!(outcome, SwitchOutcome::Completed { .. }));
        assert_eq!(mercury.mode(), ExecMode::Native);
        assert_eq!(cpu.pl(), PrivLevel::Pl0);
        assert!(!hv.is_active());
        assert_eq!(cpu.current_idt().unwrap().owner, "nimbus");
        assert_eq!(cpu.current_gdt(), simx86::cpu::Gdt::NATIVE);
        // Accounting wiped, tables writable again.
        for pgd in mercury.kernel().all_pgds() {
            assert_eq!(hv.page_info.type_of(pgd), (xenon::PageType::None, 0));
        }
        let kmap = mercury.kernel().kmap();
        for f in mercury.kernel().all_table_frames() {
            if let Some((l1, idx)) = kmap.locate(f) {
                assert!(machine.mem.read_pte(cpu, l1, idx).unwrap().writable());
            }
        }
    }

    #[test]
    fn workload_runs_identically_across_switches() {
        // §4.3 behaviour consistency: a workload spanning mode switches
        // sees no difference.
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 100).unwrap();

        mercury.switch_to_virtual(cpu).unwrap();
        // Memory contents and mappings survived; new work proceeds.
        assert_eq!(sess.peek(va).unwrap(), 100);
        sess.poke(VirtAddr(va.0 + PAGE_SIZE), 200).unwrap();
        let child = sess.fork().unwrap();
        assert!(child.0 > 1);
        let fd = sess.open("cross.txt", true).unwrap();
        sess.write(fd, b"written virtual").unwrap();

        mercury.switch_to_native(cpu).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 100);
        assert_eq!(sess.peek(VirtAddr(va.0 + PAGE_SIZE)).unwrap(), 200);
        assert_eq!(sess.stat("cross.txt").unwrap().size, 15);
        // And a process forked in virtual mode is still schedulable.
        sess.sched_yield().unwrap();
        assert_eq!(sess.current_pid(), Some(child));
    }

    #[test]
    fn busy_vo_defers_and_retry_timer_commits() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let guard = mercury.vo_refcount().enter();
        let outcome = mercury.switch_to_virtual(cpu).unwrap();
        assert_eq!(outcome, SwitchOutcome::Deferred { refcount: 1 });
        assert_eq!(mercury.mode(), ExecMode::Native);
        assert_eq!(mercury.pending_target(), Some(ExecMode::Virtual));
        assert_eq!(mercury.stats.deferrals.load(Ordering::Relaxed), 1);

        // Still busy at the next tick: stays native.
        cpu.tick(costs::SWITCH_RETRY_PERIOD + 1000);
        machine.timer.poll(cpu);
        cpu.service_pending();
        assert_eq!(mercury.mode(), ExecMode::Native);

        // Release and let the retry timer fire (§5.1.1).
        drop(guard);
        cpu.tick(costs::SWITCH_RETRY_PERIOD + 1000);
        machine.timer.poll(cpu);
        cpu.service_pending();
        assert_eq!(mercury.mode(), ExecMode::Virtual);
        assert_eq!(mercury.pending_target(), None);
    }

    #[test]
    fn switch_times_match_paper_shape() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let SwitchOutcome::Completed { cycles: attach } = mercury.switch_to_virtual(cpu).unwrap()
        else {
            panic!()
        };
        let SwitchOutcome::Completed { cycles: detach } = mercury.switch_to_native(cpu).unwrap()
        else {
            panic!()
        };
        let attach_us = costs::cycles_to_us(attach);
        let detach_us = costs::cycles_to_us(detach);
        // §7.4: "about 0.22 ms to do a switch from native mode to
        // virtual mode, and 0.06 ms to a switch back".
        assert!(
            (60.0..600.0).contains(&attach_us),
            "attach {attach_us} µs out of band"
        );
        assert!(
            detach_us < attach_us / 2.0,
            "detach {detach_us} µs not ≪ attach"
        );
        assert!(detach_us > 1.0);
    }

    #[test]
    fn active_tracking_attaches_faster() {
        let (m1, _h1, recompute) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let (m2, _h2, tracking) = rig(1, TrackingStrategy::ActiveTracking);
        let SwitchOutcome::Completed { cycles: slow } =
            recompute.switch_to_virtual(m1.boot_cpu()).unwrap()
        else {
            panic!()
        };
        let SwitchOutcome::Completed { cycles: fast } =
            tracking.switch_to_virtual(m2.boot_cpu()).unwrap()
        else {
            panic!()
        };
        assert!(
            fast < slow / 2,
            "active tracking attach ({fast}) should be well under recompute ({slow})"
        );
    }

    #[test]
    fn repeated_round_trips_are_stable() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();

        let mut snapshots = Vec::new();
        for i in 0..5u64 {
            sess.poke(va, i).unwrap();
            mercury.switch_to_virtual(cpu).unwrap();
            // Strip dirty bits: they legitimately differ run to run.
            let snap: Vec<_> = hv
                .page_info
                .snapshot()
                .into_iter()
                .map(|mut r| {
                    r.dirty = false;
                    r
                })
                .collect();
            snapshots.push(snap);
            assert_eq!(sess.peek(va).unwrap(), i);
            mercury.switch_to_native(cpu).unwrap();
        }
        // Idempotence: every attach rebuilt identical accounting.
        for w in snapshots.windows(2) {
            assert_eq!(w[0], w[1], "page_info differs between attaches");
        }
        assert_eq!(mercury.stats.attaches.load(Ordering::Relaxed), 5);
        assert_eq!(mercury.stats.detaches.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn detach_refused_while_hosting_guests() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        // Host a guest (the M-U shape).
        let quota = machine.allocator.alloc_many(cpu, 64).unwrap();
        let domu = hv.create_domain(cpu, "domU", quota, 0).unwrap();
        let err = mercury.switch_to_native(cpu).unwrap_err();
        assert_eq!(err, SwitchError::GuestsPresent(1));
        assert_eq!(mercury.mode(), ExecMode::Virtual);
        // Destroy the guest: detach proceeds.
        let frames = hv.destroy_domain(cpu, &domu).unwrap();
        for f in frames {
            machine.allocator.free(f);
        }
        assert!(matches!(
            mercury.switch_to_native(cpu).unwrap(),
            SwitchOutcome::Completed { .. }
        ));
    }

    #[test]
    fn mode_detail_follows_hosted_guests() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        assert_eq!(mercury.mode_detail(), ModeDetail::Native);
        mercury.switch_to_virtual(cpu).unwrap();
        // Alone on the VMM: migratable (§6.3's full-virtual mode).
        assert_eq!(mercury.mode_detail(), ModeDetail::FullVirtual);
        let quota = machine.allocator.alloc_many(cpu, 16).unwrap();
        let dom = hv.create_domain(cpu, "tenant", quota, 0).unwrap();
        // Hosting: partial-virtual mode.
        assert_eq!(
            mercury.mode_detail(),
            ModeDetail::PartialVirtual { guests: 1 }
        );
        let frames = hv.destroy_domain(cpu, &dom).unwrap();
        for f in frames {
            machine.allocator.free(f);
        }
        assert_eq!(mercury.mode_detail(), ModeDetail::FullVirtual);
        mercury.switch_to_native(cpu).unwrap();
        assert_eq!(mercury.mode_detail(), ModeDetail::Native);
    }

    #[test]
    fn already_in_mode_is_a_noop() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        assert_eq!(
            mercury.switch_to_native(cpu).unwrap(),
            SwitchOutcome::AlreadyInMode
        );
        mercury.switch_to_virtual(cpu).unwrap();
        assert_eq!(
            mercury.switch_to_virtual(cpu).unwrap(),
            SwitchOutcome::AlreadyInMode
        );
    }

    #[test]
    fn smp_switch_coordinates_both_cpus() {
        use std::sync::atomic::AtomicBool as StopFlag;
        let (machine, _hv, mercury) = rig(2, TrackingStrategy::RecomputeOnSwitch);
        let cpu0 = Arc::clone(&machine.cpus[0]);
        let cpu1 = Arc::clone(&machine.cpus[1]);

        // CPU 1 runs a service loop on its own thread (as a real second
        // core would execute code with interrupts enabled).
        let stop = Arc::new(StopFlag::new(false));
        let peer = {
            let stop = Arc::clone(&stop);
            let cpu1 = Arc::clone(&cpu1);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    cpu1.tick(50);
                    cpu1.service_pending();
                    std::thread::yield_now();
                }
            })
        };

        let out = mercury.switch_to_virtual(&cpu0).unwrap();
        assert!(matches!(out, SwitchOutcome::Completed { .. }));
        assert_eq!(cpu0.pl(), PrivLevel::Pl1);
        // Wait for CPU1's handler to have run its reload step.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cpu1.pl() != PrivLevel::Pl1 {
            assert!(std::time::Instant::now() < deadline, "cpu1 never switched");
            std::thread::yield_now();
        }
        assert_eq!(cpu1.current_idt().unwrap().owner, "xenon");

        let out = mercury.switch_to_native(&cpu0).unwrap();
        assert!(matches!(out, SwitchOutcome::Completed { .. }));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cpu1.pl() != PrivLevel::Pl0 {
            assert!(
                std::time::Instant::now() < deadline,
                "cpu1 never switched back"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        peer.join().unwrap();
        assert_eq!(cpu1.current_idt().unwrap().owner, "nimbus");
    }

    #[test]
    fn smp_switch_times_out_if_peer_not_serving() {
        let (machine, _hv, mercury) = rig(2, TrackingStrategy::RecomputeOnSwitch);
        let cpu0 = Arc::clone(&machine.cpus[0]);
        // CPU1 never services interrupts → rendezvous must time out, and
        // the system must remain native and consistent.
        let err = mercury.switch_to_virtual(&cpu0).unwrap_err();
        assert!(matches!(err, SwitchError::Rendezvous(_)));
        assert_eq!(mercury.mode(), ExecMode::Native);
        assert_eq!(cpu0.pl(), PrivLevel::Pl0);
    }

    #[test]
    fn failed_rendezvous_leaves_no_stale_round() {
        // Regression for the stale rv_target bug: the round descriptor
        // used to be published *before* begin() and left set on the
        // Busy/timeout error paths, so a later peer could read a stale
        // target and reload into the wrong mode (split brain).
        let (machine, _hv, mercury) = rig(2, TrackingStrategy::RecomputeOnSwitch);
        let cpu0 = Arc::clone(&machine.cpus[0]);

        // Busy: another CPU owns a round, so begin() fails — the
        // descriptor of the owning round must not be clobbered.
        let _held = mercury.rendezvous.begin().unwrap();
        let err = mercury.switch_to_virtual(&cpu0).unwrap_err();
        assert_eq!(err, SwitchError::Rendezvous(RendezvousError::Busy));
        assert!(
            mercury.rv_round.lock().is_none(),
            "a Busy switch attempt must not publish a round descriptor"
        );
        // Retire the held round (zero peers → the waits are trivial).
        mercury.rendezvous.signal_go();
        mercury.rendezvous.wait_done(0).unwrap();

        // Timeout: the peer never services, wait_ready aborts — the
        // descriptor must be torn down with the round.
        let err = mercury.switch_to_virtual(&cpu0).unwrap_err();
        assert_eq!(err, SwitchError::Rendezvous(RendezvousError::Timeout));
        assert!(
            mercury.rv_round.lock().is_none(),
            "a timed-out switch must not leave a stale round target"
        );
        // The rendezvous IPI is still pending on CPU1.  Servicing it
        // now must find no round and leave the CPU untouched.
        let cpu1 = Arc::clone(&machine.cpus[1]);
        cpu1.tick(50);
        cpu1.service_pending();
        assert_eq!(cpu1.pl(), PrivLevel::Pl0);
        assert_eq!(cpu1.current_idt().unwrap().owner, "nimbus");
        assert_eq!(mercury.mode(), ExecMode::Native);
    }

    #[test]
    fn sharded_recompute_beats_serial_on_smp() {
        use std::sync::atomic::AtomicBool as StopFlag;
        let (machine, hv, mercury) = rig(4, TrackingStrategy::RecomputeOnSwitch);
        let cpu0 = Arc::clone(&machine.cpus[0]);
        let stop = Arc::new(StopFlag::new(false));
        let peers: Vec<_> = (1..4)
            .map(|i| {
                let stop = Arc::clone(&stop);
                let cpu = Arc::clone(&machine.cpus[i]);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        cpu.tick(50);
                        cpu.service_pending();
                        std::thread::yield_now();
                    }
                })
            })
            .collect();

        let strip = |snap: Vec<xenon::PageInfo>| {
            snap.into_iter()
                .map(|mut r| {
                    r.dirty = false;
                    r
                })
                .collect::<Vec<_>>()
        };

        assert!(mercury.sharded_recompute());
        mercury.switch_to_virtual(&cpu0).unwrap();
        let sharded = mercury.stats.last_pginfo_cycles.load(Ordering::Relaxed);
        let snap_sharded = strip(hv.page_info.snapshot());
        mercury.switch_to_native(&cpu0).unwrap();

        mercury.set_sharded_recompute(false);
        mercury.switch_to_virtual(&cpu0).unwrap();
        let serial = mercury.stats.last_pginfo_cycles.load(Ordering::Relaxed);
        let snap_serial = strip(hv.page_info.snapshot());
        mercury.switch_to_native(&cpu0).unwrap();

        stop.store(true, Ordering::Release);
        for p in peers {
            p.join().unwrap();
        }
        assert_eq!(
            snap_sharded, snap_serial,
            "sharded validation must rebuild the exact serial accounting"
        );
        assert!(
            serial >= sharded * 2,
            "4-CPU sharded recompute phase ({sharded}) must be ≥2× faster than serial ({serial})"
        );
    }

    #[test]
    fn dirty_recompute_attaches_cheap_from_the_boot_precache() {
        let (m_dirty, h_dirty, dirty) = rig(1, TrackingStrategy::DirtyRecompute);
        let (m_full, _h2, full) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu_d = m_dirty.boot_cpu();
        let cpu_f = m_full.boot_cpu();

        // Install pre-computed the accounting and armed the dirty
        // baseline, so even the FIRST attach runs at the cheap
        // snapshot-restore rate — no full-rate cold scan remains on the
        // switch path.
        let SwitchOutcome::Completed {
            cycles: cold_attach,
        } = dirty.switch_to_virtual(cpu_d).unwrap()
        else {
            panic!()
        };
        let cold = dirty.stats.last_pginfo_cycles.load(Ordering::Relaxed);
        dirty.switch_to_native(cpu_d).unwrap();
        // Idle native window: nothing dirtied, so the re-attach merely
        // restores clean frames from the detach snapshot.
        let SwitchOutcome::Completed {
            cycles: warm_attach,
        } = dirty.switch_to_virtual(cpu_d).unwrap()
        else {
            panic!()
        };
        let warm = dirty.stats.last_pginfo_cycles.load(Ordering::Relaxed);

        full.switch_to_virtual(cpu_f).unwrap();
        full.switch_to_native(cpu_f).unwrap();
        let SwitchOutcome::Completed {
            cycles: full_attach,
        } = full.switch_to_virtual(cpu_f).unwrap()
        else {
            panic!()
        };
        let full_pginfo = full.stats.last_pginfo_cycles.load(Ordering::Relaxed);

        assert!(
            cold * 5 <= full_pginfo,
            "boot-precached cold attach ({cold}) must already run ≥5× under full recompute ({full_pginfo})"
        );
        assert!(
            warm * 5 <= full_pginfo,
            "warm pginfo phase ({warm}) not ≥5× under full recompute ({full_pginfo})"
        );
        assert!(
            full_attach >= warm_attach * 5,
            "warm re-attach ({warm_attach}) must be ≥5× cheaper than recompute ({full_attach})"
        );
        assert!(
            full_attach >= cold_attach * 5,
            "cold attach ({cold_attach}) must also be ≥5× cheaper than recompute ({full_attach})"
        );
        // The cheap path still rebuilt correct accounting.
        for pgd in dirty.kernel().all_pgds() {
            let (typ, count) = h_dirty.page_info.type_of(pgd);
            assert_eq!(typ, xenon::PageType::L2);
            assert!(count > 0);
            assert!(h_dirty.page_info.get(pgd).pinned);
        }
    }

    #[test]
    fn dirty_writes_raise_the_warm_reattach_cost() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::DirtyRecompute);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        mercury.switch_to_native(cpu).unwrap();
        assert_eq!(hv.page_info.count_dirty_for(mercury.dom0().id), 0);

        // Native-mode page-table mutations mark their table frames
        // dirty through the VO sink.
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..8u64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        let dirtied = hv.page_info.count_dirty_for(mercury.dom0().id);
        assert!(dirtied > 0, "faulted-in pages must dirty their tables");

        mercury.switch_to_virtual(cpu).unwrap();
        let warm = mercury.stats.last_pginfo_cycles.load(Ordering::Relaxed);
        let floor = TrackingStrategy::DirtyRecompute
            .attach_cost(mercury.kernel().pool_frames().len(), dirtied);
        assert!(
            warm >= floor,
            "re-attach ({warm}) must pay the blended rate for {dirtied} dirty frames ({floor})"
        );
        assert_eq!(sess.peek(va).unwrap(), 0);
    }

    /// A rig whose dirty set contains *non-critical* frames: a forked
    /// child faults in pages (dirtying its table frames through the VO
    /// sink) and then exits, so those tables are freed — still dirty,
    /// but no longer in [`Kernel::all_table_frames`].
    fn lazy_rig(
        strategy: TrackingStrategy,
    ) -> (Arc<Machine>, Arc<Hypervisor>, Arc<Mercury>, Session) {
        let (machine, hv, mercury) = rig(1, strategy);
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let child = sess.fork().unwrap();
        assert_eq!(sess.waitpid().unwrap(), None); // parent blocks; child runs
        let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..8u64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        sess.exit(0).unwrap(); // child's dirty tables are freed, stay dirty
        assert_eq!(sess.waitpid().unwrap().unwrap().0, child);
        (machine, hv, mercury, sess)
    }

    #[test]
    fn lazy_validate_defers_only_noncritical_dirty_frames() {
        let (machine, hv, mercury, _sess) = lazy_rig(TrackingStrategy::LazyValidate);
        let cpu = machine.boot_cpu();
        assert!(
            hv.page_info.count_dirty_for(mercury.dom0().id) > 0,
            "the exited child must leave dirty frames behind"
        );

        mercury.switch_to_virtual(cpu).unwrap();
        let set = mercury
            .lazy_set()
            .expect("non-critical dirty frames must open a lazy admission window");
        assert!(mercury.lazy_pending() > 0);
        // Invariant: nothing the kernel can execute through was
        // deferred — every live table frame was validated up front.
        for f in mercury.kernel().all_table_frames() {
            assert!(
                !set.contains(f),
                "kernel-critical frame {f:?} admitted without validation"
            );
        }
        // Lazy admission still rebuilt correct accounting for the live set.
        for pgd in mercury.kernel().all_pgds() {
            let (typ, count) = hv.page_info.type_of(pgd);
            assert_eq!(typ, xenon::PageType::L2);
            assert!(count > 0);
        }
    }

    #[test]
    fn first_guest_touch_drains_the_lazy_window() {
        let (machine, _hv, mercury, sess) = lazy_rig(TrackingStrategy::LazyValidate);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        let set = mercury.lazy_set().expect("lazy window open");
        let pending0 = mercury.lazy_pending();
        assert!(pending0 > 0);

        // The pool free-list is LIFO, so faulting fresh pages in the
        // guest reuses the child's freed (deferred) frames: each first
        // touch takes the validation fault through the MMU hook.
        let va = sess.mmap(16, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..16u64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        assert!(
            set.validated() > 0,
            "reusing deferred frames must fault-validate them"
        );
        assert!(mercury.lazy_pending() < pending0);
        assert!(
            set.cycles_charged()
                >= set.validated()
                    * (costs::LAZY_VALIDATE_FAULT + costs::PGINFO_RECOMPUTE_PER_FRAME)
        );
    }

    #[test]
    fn detach_closes_and_seals_the_lazy_window() {
        let (machine, _hv, mercury, _sess) = lazy_rig(TrackingStrategy::LazyValidate);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        let set = mercury.lazy_set().expect("lazy window open");
        assert!(set.remaining() > 0);

        mercury.switch_to_native(cpu).unwrap();
        assert!(
            mercury.lazy_set().is_none(),
            "detach must close the admission window"
        );
        assert_eq!(set.remaining(), 0, "stragglers drained at detach");
        assert!(set.is_sealed(), "window sealed so a stale touch fails loudly");
        assert!(
            cpu.active_lazy_set().is_none(),
            "set deregistered from the MMU"
        );
    }

    #[test]
    fn kstack_selectors_are_rewritten_across_switch() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        // Park a process with a saved context on its kernel stack.
        let child = sess.fork().unwrap();
        assert_eq!(sess.waitpid().unwrap(), None); // parent blocks; child runs
        assert_eq!(sess.current_pid(), Some(child));
        assert!(mercury.kernel().kstack_contexts() > 0);

        // Switch modes, then resume the parked process: without the
        // §5.1.2 selector fixup this pops a stale PL0 selector under the
        // PL1 GDT and faults.
        mercury.switch_to_virtual(cpu).unwrap();
        sess.exit(0).unwrap(); // child exits; parent is rescheduled
        assert_eq!(sess.current_pid(), Some(nimbus::Pid(1)));
        let reaped = sess.waitpid().unwrap().unwrap();
        assert_eq!(reaped.0, child);
    }
}

#[cfg(test)]
mod hw_tests {
    use super::*;
    use nimbus::drivers::block::NativeBlockDriver;
    use nimbus::drivers::net::NativeNetDriver;
    use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
    use nimbus::mm::Prot;
    use nimbus::Session;
    use simx86::paging::{VirtAddr, PAGE_SIZE};
    use simx86::MachineConfig;

    fn hw_rig() -> (Arc<Machine>, Arc<Hypervisor>, Arc<Mercury>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 64 * 1024,
        });
        let hv = Hypervisor::warm_up(&machine);
        let cpu = machine.boot_cpu();
        let pool = machine.allocator.alloc_many(cpu, 8 * 1024).unwrap();
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: 4096,
                fs_first_block: 1,
            },
        )
        .unwrap();
        let bounce = machine.allocator.alloc(cpu).unwrap();
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
        let mercury = Mercury::install_with_assist(
            kernel,
            Arc::clone(&hv),
            TrackingStrategy::RecomputeOnSwitch,
            AssistMode::HardwareAssisted,
        )
        .unwrap();
        (machine, hv, mercury)
    }

    #[test]
    fn hardware_attach_enters_non_root_at_pl0() {
        let (machine, hv, mercury) = hw_rig();
        let cpu = machine.boot_cpu();
        assert_eq!(mercury.assist(), AssistMode::HardwareAssisted);
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).unwrap() else {
            panic!()
        };
        assert_eq!(mercury.mode(), ExecMode::Virtual);
        // The §8 story: no de-privileging, guest keeps its gate table.
        assert_eq!(cpu.pl(), PrivLevel::Pl0);
        assert!(cpu.in_non_root());
        assert_eq!(cpu.current_idt().unwrap().owner, "nimbus");
        assert!(hv.is_active());
        assert_eq!(mercury.kernel().pv().name(), "mercury-virtual-vo");
        // ... and it is fast: no recompute, no flips, no fixups.
        let us = costs::cycles_to_us(cycles);
        assert!(us < 20.0, "hardware attach took {us} µs");

        mercury.switch_to_native(cpu).unwrap();
        assert!(!cpu.in_non_root());
        assert_eq!(cpu.pl(), PrivLevel::Pl0);
        assert!(!hv.is_active());
    }

    #[test]
    fn hardware_attach_is_much_faster_than_software() {
        let (m_hw, _h1, hw) = hw_rig();
        let (m_sw, _h2, sw) = super::tests::rig(1, TrackingStrategy::RecomputeOnSwitch);
        let SwitchOutcome::Completed { cycles: hw_cycles } =
            hw.switch_to_virtual(m_hw.boot_cpu()).unwrap()
        else {
            panic!()
        };
        let SwitchOutcome::Completed { cycles: sw_cycles } =
            sw.switch_to_virtual(m_sw.boot_cpu()).unwrap()
        else {
            panic!()
        };
        assert!(
            hw_cycles * 10 < sw_cycles,
            "VMCS switch ({hw_cycles}) should be ≫10× faster than software ({sw_cycles})"
        );
    }

    #[test]
    fn workload_runs_identically_in_hvm_mode() {
        let (machine, _hv, mercury) = hw_rig();
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 41).unwrap();

        mercury.switch_to_virtual(cpu).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 41);
        sess.poke(VirtAddr(va.0 + PAGE_SIZE), 42).unwrap();
        let child = sess.fork().unwrap();
        assert!(child.0 > 1);
        let fd = sess.open("hvm.txt", true).unwrap();
        sess.write(fd, b"non-root").unwrap();

        mercury.switch_to_native(cpu).unwrap();
        assert_eq!(sess.peek(VirtAddr(va.0 + PAGE_SIZE)).unwrap(), 42);
        assert_eq!(sess.stat("hvm.txt").unwrap().size, 8);
    }

    #[test]
    fn hvm_mmu_ops_cost_near_native_while_io_costs_exits() {
        // The §8 trade-off: MMU-heavy ops (fork) get cheap, device I/O
        // pays VM exits.
        let (machine, _hv, mercury) = hw_rig();
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(64, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..64u64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        let t0 = cpu.cycles();
        sess.fork().unwrap();
        let native_fork = cpu.cycles() - t0;

        mercury.switch_to_virtual(cpu).unwrap();
        let t0 = cpu.cycles();
        sess.fork().unwrap();
        let hvm_fork = cpu.cycles() - t0;
        // Within ~15% of native (vs several-fold for paravirtual mode).
        assert!(
            hvm_fork < native_fork * 115 / 100,
            "HVM fork {hvm_fork} vs native {native_fork}"
        );

        // Disk I/O pays the exit tax.
        let fd = sess.open("io.dat", true).unwrap();
        sess.write(fd, &vec![1u8; 4096]).unwrap();
        let t0 = cpu.cycles();
        sess.sync().unwrap();
        let hvm_sync = cpu.cycles() - t0;
        mercury.switch_to_native(cpu).unwrap();
        sess.write(fd, &vec![2u8; 4096]).unwrap();
        let t0 = cpu.cycles();
        sess.sync().unwrap();
        let native_sync = cpu.cycles() - t0;
        assert!(
            hvm_sync > native_sync + costs::VMEXIT,
            "HVM sync {hvm_sync} must pay exits over native {native_sync}"
        );
    }

    #[test]
    fn ept_confines_the_guest() {
        let (machine, _hv, mercury) = hw_rig();
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 1).unwrap();
        mercury.switch_to_virtual(cpu).unwrap();

        // Corrupt the PTE behind `va` to point at the VMM's reserved
        // memory (the §6.2-style bit flip).  In software mode the
        // validators would have rejected this at attach; in hardware
        // mode the EPT stops the access itself.
        let foreign = machine.mem.num_frames() as u32 - 1;
        let pgd = simx86::FrameNum(cpu.cr3_raw());
        let (pte, table, index) = simx86::Mmu::walk_leaf(&machine.mem, cpu, pgd, va)
            .unwrap()
            .unwrap();
        machine
            .mem
            .write_pte(cpu, table, index, simx86::Pte::new(foreign, pte.0 & 0xfff))
            .unwrap();
        cpu.flush_tlb_local();

        let err = sess.touch(va, false).unwrap_err();
        assert!(
            matches!(
                err,
                nimbus::KernelError::Oops(simx86::Fault::EptViolation { .. })
            ),
            "expected an EPT violation, got {err:?}"
        );
        assert!(mercury.ept.as_ref().unwrap().violations() > 0);
    }

    // ---- hypervisor live-update (DESIGN.md §16) -----------------------------

    #[test]
    fn live_update_swaps_vmm_without_detach() {
        let (machine, v1, mercury) = rig(1, TrackingStrategy::default());
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 7).unwrap();
        let fd = sess.open("across.txt", true).unwrap();
        sess.write(fd, b"pre-update").unwrap();

        mercury.switch_to_virtual(cpu).unwrap();
        assert_eq!(mercury.hv_version(), 1);

        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        mercury.stage_update(Arc::clone(&v2)).unwrap();
        assert_eq!(mercury.staged_update_version(), Some(2));

        let outcome = mercury.live_update(cpu).unwrap();
        assert!(matches!(outcome, SwitchOutcome::Completed { .. }));

        // Still virtual — no detach to native happened in between — but
        // the VMM underneath is now v2 and the incumbent is drained.
        assert_eq!(mercury.mode(), ExecMode::Virtual);
        assert_eq!(mercury.hv_version(), 2);
        assert!(Arc::ptr_eq(&mercury.hypervisor(), &v2));
        assert!(v2.is_active());
        assert!(!v1.is_active());
        assert_eq!(mercury.staged_update_version(), None);
        assert_eq!(mercury.stats.live_updates.load(Ordering::Relaxed), 1);
        assert!(mercury.stats.last_update_cycles.load(Ordering::Relaxed) > 0);

        // The guest's domain record was adopted, not copied: v2 hosts
        // the *same* Arc, and v1 forgot it without killing it.
        let adopted = v2.domain(mercury.dom0().id).unwrap();
        assert!(Arc::ptr_eq(&adopted, mercury.dom0()));
        assert!(v1.domain(adopted.id).is_none());
        assert!(adopted.is_alive());

        // Guest memory and files are bit-identical across the swap, and
        // new work proceeds under v2.
        assert_eq!(sess.peek(va).unwrap(), 7);
        assert_eq!(sess.stat("across.txt").unwrap().size, 10);
        sess.poke(VirtAddr(va.0 + PAGE_SIZE), 9).unwrap();
        assert_eq!(sess.peek(VirtAddr(va.0 + PAGE_SIZE)).unwrap(), 9);

        // The updated system still detaches cleanly.
        assert!(matches!(
            mercury.switch_to_native(cpu).unwrap(),
            SwitchOutcome::Completed { .. }
        ));
        assert!(!v2.is_active());
    }

    #[test]
    fn live_update_requires_staging_and_virtual_mode() {
        let (machine, _v1, mercury) = rig(1, TrackingStrategy::default());
        let cpu = machine.boot_cpu();
        // Nothing staged.
        assert!(matches!(
            mercury.live_update(cpu),
            Err(SwitchError::NoUpdateStaged)
        ));
        // A same-version successor fails the handshake at staging time.
        let same = Hypervisor::warm_up_versioned(&machine, 1);
        assert!(matches!(
            mercury.stage_update(same),
            Err(SwitchError::Transfer(_))
        ));
        // A valid successor stages fine, but updating from native mode
        // is refused (live-update never detaches).
        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        mercury.stage_update(v2).unwrap();
        assert!(matches!(
            mercury.live_update(cpu),
            Err(SwitchError::NotVirtual)
        ));
        // The staged successor survives the refusal for a later retry.
        assert_eq!(mercury.staged_update_version(), Some(2));
        mercury.clear_staged_update();
        assert_eq!(mercury.staged_update_version(), None);
    }

    #[test]
    fn live_update_rolls_back_on_injected_faults() {
        let (machine, v1, mercury) = rig(1, TrackingStrategy::default());
        let cpu = machine.boot_cpu();
        let sess = Session::new(Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 42).unwrap();
        mercury.switch_to_virtual(cpu).unwrap();

        for phase in [LiveUpdatePhase::Handshake, LiveUpdatePhase::Transfer] {
            let v2 = Hypervisor::warm_up_versioned(&machine, 2);
            mercury.stage_update(Arc::clone(&v2)).unwrap();
            mercury.inject_update_abort(Some(phase));
            let err = mercury.live_update(cpu).unwrap_err();
            assert!(
                matches!(err, SwitchError::UpdateRolledBack(_)),
                "{phase:?}: {err:?}"
            );
            // Rolled back: the incumbent still runs the machine, the
            // failed successor was discarded back to pristine, and the
            // staged update was consumed.
            assert_eq!(mercury.hv_version(), 1);
            assert!(Arc::ptr_eq(&mercury.hypervisor(), &v1));
            assert!(v1.is_active());
            assert!(!v2.is_active());
            assert!(v2.domains().is_empty(), "{phase:?}: successor not pristine");
            assert_eq!(
                v2.reserved_frames(),
                0,
                "{phase:?}: husk reservation reclaimed"
            );
            assert_eq!(mercury.staged_update_version(), None);
            assert_eq!(sess.peek(va).unwrap(), 42);
        }
        assert_eq!(
            mercury.stats.live_update_rollbacks.load(Ordering::Relaxed),
            2
        );

        // An abort injected at Commit lands after the linearization
        // point: the update completes on v2 regardless.
        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        mercury.stage_update(Arc::clone(&v2)).unwrap();
        mercury.inject_update_abort(Some(LiveUpdatePhase::Commit));
        assert!(matches!(
            mercury.live_update(cpu).unwrap(),
            SwitchOutcome::Completed { .. }
        ));
        assert_eq!(mercury.hv_version(), 2);
        assert_eq!(sess.peek(va).unwrap(), 42);
    }
}
