//! Reference counting of virtualization-object execution (§5.1.1).
//!
//! "Mercury tracks the execution of virtualization sensitive code by
//! reference counting the execution of a virtualization object on its
//! entry and exit.  Mercury applies a mode switch only when the
//! reference counter reaches zero."
//!
//! The count is shared between the native and virtual VO so a switch
//! request is gated against *any* in-flight sensitive operation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The shared entry/exit counter.
#[derive(Debug, Default)]
pub struct VoRefCount {
    count: AtomicUsize,
    /// Happens-before shadow for the dynamic protocol checker.
    #[cfg(feature = "dyncheck")]
    monitor: crate::dyncheck::RcMonitor,
}

impl VoRefCount {
    /// A zeroed counter.
    pub fn new() -> Arc<VoRefCount> {
        Arc::new(VoRefCount::default())
    }

    /// Enter a sensitive section; the guard exits on drop.
    pub fn enter(self: &Arc<Self>) -> VoGuard {
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_enter();
        self.count.fetch_add(1, Ordering::AcqRel);
        VoGuard {
            counter: Arc::clone(self),
        }
    }

    /// Current in-flight count.
    pub fn current(&self) -> usize {
        let n = self.count.load(Ordering::Acquire);
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_observe();
        n
    }

    /// Is a mode switch safe right now?
    pub fn is_idle(&self) -> bool {
        self.current() == 0
    }

    /// Dynamic check: every completed exit happens-before this point
    /// (called by the switch path right after the quiescence gate).
    #[cfg(feature = "dyncheck")]
    pub fn assert_quiescent(&self) {
        self.monitor.assert_quiescent();
    }

    /// Dynamic check: enters and exits balance at a join point.
    #[cfg(feature = "dyncheck")]
    pub fn check_balanced(&self) -> Option<String> {
        self.monitor.check_balanced()
    }
}

/// RAII guard over a sensitive section.
pub struct VoGuard {
    counter: Arc<VoRefCount>,
}

impl Drop for VoGuard {
    fn drop(&mut self) {
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.counter.monitor.on_exit();
        self.counter.count.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_counts_entry_and_exit() {
        let rc = VoRefCount::new();
        assert!(rc.is_idle());
        {
            let _a = rc.enter();
            assert_eq!(rc.current(), 1);
            {
                let _b = rc.enter();
                assert_eq!(rc.current(), 2);
                assert!(!rc.is_idle());
            }
            assert_eq!(rc.current(), 1);
        }
        assert!(rc.is_idle());
    }

    #[test]
    fn guard_drop_survives_panicking_section() {
        // A panic inside a sensitive section must still run the guard's
        // Drop, or the counter would stay pinned and every future mode
        // switch would be deferred forever.
        let rc = VoRefCount::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = rc.enter();
            assert_eq!(rc.current(), 1);
            panic!("sensitive section blew up");
        }));
        assert!(result.is_err());
        assert!(rc.is_idle(), "guard drop must restore idleness after a panic");
        // And the counter is still usable afterwards.
        let _g = rc.enter();
        assert_eq!(rc.current(), 1);
    }

    #[test]
    fn concurrent_guards_balance() {
        let rc = VoRefCount::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rc = Arc::clone(&rc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _g = rc.enter();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(rc.is_idle());
    }
}
