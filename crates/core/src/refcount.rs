//! Reference counting of virtualization-object execution (§5.1.1).
//!
//! "Mercury tracks the execution of virtualization sensitive code by
//! reference counting the execution of a virtualization object on its
//! entry and exit.  Mercury applies a mode switch only when the
//! reference counter reaches zero."
//!
//! The count is shared between the native and virtual VO so a switch
//! request is gated against *any* in-flight sensitive operation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The shared entry/exit counter.
#[derive(Debug, Default)]
pub struct VoRefCount {
    count: AtomicUsize,
}

impl VoRefCount {
    /// A zeroed counter.
    pub fn new() -> Arc<VoRefCount> {
        Arc::new(VoRefCount::default())
    }

    /// Enter a sensitive section; the guard exits on drop.
    pub fn enter(self: &Arc<Self>) -> VoGuard {
        self.count.fetch_add(1, Ordering::AcqRel);
        VoGuard {
            counter: Arc::clone(self),
        }
    }

    /// Current in-flight count.
    pub fn current(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Is a mode switch safe right now?
    pub fn is_idle(&self) -> bool {
        self.current() == 0
    }
}

/// RAII guard over a sensitive section.
pub struct VoGuard {
    counter: Arc<VoRefCount>,
}

impl Drop for VoGuard {
    fn drop(&mut self) {
        self.counter.count.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_counts_entry_and_exit() {
        let rc = VoRefCount::new();
        assert!(rc.is_idle());
        {
            let _a = rc.enter();
            assert_eq!(rc.current(), 1);
            {
                let _b = rc.enter();
                assert_eq!(rc.current(), 2);
                assert!(!rc.is_idle());
            }
            assert_eq!(rc.current(), 1);
        }
        assert!(rc.is_idle());
    }

    #[test]
    fn concurrent_guards_balance() {
        let rc = VoRefCount::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rc = Arc::clone(&rc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _g = rc.enter();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(rc.is_idle());
    }
}
