//! The SMP mode-switch rendezvous protocol (§5.4).
//!
//! "The processor (CP, control processor) that received the mode switch
//! request will notify other processors via issuing IPIs.  Upon
//! receiving the IPI, each processor notifies its readiness to other
//! processors by increasing a shared count and waits for a shared flag
//! to ensure all other processors are ready to do a mode switch.  The
//! shared flag will be set by the CP when it finds the shared count is
//! equal to the total number of processors.  The completion of the mode
//! switch is also coordinated using a shared variable."
//!
//! The shared count/flag/completion variables below are real atomics;
//! the peer CPUs run on real host threads, so the protocol is exercised
//! under genuine concurrency.
//!
//! ## Round generations
//!
//! A rendezvous can abort (the CP times out waiting for a peer that is
//! not servicing interrupts).  The IPI it broadcast is still pending on
//! that peer, and may be serviced arbitrarily late — possibly while a
//! *later* round is open.  If such a ghost check-in were counted, the
//! CP of the later round could start the global state transfer while a
//! real peer CPU is still executing — the exact hazard §5.4's counting
//! exists to prevent.  Both shared counters therefore carry a **round
//! generation (epoch)** in their high bits: `begin` bumps the epoch,
//! and every check-in/completion is a compare-and-swap that verifies
//! the epoch it targets is still the one in the word.  A late arrival
//! from an aborted round fails the epoch check and is rejected with
//! [`RendezvousError::Stale`] without ever touching the count.
//!
//! ## Tick-exact: the rendezvous never skips
//!
//! The rendezvous spin windows are *not* fast-forwarded through the
//! event clock (`simx86::evclock`), even though they look like idle
//! time.  The spin is where peer CPUs are caught at a service point —
//! its length is the measurement (§5.4's switch-time-vs-CPUs curve),
//! not dead time, and the watchdog's sticky-degradation decision keys
//! on a real timeout here.  Idle consumers *around* a switch (the
//! watchdog's retry backoff, a serving gap) skip up to their next
//! deadline and re-enter the protocol tick-exact.  The exclusion is
//! structural, not conventional: scheduling or advancing the event
//! clock allocates and locks, so any call introduced on a path
//! reachable from `// volint::root(SWITCH|RENDEZVOUS)` markers is
//! rejected by volint's `SWITCH-ALLOC` rule (DESIGN.md §14.2).
//!
//! ## The work phase
//!
//! While parked between check-in and the go flag, peers would spin
//! uselessly for the whole state transfer.  [`Rendezvous::
//! check_in_and_wait_serving`] instead polls a caller-supplied closure
//! each iteration; Mercury feeds it chunks of the attach-time
//! `page_info` recompute so the parked capacity validates frames
//! concurrently with the CP (see `crate::shard`).
//!
//! The full handshake, with the peer on its own thread as a second CPU
//! would be (in the real switch path the peer side runs inside the
//! `SELF_VIRT_RENDEZVOUS` interrupt handler):
//!
//! ```
//! use mercury::rendezvous::Rendezvous;
//! use std::sync::Arc;
//!
//! let rv = Arc::new(Rendezvous::new());
//! rv.begin().unwrap();                       // CP: open the round
//! let peer = {
//!     let rv = Arc::clone(&rv);
//!     std::thread::spawn(move || {
//!         rv.check_in_and_wait().unwrap();   // peer: ack the IPI, park
//!         // … per-CPU state reload runs here (§5.1.3) …
//!         rv.complete();                     // peer: report done
//!     })
//! };
//! rv.wait_ready(1).unwrap();                 // CP: everyone parked
//! // … global state transfer runs here (§5.1.2) …
//! rv.signal_go();                            // CP: release the peers
//! rv.wait_done(1).unwrap();                  // CP: close the round
//! peer.join().unwrap();
//! assert!(!rv.in_progress());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long a spinning participant waits before declaring the protocol
/// wedged (host wall-clock; generous because peers only notice IPIs at
/// service points).
pub const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(5);

/// Round epoch held in the high half of each packed counter word.
fn epoch_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Check-in / completion count held in the low half.
fn count_of(word: u64) -> usize {
    (word & 0xffff_ffff) as usize
}

/// A fresh counter word for round `epoch` with a zero count.
fn pack(epoch: u32) -> u64 {
    (epoch as u64) << 32
}

/// The shared coordination block.
#[derive(Debug)]
pub struct Rendezvous {
    /// Peers that acknowledged the IPI ("shared count"), packed with
    /// the round epoch in the high 32 bits.
    ready: AtomicU64,
    /// CP's go signal ("shared flag").
    go: AtomicBool,
    /// Peers that finished their per-CPU switch step ("completion"),
    /// packed like `ready`.
    done: AtomicU64,
    /// A rendezvous is in progress.
    active: AtomicBool,
    /// Spin patience before a participant declares the protocol wedged
    /// (configuration, not round state — tests shorten it).
    timeout: Duration,
    /// Happens-before shadow for the dynamic protocol checker.
    #[cfg(feature = "dyncheck")]
    monitor: crate::dyncheck::RvMonitor,
}

impl Default for Rendezvous {
    fn default() -> Rendezvous {
        Rendezvous::new()
    }
}

/// Why a rendezvous failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RendezvousError {
    /// A peer never checked in (not polling its service points).
    Timeout,
    /// A rendezvous was already in flight.
    Busy,
    /// A check-in or completion targeted a round that is no longer the
    /// open one — a ghost IPI from an aborted round, rejected without
    /// polluting the live count.
    Stale,
}

impl Rendezvous {
    /// Fresh block with the default [`RENDEZVOUS_TIMEOUT`].
    pub fn new() -> Rendezvous {
        Rendezvous::with_timeout(RENDEZVOUS_TIMEOUT)
    }

    /// Fresh block with an explicit spin patience (tests abort rounds
    /// quickly with this).
    pub fn with_timeout(timeout: Duration) -> Rendezvous {
        Rendezvous {
            ready: AtomicU64::new(0),
            go: AtomicBool::new(false),
            done: AtomicU64::new(0),
            active: AtomicBool::new(false),
            timeout,
            #[cfg(feature = "dyncheck")]
            monitor: crate::dyncheck::RvMonitor::default(),
        }
    }

    /// Is a rendezvous currently in progress?
    pub fn in_progress(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// The generation of the current (or most recent) round.
    pub fn current_epoch(&self) -> u32 {
        epoch_of(self.ready.load(Ordering::Acquire))
    }

    /// Peers counted into the current round so far.
    pub fn checked_in(&self) -> usize {
        count_of(self.ready.load(Ordering::Acquire))
    }

    /// CP side: open the rendezvous and return the new round's epoch.
    /// Fails if one is already running.
    pub fn begin(&self) -> Result<u32, RendezvousError> {
        if self.active.swap(true, Ordering::AcqRel) {
            return Err(RendezvousError::Busy);
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_begin();
        let epoch = epoch_of(self.ready.load(Ordering::Acquire)).wrapping_add(1);
        // Order matters: clear the flag first, then publish the new
        // epoch words.  A peer can only learn the new epoch from the
        // `ready` store, which happens-after the flag reset — so no
        // new-round check-in can observe the previous round's go flag.
        self.go.store(false, Ordering::Release);
        self.done.store(pack(epoch), Ordering::Release);
        self.ready.store(pack(epoch), Ordering::Release);
        Ok(epoch)
    }

    /// CP side: wait until `peers` CPUs have checked in.  The CP then
    /// performs the global state transfer while every peer is parked,
    /// and releases them with [`Rendezvous::signal_go`].
    pub fn wait_ready(&self, peers: usize) -> Result<(), RendezvousError> {
        let deadline = Instant::now() + self.timeout;
        // volint::bound(4096) — timeout-bounded spin (5 s hard abort); healthy-path budget: peers check in within microseconds
        while count_of(self.ready.load(Ordering::Acquire)) < peers {
            if Instant::now() > deadline {
                #[cfg(feature = "dyncheck")]
                // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
                self.monitor.on_abort();
                self.active.store(false, Ordering::Release);
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_wait_ready_ok(peers);
        Ok(())
    }

    /// CP side: raise the shared go flag.
    pub fn signal_go(&self) {
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_signal_go();
        self.go.store(true, Ordering::Release);
    }

    /// CP side: wait for check-ins and immediately release the peers.
    pub fn wait_ready_and_go(&self, peers: usize) -> Result<(), RendezvousError> {
        self.wait_ready(peers)?;
        self.signal_go();
        Ok(())
    }

    /// CP side: wait for all peers to complete their per-CPU step, then
    /// close the rendezvous.
    pub fn wait_done(&self, peers: usize) -> Result<(), RendezvousError> {
        let deadline = Instant::now() + self.timeout;
        // volint::bound(4096) — timeout-bounded spin (5 s hard abort); healthy-path budget: peers complete within microseconds
        while count_of(self.done.load(Ordering::Acquire)) < peers {
            if Instant::now() > deadline {
                #[cfg(feature = "dyncheck")]
                // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
                self.monitor.on_abort();
                self.active.store(false, Ordering::Release);
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_wait_done_ok(peers);
        self.active.store(false, Ordering::Release);
        Ok(())
    }

    /// Peer side: check in to the current round and spin until the CP
    /// raises the go flag.
    pub fn check_in_and_wait(&self) -> Result<(), RendezvousError> {
        let epoch = self.current_epoch();
        self.check_in_and_wait_serving(epoch, || false)
    }

    /// Peer side, epoch-pinned: check in to round `epoch` (obtained
    /// from the CP's published round descriptor) and spin until go.
    ///
    /// While parked, `work` is polled every iteration; it returns
    /// `true` when it performed a unit of work (the CP is alive and
    /// feeding the queue, so the patience window restarts) and `false`
    /// when there is nothing to do right now.
    ///
    /// The check-in itself is an epoch-guarded compare-and-swap: if the
    /// target round has been aborted or superseded the call returns
    /// [`RendezvousError::Stale`] and the count is untouched.
    pub fn check_in_and_wait_serving(
        &self,
        epoch: u32,
        mut work: impl FnMut() -> bool,
    ) -> Result<(), RendezvousError> {
        // Reject before counting: a ghost IPI from an aborted round
        // must never pollute a later round's count.
        if !self.in_progress() {
            return Err(RendezvousError::Stale);
        }
        // volint::bound(64) — CAS retry loop; each retry means another peer won, so trips ≤ peer count
        loop {
            let cur = self.ready.load(Ordering::Acquire);
            if epoch_of(cur) != epoch {
                return Err(RendezvousError::Stale);
            }
            if self
                .ready
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_check_in();
        let mut deadline = Instant::now() + self.timeout;
        // volint::bound(4096) — timeout-bounded spin on the go flag (5 s hard abort)
        while !self.go.load(Ordering::Acquire) {
            if epoch_of(self.ready.load(Ordering::Acquire)) != epoch || !self.in_progress() {
                // CP aborted (e.g. its own timeout) or the round was
                // superseded while we were parked.
                return Err(RendezvousError::Timeout);
            }
            if work() {
                deadline = Instant::now() + self.timeout;
                continue;
            }
            if Instant::now() > deadline {
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_observed_go();
        Ok(())
    }

    /// Peer side: report the per-CPU switch step of the current round
    /// complete.
    pub fn complete(&self) {
        let epoch = epoch_of(self.done.load(Ordering::Acquire));
        self.complete_for(epoch);
    }

    /// Peer side, epoch-pinned: report completion for round `epoch`.
    /// Returns whether the completion was counted — a stale completion
    /// (round aborted and superseded) is dropped, mirroring the
    /// check-in guard.
    pub fn complete_for(&self, epoch: u32) -> bool {
        // volint::bound(64) — CAS retry loop; trips ≤ peer count
        loop {
            let cur = self.done.load(Ordering::Acquire);
            if epoch_of(cur) != epoch {
                return false;
            }
            #[cfg(feature = "dyncheck")]
            // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
            self.monitor.on_complete();
            if self
                .done
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn two_party_protocol_runs_to_completion() {
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let peer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                r.check_in_and_wait().unwrap();
                r.complete();
            })
        };
        r.wait_ready_and_go(1).unwrap();
        r.wait_done(1).unwrap();
        peer.join().unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn double_begin_is_busy() {
        let r = Rendezvous::new();
        r.begin().unwrap();
        assert_eq!(r.begin().unwrap_err(), RendezvousError::Busy);
    }

    #[test]
    fn busy_begin_fails_fast_without_spinning() {
        // A second CP racing into an in-flight rendezvous must bounce
        // with Busy immediately — not wedge until RENDEZVOUS_TIMEOUT.
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let contender = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let started = Instant::now();
                let err = r.begin().unwrap_err();
                (err, started.elapsed())
            })
        };
        let (err, elapsed) = contender.join().unwrap();
        assert_eq!(err, RendezvousError::Busy);
        assert!(
            elapsed < RENDEZVOUS_TIMEOUT / 2,
            "busy begin took {elapsed:?}; it must not spin toward the timeout"
        );

        // The original rendezvous is undisturbed and still completes.
        let peer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                r.check_in_and_wait().unwrap();
                r.complete();
            })
        };
        r.wait_ready_and_go(1).unwrap();
        r.wait_done(1).unwrap();
        peer.join().unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn zero_peers_trivially_completes() {
        let r = Rendezvous::new();
        r.begin().unwrap();
        r.wait_ready_and_go(0).unwrap();
        r.wait_done(0).unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn many_peers_all_observe_go_before_done() {
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let peers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    r.check_in_and_wait().unwrap();
                    r.complete();
                })
            })
            .collect();
        r.wait_ready_and_go(4).unwrap();
        r.wait_done(4).unwrap();
        for p in peers {
            p.join().unwrap();
        }
    }

    #[test]
    fn ghost_check_in_from_aborted_round_is_rejected() {
        // Regression for the §5.4 ghost check-in hazard: the old code
        // incremented `ready` *before* checking `active`, so a late IPI
        // from an aborted round polluted the next round's count and the
        // CP could start the state transfer while a real peer CPU was
        // still executing.
        let r = Arc::new(Rendezvous::with_timeout(Duration::from_millis(50)));

        // Round 1: no peer ever services the IPI; the CP times out.
        let epoch1 = r.begin().unwrap();
        assert_eq!(r.wait_ready(1).unwrap_err(), RendezvousError::Timeout);
        assert!(!r.in_progress());

        // The aborted round's IPI is finally serviced, *between*
        // rounds: rejected without counting.
        assert_eq!(
            r.check_in_and_wait_serving(epoch1, || false).unwrap_err(),
            RendezvousError::Stale
        );
        assert_eq!(r.checked_in(), 0, "ghost check-in polluted the count");

        // Round 2 opens with one real (but slow) peer expected.  The
        // ghost from round 1 arrives *while round 2 is open* — the
        // pre-fix code counted it here (active is true again) and
        // wait_ready(1) sailed through with no real peer parked.
        let epoch2 = r.begin().unwrap();
        assert_ne!(epoch2, epoch1);
        assert_eq!(
            r.check_in_and_wait_serving(epoch1, || false).unwrap_err(),
            RendezvousError::Stale
        );
        assert_eq!(r.checked_in(), 0, "stale epoch counted into a live round");
        assert_eq!(
            r.wait_ready(1).unwrap_err(),
            RendezvousError::Timeout,
            "round 2 must still wait for its real peer"
        );

        // A stale completion is likewise dropped once a new round has
        // rolled the epoch.
        let epoch3 = r.begin().unwrap();
        assert!(!r.complete_for(epoch1));
        assert!(r.complete_for(epoch3));
        r.wait_ready_and_go(0).unwrap();
    }

    #[test]
    fn parked_peers_serve_work_until_go() {
        // The §5.4 work phase: while parked between check-in and go,
        // peers drain a shared queue instead of spinning.
        let r = Arc::new(Rendezvous::new());
        let epoch = r.begin().unwrap();
        let work = Arc::new(AtomicUsize::new(0));
        const ITEMS: usize = 64;
        let peers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let work = Arc::clone(&work);
                std::thread::spawn(move || {
                    r.check_in_and_wait_serving(epoch, || {
                        work.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                            (n < ITEMS).then_some(n + 1)
                        })
                        .is_ok()
                    })
                    .unwrap();
                    assert!(r.complete_for(epoch));
                })
            })
            .collect();
        r.wait_ready(2).unwrap();
        // All queued work is drained by the parked peers before the CP
        // releases them.
        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        while work.load(Ordering::Acquire) < ITEMS {
            assert!(Instant::now() < deadline, "peers never drained the work");
            std::thread::yield_now();
        }
        r.signal_go();
        r.wait_done(2).unwrap();
        for p in peers {
            p.join().unwrap();
        }
        assert_eq!(work.load(Ordering::Acquire), ITEMS);
    }
}
