//! The SMP mode-switch rendezvous protocol (§5.4).
//!
//! "The processor (CP, control processor) that received the mode switch
//! request will notify other processors via issuing IPIs.  Upon
//! receiving the IPI, each processor notifies its readiness to other
//! processors by increasing a shared count and waits for a shared flag
//! to ensure all other processors are ready to do a mode switch.  The
//! shared flag will be set by the CP when it finds the shared count is
//! equal to the total number of processors.  The completion of the mode
//! switch is also coordinated using a shared variable."
//!
//! The shared count/flag/completion variables below are real atomics;
//! the peer CPUs run on real host threads, so the protocol is exercised
//! under genuine concurrency.
//!
//! The full handshake, with the peer on its own thread as a second CPU
//! would be (in the real switch path the peer side runs inside the
//! `SELF_VIRT_RENDEZVOUS` interrupt handler):
//!
//! ```
//! use mercury::rendezvous::Rendezvous;
//! use std::sync::Arc;
//!
//! let rv = Arc::new(Rendezvous::new());
//! rv.begin().unwrap();                       // CP: open the round
//! let peer = {
//!     let rv = Arc::clone(&rv);
//!     std::thread::spawn(move || {
//!         rv.check_in_and_wait().unwrap();   // peer: ack the IPI, park
//!         // … per-CPU state reload runs here (§5.1.3) …
//!         rv.complete();                     // peer: report done
//!     })
//! };
//! rv.wait_ready(1).unwrap();                 // CP: everyone parked
//! // … global state transfer runs here (§5.1.2) …
//! rv.signal_go();                            // CP: release the peers
//! rv.wait_done(1).unwrap();                  // CP: close the round
//! peer.join().unwrap();
//! assert!(!rv.in_progress());
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How long a spinning participant waits before declaring the protocol
/// wedged (host wall-clock; generous because peers only notice IPIs at
/// service points).
pub const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(5);

/// The shared coordination block.
#[derive(Debug, Default)]
pub struct Rendezvous {
    /// Peers that acknowledged the IPI ("shared count").
    ready: AtomicUsize,
    /// CP's go signal ("shared flag").
    go: AtomicBool,
    /// Peers that finished their per-CPU switch step ("completion").
    done: AtomicUsize,
    /// A rendezvous is in progress.
    active: AtomicBool,
    /// Happens-before shadow for the dynamic protocol checker.
    #[cfg(feature = "dyncheck")]
    monitor: crate::dyncheck::RvMonitor,
}

/// Why a rendezvous failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RendezvousError {
    /// A peer never checked in (not polling its service points).
    Timeout,
    /// A rendezvous was already in flight.
    Busy,
}

impl Rendezvous {
    /// Fresh block.
    pub fn new() -> Rendezvous {
        Rendezvous::default()
    }

    /// Is a rendezvous currently in progress?
    pub fn in_progress(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// CP side: open the rendezvous.  Fails if one is already running.
    pub fn begin(&self) -> Result<(), RendezvousError> {
        if self.active.swap(true, Ordering::AcqRel) {
            return Err(RendezvousError::Busy);
        }
        #[cfg(feature = "dyncheck")]
        self.monitor.on_begin();
        self.ready.store(0, Ordering::Release);
        self.done.store(0, Ordering::Release);
        self.go.store(false, Ordering::Release);
        Ok(())
    }

    /// CP side: wait until `peers` CPUs have checked in.  The CP then
    /// performs the global state transfer while every peer is parked,
    /// and releases them with [`Rendezvous::signal_go`].
    pub fn wait_ready(&self, peers: usize) -> Result<(), RendezvousError> {
        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        while self.ready.load(Ordering::Acquire) < peers {
            if Instant::now() > deadline {
                #[cfg(feature = "dyncheck")]
                self.monitor.on_abort();
                self.active.store(false, Ordering::Release);
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        self.monitor.on_wait_ready_ok(peers);
        Ok(())
    }

    /// CP side: raise the shared go flag.
    pub fn signal_go(&self) {
        #[cfg(feature = "dyncheck")]
        self.monitor.on_signal_go();
        self.go.store(true, Ordering::Release);
    }

    /// CP side: wait for check-ins and immediately release the peers.
    pub fn wait_ready_and_go(&self, peers: usize) -> Result<(), RendezvousError> {
        self.wait_ready(peers)?;
        self.signal_go();
        Ok(())
    }

    /// CP side: wait for all peers to complete their per-CPU step, then
    /// close the rendezvous.
    pub fn wait_done(&self, peers: usize) -> Result<(), RendezvousError> {
        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        while self.done.load(Ordering::Acquire) < peers {
            if Instant::now() > deadline {
                #[cfg(feature = "dyncheck")]
                self.monitor.on_abort();
                self.active.store(false, Ordering::Release);
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        self.monitor.on_wait_done_ok(peers);
        self.active.store(false, Ordering::Release);
        Ok(())
    }

    /// Peer side: check in and spin until the CP raises the go flag.
    pub fn check_in_and_wait(&self) -> Result<(), RendezvousError> {
        #[cfg(feature = "dyncheck")]
        self.monitor.on_check_in();
        self.ready.fetch_add(1, Ordering::AcqRel);
        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        while !self.go.load(Ordering::Acquire) {
            if !self.in_progress() {
                // CP aborted (e.g. its own timeout).
                return Err(RendezvousError::Timeout);
            }
            if Instant::now() > deadline {
                return Err(RendezvousError::Timeout);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        self.monitor.on_observed_go();
        Ok(())
    }

    /// Peer side: report the per-CPU switch step complete.
    pub fn complete(&self) {
        #[cfg(feature = "dyncheck")]
        self.monitor.on_complete();
        self.done.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn two_party_protocol_runs_to_completion() {
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let peer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                r.check_in_and_wait().unwrap();
                r.complete();
            })
        };
        r.wait_ready_and_go(1).unwrap();
        r.wait_done(1).unwrap();
        peer.join().unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn double_begin_is_busy() {
        let r = Rendezvous::new();
        r.begin().unwrap();
        assert_eq!(r.begin().unwrap_err(), RendezvousError::Busy);
    }

    #[test]
    fn busy_begin_fails_fast_without_spinning() {
        // A second CP racing into an in-flight rendezvous must bounce
        // with Busy immediately — not wedge until RENDEZVOUS_TIMEOUT.
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let contender = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let started = Instant::now();
                let err = r.begin().unwrap_err();
                (err, started.elapsed())
            })
        };
        let (err, elapsed) = contender.join().unwrap();
        assert_eq!(err, RendezvousError::Busy);
        assert!(
            elapsed < RENDEZVOUS_TIMEOUT / 2,
            "busy begin took {elapsed:?}; it must not spin toward the timeout"
        );

        // The original rendezvous is undisturbed and still completes.
        let peer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                r.check_in_and_wait().unwrap();
                r.complete();
            })
        };
        r.wait_ready_and_go(1).unwrap();
        r.wait_done(1).unwrap();
        peer.join().unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn zero_peers_trivially_completes() {
        let r = Rendezvous::new();
        r.begin().unwrap();
        r.wait_ready_and_go(0).unwrap();
        r.wait_done(0).unwrap();
        assert!(!r.in_progress());
    }

    #[test]
    fn many_peers_all_observe_go_before_done() {
        let r = Arc::new(Rendezvous::new());
        r.begin().unwrap();
        let peers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    r.check_in_and_wait().unwrap();
                    r.complete();
                })
            })
            .collect();
        r.wait_ready_and_go(4).unwrap();
        r.wait_done(4).unwrap();
        for p in peers {
            p.join().unwrap();
        }
    }
}
