//! The shared work queue behind the parallel attach-time recompute.
//!
//! §7.4 of the paper attributes most of the native→virtual switch cost
//! to recomputing the type/count information for all page frames — and
//! during exactly that window the §5.4 rendezvous parks every peer CPU
//! in a spin loop.  This module reclaims that capacity: the CP chops
//! the recompute into chunks, publishes them in a [`WorkQueue`], and
//! the parked peers pull and execute chunks from inside their
//! rendezvous wait (see
//! [`Rendezvous::check_in_and_wait_serving`](crate::rendezvous::Rendezvous::check_in_and_wait_serving)),
//! each charging its *own* simulated cycle clock.  The wall-clock cost
//! of the phase becomes the **max** per-CPU spend instead of the serial
//! sum.
//!
//! The queue is generic over the chunk type — the switch path uses it
//! with its own chunk enum, and the tests here exercise the claiming /
//! completion / failure protocol with plain integers.
//!
//! Protocol (per attach):
//!
//! 1. CP builds the chunk list and publishes the queue.
//! 2. Workers (parked peers *and* the CP itself) loop: [`WorkQueue::pull`]
//!    claims one chunk, the caller executes it, then reports
//!    [`WorkQueue::complete_one`] with the cycles it spent.
//! 3. A validation error flags [`WorkQueue::fail`]: no further chunks
//!    are handed out, in-flight chunks still retire normally.
//! 4. CP calls [`WorkQueue::wait_drained`]: every *claimed* chunk has
//!    completed, so no worker is still touching shared state.  Only
//!    then may the CP tear the queue down and (on success) signal go.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Frames per recompute chunk.  Small enough that an 8K-frame pool
/// splits into ~32 chunks (good load balance on 2–8 CPUs), large
/// enough that the per-chunk dispatch cost
/// (`simx86::costs::SHARD_CHUNK_DISPATCH`) stays noise.
pub const SHARD_CHUNK_FRAMES: usize = 256;

/// A claim-once work queue shared between the CP and the rendezvoused
/// peers during the attach-time recompute.
#[derive(Debug)]
pub struct WorkQueue<T> {
    items: Vec<T>,
    /// Next unclaimed index; grows past `items.len()` harmlessly.
    next: AtomicUsize,
    /// Chunks whose workers have reported completion.
    completed: AtomicUsize,
    /// A worker hit a validation error; stop handing out chunks.
    failed: AtomicBool,
    /// Simulated cycles charged per worker CPU id.
    spent: Mutex<BTreeMap<u32, u64>>,
    /// Happens-before shadow for the dynamic protocol checker.
    #[cfg(feature = "dyncheck")]
    pub(crate) monitor: crate::dyncheck::WorkMonitor,
}

impl<T> WorkQueue<T> {
    /// A fresh queue over `items`.
    pub fn new(items: Vec<T>) -> WorkQueue<T> {
        WorkQueue {
            items,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            // volint::allow(SWITCH-ALLOC): per-switch work-queue spend map, built once before the recompute fan-out
            spent: Mutex::new(BTreeMap::new()),
            #[cfg(feature = "dyncheck")]
            monitor: crate::dyncheck::WorkMonitor::default(),
        }
    }

    /// Total number of chunks published.
    pub fn total(&self) -> usize {
        self.items.len()
    }

    /// Chunks claimed so far (monotonic, capped at `total`).
    fn claimed(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.items.len())
    }

    /// Claim the next chunk, or `None` when the queue is exhausted or
    /// failed.  Every successful `pull` **must** be paired with a
    /// [`WorkQueue::complete_one`] — even on the error path — or
    /// [`WorkQueue::wait_drained`] will wedge.
    pub fn pull(&self) -> Option<(usize, &T)> {
        if self.failed() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::AcqRel);
        self.items.get(i).map(|item| (i, item))
    }

    /// Report one claimed chunk finished, charging `cycles` of
    /// simulated work to worker `cpu`.
    pub fn complete_one(&self, cpu: u32, cycles: u64) {
        // volint::allow(SWITCH-ALLOC, SWITCH-PANIC): std Mutex poisons only if a holder already panicked; entry map holds ≤ one slot per worker CPU
        *self.spent.lock().unwrap().entry(cpu).or_insert(0) += cycles;
        // Shadow publish before the real count bump: a CP that observes
        // the bump is guaranteed to join this completion's clock.
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_chunk_complete();
        self.completed.fetch_add(1, Ordering::AcqRel);
    }

    /// Flag a validation failure: `pull` returns `None` from now on.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::Release);
    }

    /// Has a worker flagged a failure?
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Every claimed chunk has completed, and either all chunks were
    /// claimed or the queue failed (so no more ever will be).  Once
    /// true, no worker is still executing a chunk.
    pub fn drained(&self) -> bool {
        let claimed = self.claimed();
        self.completed.load(Ordering::Acquire) >= claimed
            && (claimed == self.items.len() || self.failed())
    }

    /// CP side: spin (host wall-clock) until [`WorkQueue::drained`] or
    /// `timeout`.  Returns whether the queue drained; the caller then
    /// checks [`WorkQueue::failed`] for the outcome.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // volint::bound(4096) — timeout-bounded drain spin; healthy-path budget while workers stream completions
        while !self.drained() {
            if Instant::now() > deadline {
                return false;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        #[cfg(feature = "dyncheck")]
        // volint::prune(*) — dyncheck instrumentation, compiled out in production builds
        self.monitor.on_drained(self.completed.load(Ordering::Acquire));
        true
    }

    /// The largest per-CPU cycle spend — the makespan of the work
    /// phase, which is what the CP charges to wall-clock (everyone ran
    /// concurrently).
    pub fn max_spent(&self) -> u64 {
        self.spent
            .lock()
            // volint::allow(SWITCH-PANIC): std Mutex lock; poisoning implies a prior worker panic already aborted the switch
            .unwrap()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Cycles charged by worker `cpu` (0 if it never completed a chunk).
    pub fn spent_of(&self, cpu: u32) -> u64 {
        // volint::allow(SWITCH-PANIC): std Mutex lock; poisoning implies a prior worker panic already aborted the switch
        self.spent.lock().unwrap().get(&cpu).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn chunks_are_claimed_exactly_once() {
        let q = Arc::new(WorkQueue::new((0u32..100).collect::<Vec<_>>()));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..4)
            .map(|cpu| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    while let Some((_, &item)) = q.pull() {
                        seen.lock().unwrap().push(item);
                        q.complete_one(cpu, 10);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert!(q.wait_drained(Duration::from_secs(5)));
        assert!(!q.failed());
        let mut items = seen.lock().unwrap().clone();
        items.sort_unstable();
        assert_eq!(items, (0u32..100).collect::<Vec<_>>());
    }

    #[test]
    fn spent_is_tracked_per_cpu_and_max_is_makespan() {
        let q = WorkQueue::new(vec![(); 3]);
        q.pull().unwrap();
        q.complete_one(0, 100);
        q.pull().unwrap();
        q.complete_one(1, 250);
        q.pull().unwrap();
        q.complete_one(1, 50);
        assert!(q.pull().is_none());
        assert_eq!(q.spent_of(0), 100);
        assert_eq!(q.spent_of(1), 300);
        assert_eq!(q.spent_of(7), 0);
        assert_eq!(q.max_spent(), 300);
        assert!(q.drained());
    }

    #[test]
    fn fail_stops_dispatch_but_in_flight_chunks_retire() {
        let q = WorkQueue::new(vec![(); 10]);
        let (_, _) = q.pull().unwrap();
        let (_, _) = q.pull().unwrap();
        q.fail();
        assert!(q.pull().is_none(), "no dispatch after failure");
        assert!(!q.drained(), "two claimed chunks still in flight");
        q.complete_one(0, 1);
        q.complete_one(1, 1);
        assert!(q.drained());
        assert!(q.wait_drained(Duration::from_millis(10)));
        assert!(q.failed());
    }

    #[test]
    fn wait_drained_times_out_on_lost_chunk() {
        let q = WorkQueue::new(vec![(); 1]);
        q.pull().unwrap();
        // The claimed chunk never completes.
        assert!(!q.wait_drained(Duration::from_millis(20)));
    }

    #[test]
    fn empty_queue_is_immediately_drained() {
        let q: WorkQueue<u32> = WorkQueue::new(Vec::new());
        assert!(q.drained());
        assert!(q.wait_drained(Duration::from_millis(1)));
        assert_eq!(q.max_spent(), 0);
    }
}
