//! Self-healing of tainted kernel state (§6.2).
//!
//! "As when activated, a VMM is in full control of the operating system
//! thereon, the VMM is a good candidate to repair the tainted state of
//! operating systems.  Sensors could be added to monitor the anomaly of
//! the operating systems."
//!
//! The taint we model is page-table corruption (a flipped frame number —
//! the bit-flip class the DRAM-error studies cited by the paper
//! motivate): a PTE pointing outside the frames the OS owns.  The
//! *sensor* is a validation walk with the dormant VMM's ownership
//! records; the *healer* runs at PL0 in the switch handler's context,
//! zaps the poisoned entries (the page refaults cleanly afterwards), and
//! then self-virtualization proceeds — an attach over tainted tables
//! would be rejected by the hypervisor's validators, which is itself a
//! detection layer.

use crate::switch::{Mercury, SwitchError, SwitchOutcome};
use crate::ExecMode;
use simx86::mem::FrameNum;
use simx86::paging::{Pte, ENTRIES_PER_TABLE};
use simx86::{costs, Cpu};
use std::sync::Arc;

/// What the sensor + healer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Base tables scanned.
    pub pgds_scanned: usize,
    /// Leaf tables scanned.
    pub tables_scanned: usize,
    /// Poisoned entries found and zapped.
    pub repaired_entries: usize,
    /// Whether a full attach/detach cycle validated the repair.
    pub validated_by_attach: bool,
}

/// Healing errors.
#[derive(Debug)]
pub enum HealError {
    /// The post-repair validation attach failed: state is still bad.
    StillTainted(SwitchError),
    /// A switch was deferred; retry.
    Busy,
    /// Hardware fault during the scan.
    Hardware(simx86::Fault),
}

impl std::fmt::Display for HealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealError::StillTainted(e) => write!(f, "repair did not converge: {e}"),
            HealError::Busy => write!(f, "virtualization object busy; retry"),
            HealError::Hardware(e) => write!(f, "hardware fault while scanning: {e}"),
        }
    }
}

impl std::error::Error for HealError {}

/// The sensor: count PTEs referencing frames the OS does not own.
/// Cheap enough to run periodically.
pub fn sense(mercury: &Arc<Mercury>, cpu: &Arc<Cpu>) -> Result<usize, HealError> {
    scan(mercury, cpu, false).map(|r| r.repaired_entries)
}

/// Run the sensor and, if it fires, the VMM-assisted repair followed by
/// a validating attach/detach round trip.
pub fn heal(mercury: &Arc<Mercury>, cpu: &Arc<Cpu>) -> Result<RepairReport, HealError> {
    let mut report = scan(mercury, cpu, true)?;
    if report.repaired_entries == 0 {
        return Ok(report);
    }
    // Validate: a full self-virtualization round trip re-runs the
    // hypervisor's validators over every table.
    let was_native = mercury.mode() == ExecMode::Native;
    if was_native {
        match mercury
            .switch_to_virtual(cpu)
            .map_err(HealError::StillTainted)?
        {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => return Err(HealError::Busy),
        }
        match mercury
            .switch_to_native(cpu)
            .map_err(HealError::StillTainted)?
        {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => return Err(HealError::Busy),
        }
        report.validated_by_attach = true;
    }
    Ok(report)
}

/// Walk every process's page tables checking each present leaf against
/// the ownership records the pre-cached VMM keeps.  With `repair`,
/// poisoned entries are zapped (they demand-fault cleanly afterwards).
fn scan(mercury: &Arc<Mercury>, cpu: &Arc<Cpu>, repair: bool) -> Result<RepairReport, HealError> {
    let kernel = mercury.kernel();
    let hv = mercury.hypervisor();
    let mem = &kernel.machine.mem;
    let dom = mercury.dom0().id;
    let mut report = RepairReport::default();

    for pgd in kernel.all_pgds() {
        report.pgds_scanned += 1;
        for l2_idx in 0..ENTRIES_PER_TABLE {
            let pde = mem
                .read_pte(cpu, pgd, l2_idx)
                .map_err(HealError::Hardware)?;
            if !pde.present() || !pde.user() {
                continue; // kernel mappings are shared and checked once
            }
            let l1 = FrameNum(pde.frame());
            report.tables_scanned += 1;
            for l1_idx in 0..ENTRIES_PER_TABLE {
                cpu.tick(costs::MEM_WORD);
                let pte = mem.read_pte(cpu, l1, l1_idx).map_err(HealError::Hardware)?;
                if !pte.present() {
                    continue;
                }
                let target = FrameNum(pte.frame());
                let owned = hv.page_info.owner(target) == Some(dom);
                if !owned {
                    report.repaired_entries += 1;
                    if repair {
                        // The healer runs at PL0 below the VO layer — it
                        // repairs tables the VO dispatch itself may be
                        // corrupted by (§6.2).
                        // volint::allow(VO-BYPASS): sub-VO repair path
                        mem.write_pte(cpu, l1, l1_idx, Pte::ABSENT)
                            .map_err(HealError::Hardware)?;
                    }
                }
            }
        }
    }
    if repair && report.repaired_entries > 0 {
        for c in &kernel.machine.cpus {
            // volint::allow(VO-BYPASS): post-repair TLB shootdown, below VO
            c.flush_tlb_local();
        }
    }
    Ok(report)
}

/// Failure injection for tests and the example: corrupt one live PTE of
/// the current address space to point at a frame the OS does not own
/// (the hypervisor's reserved pool — guaranteed foreign).
pub fn inject_taint(mercury: &Arc<Mercury>, cpu: &Arc<Cpu>) -> Result<bool, HealError> {
    let kernel = mercury.kernel();
    let mem = &kernel.machine.mem;
    let foreign = kernel.machine.mem.num_frames() as u32 - 1; // top frame: VMM pool
    for pgd in kernel.all_pgds() {
        for l2_idx in 0..ENTRIES_PER_TABLE {
            let pde = mem
                .read_pte(cpu, pgd, l2_idx)
                .map_err(HealError::Hardware)?;
            if !pde.present() || !pde.user() {
                continue;
            }
            let l1 = FrameNum(pde.frame());
            for l1_idx in 0..ENTRIES_PER_TABLE {
                let pte = mem.read_pte(cpu, l1, l1_idx).map_err(HealError::Hardware)?;
                if pte.present() {
                    // Deliberate fault injection: the taint must bypass the
                    // VO or it would be validated away.
                    // volint::allow(VO-BYPASS): fault injection
                    mem.write_pte(cpu, l1, l1_idx, Pte::new(foreign, pte.0 & 0xfff))
                        .map_err(HealError::Hardware)?;
                    for c in &kernel.machine.cpus {
                        // volint::allow(VO-BYPASS): flush of injected taint
                        c.flush_tlb_local();
                    }
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::tests::rig;
    use crate::TrackingStrategy;
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use nimbus::Session;

    #[test]
    fn clean_system_senses_nothing() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        assert_eq!(sense(&mercury, cpu).unwrap(), 0);
        let r = heal(&mercury, cpu).unwrap();
        assert_eq!(r.repaired_entries, 0);
        assert!(!r.validated_by_attach);
    }

    #[test]
    fn taint_is_detected_blocks_attach_and_heals() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(std::sync::Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 5).unwrap();

        assert!(inject_taint(&mercury, cpu).unwrap());
        assert!(sense(&mercury, cpu).unwrap() > 0);

        // Defense in depth: an attach over tainted tables is rejected by
        // the hypervisor's validators.
        let err = mercury.switch_to_virtual(cpu).unwrap_err();
        assert!(matches!(err, crate::SwitchError::Transfer(_)));
        assert_eq!(mercury.mode(), crate::ExecMode::Native);

        // Heal: repair + validating round trip.
        let report = heal(&mercury, cpu).unwrap();
        assert!(report.repaired_entries > 0);
        assert!(report.validated_by_attach);
        assert_eq!(sense(&mercury, cpu).unwrap(), 0);
        assert_eq!(mercury.mode(), crate::ExecMode::Native);

        // The zapped page demand-faults back to life (data lost, but the
        // invariant is restored — §6.2's dependability goal).
        sess.clear_signal();
        sess.poke(va, 6).unwrap();
        assert_eq!(sess.peek(va).unwrap(), 6);
    }
}
