//! Checkpoint/restart of the whole operating system (§6.1).
//!
//! "To perform checkpointing, the pre-cached VMM is activated and makes
//! a snapshot of the whole system, then the VMM is detached and remains
//! inactive.  If a software failure occurs, the VMM could be
//! automatically reactivated to restore the failed system into a recent
//! checkpoint.  For hardware failures, the snapshot could be manually
//! restored to another healthy machine."

use crate::switch::{Mercury, SwitchError, SwitchOutcome};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::{BootMode, Kernel};
use simx86::{Cpu, Machine};
use std::sync::Arc;
use xenon::save::{restore_domain_mapped, save_domain, DomainImage};
use xenon::{HvError, Hypervisor};

/// A whole-system checkpoint: every frame, the page tables, and the
/// kernel's serialized logical state.
#[derive(Clone)]
pub struct Checkpoint {
    /// The domain image (frames + control state).
    pub image: DomainImage,
    /// Simulated cycle count at capture (source CPU clock).
    pub taken_at: u64,
}

impl Checkpoint {
    /// Checkpoint size on the wire.
    pub fn bytes(&self) -> u64 {
        self.image.wire_bytes()
    }
}

/// Errors from checkpoint/restore orchestration.
#[derive(Debug)]
pub enum CheckpointError {
    /// A mode switch failed or stayed deferred.
    Switch(SwitchError),
    /// The switch was deferred (sensitive code in flight) — retry.
    Busy,
    /// The hypervisor rejected the image.
    Hv(HvError),
    /// The kernel failed to freeze/thaw.
    Kernel(nimbus::KernelError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Switch(e) => write!(f, "mode switch failed: {e}"),
            CheckpointError::Busy => write!(f, "virtualization object busy; retry"),
            CheckpointError::Hv(e) => write!(f, "hypervisor error: {e}"),
            CheckpointError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Take a checkpoint: self-virtualize if needed, snapshot, and return
/// to the original mode.  Applications resume unaware.
pub fn take(mercury: &Arc<Mercury>, cpu: &Arc<Cpu>) -> Result<Checkpoint, CheckpointError> {
    let was_native = mercury.mode() == crate::ExecMode::Native;
    if was_native {
        match mercury
            .switch_to_virtual(cpu)
            .map_err(CheckpointError::Switch)?
        {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => return Err(CheckpointError::Busy),
        }
    }

    // Freeze the kernel's logical state into the domain record, then
    // snapshot the domain (frames + tables + control state).
    let state = mercury
        .kernel()
        .freeze(cpu)
        .map_err(CheckpointError::Kernel)?;
    *mercury.dom0().guest_state.lock() = Some(state);
    let image =
        save_domain(&mercury.hypervisor(), cpu, mercury.dom0()).map_err(CheckpointError::Hv)?;

    if was_native {
        match mercury
            .switch_to_native(cpu)
            .map_err(CheckpointError::Switch)?
        {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => return Err(CheckpointError::Busy),
        }
    }
    Ok(Checkpoint {
        image,
        taken_at: cpu.cycles(),
    })
}

/// A system restored from a checkpoint.
pub struct RestoredSystem {
    /// The (new) machine's hypervisor hosting the restored OS.
    pub hv: Arc<Hypervisor>,
    /// The restored kernel, running in virtual mode as dom0.
    pub kernel: Arc<Kernel>,
}

/// Restore a checkpoint onto `machine` (a healthy machine after a
/// hardware failure, or the same machine after a software failure).
///
/// The restored system comes up in **virtual mode** — the VMM that
/// performed the restore is underneath it — exactly as §6.1 describes.
/// The caller may install Mercury afterwards to regain native speed.
pub fn restore(
    machine: &Arc<Machine>,
    checkpoint: &Checkpoint,
) -> Result<RestoredSystem, CheckpointError> {
    let hv = Hypervisor::warm_up(machine);
    hv.activate();
    let cpu = machine.boot_cpu();
    let new_frames = machine
        .allocator
        .alloc_many(cpu, checkpoint.image.frames.len())
        .ok_or(CheckpointError::Hv(HvError::OutOfMemory))?;
    let (dom, frame_map) = restore_domain_mapped(&hv, cpu, &checkpoint.image, &new_frames, 0)
        .map_err(CheckpointError::Hv)?;
    let state = dom
        .guest_state
        .lock()
        .clone()
        .ok_or_else(|| CheckpointError::Hv(HvError::BadImage("no guest state".into())))?;
    let kernel = Kernel::thaw(
        Arc::clone(machine),
        BootMode::Guest {
            hv: Arc::clone(&hv),
            dom,
        },
        &state,
        &frame_map,
    )
    .map_err(CheckpointError::Kernel)?;
    // Reattach drivers on the new machine (native shape: the restored
    // OS is the driver domain).
    let bounce = machine
        .allocator
        .alloc(cpu)
        .ok_or(CheckpointError::Hv(HvError::OutOfMemory))?;
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(machine)));
    Ok(RestoredSystem { hv, kernel })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::tests::rig;
    use crate::TrackingStrategy;
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use nimbus::Session;
    use simx86::MachineConfig;

    #[test]
    fn checkpoint_roundtrips_mode_and_captures_state() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(std::sync::Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 777).unwrap();
        let fd = sess.open("ckpt.txt", true).unwrap();
        sess.write(fd, b"checkpoint me").unwrap();

        assert_eq!(mercury.mode(), crate::ExecMode::Native);
        let ckpt = take(&mercury, cpu).unwrap();
        // Transparent: we are back in native mode, work continues.
        assert_eq!(mercury.mode(), crate::ExecMode::Native);
        assert_eq!(sess.peek(va).unwrap(), 777);
        assert!(ckpt.bytes() > 1024 * 1024, "whole-system image expected");

        // Post-checkpoint divergence that restore must roll back.
        sess.poke(va, 888).unwrap();
        sess.unlink("ckpt.txt").unwrap();

        // "Hardware failure": restore onto a fresh healthy machine.
        let healthy = simx86::Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 64 * 1024,
        });
        let restored = restore(&healthy, &ckpt).unwrap();
        let sess2 = Session::new(std::sync::Arc::clone(&restored.kernel), 0);
        assert_eq!(sess2.peek(va).unwrap(), 777, "rolled back to checkpoint");
        assert_eq!(restored.kernel.exec_mode(), crate::ExecMode::Virtual);
        assert_eq!(sess2.current_pid(), Some(nimbus::Pid(1)));
        // Note: file *data* lives on the failed machine's disk; §6.1
        // pairs checkpoints with shared storage.  Metadata travelled:
        assert!(sess2.stat("ckpt.txt").is_ok());
    }

    #[test]
    fn checkpoint_from_virtual_mode_stays_virtual() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        let _ckpt = take(&mercury, cpu).unwrap();
        assert_eq!(mercury.mode(), crate::ExecMode::Virtual);
    }

    #[test]
    fn busy_vo_fails_cleanly() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let _guard = mercury.vo_refcount().enter();
        assert!(matches!(take(&mercury, cpu), Err(CheckpointError::Busy)));
        assert_eq!(mercury.mode(), crate::ExecMode::Native);
    }
}

/// Periodic checkpointing (§6.1: "by checkpointing the execution
/// environment periodically and restarting the execution from a
/// specific checkpoint during a failure, they provide proactive
/// fault-tolerant features").
///
/// The keeper is polled from the workload loop (a checkpoint switches
/// modes, which cannot happen from inside the timer interrupt itself);
/// it keeps a bounded history so restore can pick any recent point.
pub struct CheckpointKeeper {
    interval_cycles: u64,
    capacity: usize,
    history: parking_lot::Mutex<std::collections::VecDeque<Checkpoint>>,
    last_taken: std::sync::atomic::AtomicU64,
}

impl CheckpointKeeper {
    /// Keep up to `capacity` checkpoints, at least `interval_cycles`
    /// of simulated time apart.
    pub fn new(interval_cycles: u64, capacity: usize) -> CheckpointKeeper {
        assert!(capacity >= 1);
        CheckpointKeeper {
            interval_cycles,
            capacity,
            history: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            last_taken: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Take a checkpoint if the interval has elapsed.  Returns whether
    /// one was taken.
    pub fn poll(&self, mercury: &Arc<Mercury>, cpu: &Arc<Cpu>) -> Result<bool, CheckpointError> {
        let now = cpu.cycles();
        let last = self.last_taken.load(std::sync::atomic::Ordering::Acquire);
        if now.saturating_sub(last) < self.interval_cycles {
            return Ok(false);
        }
        let ckpt = take(mercury, cpu)?;
        let mut h = self.history.lock();
        if h.len() == self.capacity {
            h.pop_front();
        }
        h.push_back(ckpt);
        self.last_taken
            .store(cpu.cycles(), std::sync::atomic::Ordering::Release);
        Ok(true)
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.history.lock().back().cloned()
    }

    /// Checkpoints currently retained.
    pub fn len(&self) -> usize {
        self.history.lock().len()
    }

    /// No checkpoints yet?
    pub fn is_empty(&self) -> bool {
        self.history.lock().is_empty()
    }
}

#[cfg(test)]
mod keeper_tests {
    use super::*;
    use crate::switch::tests::rig;
    use crate::TrackingStrategy;
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use nimbus::Session;

    #[test]
    fn keeper_takes_on_interval_and_bounds_history() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let sess = Session::new(std::sync::Arc::clone(mercury.kernel()), 0);
        let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();

        let interval = 5_000_000; // ~1.7 ms of simulated time
        let keeper = CheckpointKeeper::new(interval, 2);
        assert!(keeper.is_empty());

        let mut taken = 0;
        for step in 0..4u64 {
            sess.poke(va, step).unwrap();
            sess.compute(interval + 1);
            if keeper.poll(&mercury, cpu).unwrap() {
                taken += 1;
            }
            // Too soon for another: polling again is a no-op.
            assert!(!keeper.poll(&mercury, cpu).unwrap());
        }
        assert_eq!(taken, 4);
        assert_eq!(keeper.len(), 2, "history is bounded");
        assert_eq!(mercury.mode(), crate::ExecMode::Native);

        // The latest checkpoint restores the latest state.
        sess.poke(va, 999).unwrap();
        let healthy = simx86::Machine::new(simx86::MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 64 * 1024,
        });
        let restored = restore(&healthy, &keeper.latest().unwrap()).unwrap();
        let sess2 = Session::new(std::sync::Arc::clone(&restored.kernel), 0);
        assert_eq!(sess2.peek(va).unwrap(), 3, "latest checkpoint has step 3");
    }
}
