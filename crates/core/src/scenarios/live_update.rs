//! Live kernel update under a temporarily attached VMM (§6.4).
//!
//! LUCOS showed VMM-mediated live updating of Linux but "requires a VMM
//! permanently underneath the operating system"; self-virtualization
//! removes exactly that cost: "when there is a need to perform a live
//! update, a VMM could be dynamically attached ... the attached VMM then
//! applies the live update and is detached when the live update is
//! completed."

use crate::switch::{Mercury, SwitchError, SwitchOutcome};
use crate::ExecMode;
use simx86::{costs, Cpu};
use std::sync::Arc;

/// Per-patch application cost charged while the VMM mediates (code
/// rewriting, quiescence checks).
pub const PATCH_APPLY_COST: u64 = 40_000;

/// Result of a completed live update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Patch name.
    pub name: String,
    /// Previously installed version, if any.
    pub old_version: Option<u64>,
    /// Version now live.
    pub new_version: u64,
    /// Cycles the whole operation took (attach + patch + detach).
    pub total_cycles: u64,
    /// Whether the kernel was returned to native mode afterwards.
    pub returned_native: bool,
}

/// Errors from the live-update orchestration.
#[derive(Debug)]
pub enum UpdateError {
    /// Mode switch failed.
    Switch(SwitchError),
    /// Sensitive code in flight; retry later.
    Busy,
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Switch(e) => write!(f, "mode switch failed: {e}"),
            UpdateError::Busy => write!(f, "virtualization object busy; retry"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Apply a live patch: attach the VMM if needed, patch under its
/// mediation, and detach again.  Running applications never stop.
pub fn apply(
    mercury: &Arc<Mercury>,
    cpu: &Arc<Cpu>,
    name: &str,
    version: u64,
) -> Result<UpdateReport, UpdateError> {
    let t0 = cpu.cycles();
    let was_native = mercury.mode() == ExecMode::Native;
    if was_native {
        match mercury
            .switch_to_virtual(cpu)
            .map_err(UpdateError::Switch)?
        {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => return Err(UpdateError::Busy),
        }
    }

    // The VMM is in full control; apply the patch atomically with
    // respect to guest execution.
    cpu.tick(PATCH_APPLY_COST);
    let old_version = mercury.kernel().apply_patch(name, version);

    let mut returned_native = false;
    if was_native {
        match mercury.switch_to_native(cpu).map_err(UpdateError::Switch)? {
            SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {
                returned_native = true;
            }
            SwitchOutcome::Deferred { .. } => return Err(UpdateError::Busy),
        }
    }
    Ok(UpdateReport {
        name: name.to_string(),
        old_version,
        new_version: version,
        total_cycles: cpu.cycles() - t0,
        returned_native,
    })
}

/// Rough upper bound on the update's service disruption: both mode
/// switches plus the patch window, in microseconds.
pub fn estimated_disruption_us(report: &UpdateReport) -> f64 {
    costs::cycles_to_us(report.total_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::tests::rig;
    use crate::TrackingStrategy;

    #[test]
    fn patch_applies_and_returns_native() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        assert_eq!(mercury.kernel().patch_version("cve-fix"), None);
        let report = apply(&mercury, cpu, "cve-fix", 2).unwrap();
        assert_eq!(report.old_version, None);
        assert_eq!(report.new_version, 2);
        assert!(report.returned_native);
        assert_eq!(mercury.kernel().patch_version("cve-fix"), Some(2));
        assert!(!hv.is_active(), "VMM dormant again after the update");
        // The whole disruption is far below a reboot.
        assert!(estimated_disruption_us(&report) < 2_000.0);
    }

    #[test]
    fn repeated_patches_supersede() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        apply(&mercury, cpu, "sched", 1).unwrap();
        let r = apply(&mercury, cpu, "sched", 3).unwrap();
        assert_eq!(r.old_version, Some(1));
        assert_eq!(mercury.kernel().patches(), vec![("sched".to_string(), 3)]);
    }

    #[test]
    fn update_in_virtual_mode_needs_no_switch() {
        let (machine, hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        mercury.switch_to_virtual(cpu).unwrap();
        let report = apply(&mercury, cpu, "hotfix", 1).unwrap();
        assert!(!report.returned_native);
        assert!(hv.is_active());
    }

    #[test]
    fn busy_vo_rejects_update() {
        let (machine, _hv, mercury) = rig(1, TrackingStrategy::RecomputeOnSwitch);
        let cpu = machine.boot_cpu();
        let _g = mercury.vo_refcount().enter();
        assert!(matches!(
            apply(&mercury, cpu, "x", 1),
            Err(UpdateError::Busy)
        ));
    }
}
