//! Usage scenarios of self-virtualization (§6).
//!
//! Each submodule implements one of the paper's dependability features
//! as a small orchestration over [`crate::Mercury`]:
//!
//! * [`checkpoint`] — §6.1 checkpointing and restarting of operating
//!   systems: attach, snapshot the whole system, detach; restore on a
//!   healthy machine after a failure.
//! * [`healing`] — §6.2 self-healing: detect tainted kernel state,
//!   attach the VMM (whose validators reject the taint), repair from
//!   PL0, detach.
//! * [`live_update`] — §6.4 live kernel updates: attach, apply the
//!   patch under VMM mediation, detach.
//!
//! §6.3 (online hardware maintenance) and §6.5 (HPC availability) need
//! multiple machines and live in the `mercury-cluster` crate.

pub mod checkpoint;
pub mod healing;
pub mod live_update;
