//! Frame-accounting strategies across mode switches (§5.1.2).
//!
//! When the VMM is detached it "loses track of the usage information" of
//! the kernel's page frames.  The paper implements two ways to make the
//! VMM's `page_info` table correct again; we add a third that splits the
//! difference:
//!
//! * [`TrackingStrategy::RecomputeOnSwitch`] — the default.  On attach,
//!   walk every frame the OS owns and re-derive owner/type/count from
//!   the live page tables.  Costs nothing in native mode but dominates
//!   the native→virtual switch time ("Mercury has to recalculate the
//!   type and count information for all page frames during a mode
//!   switch, which accounts for the major time to commit a switch",
//!   §7.4).
//! * [`TrackingStrategy::ActiveTracking`] — mirror every native
//!   page-table mutation into the dormant VMM's accounting as it
//!   happens.  The paper measures "about 2%~3% performance overhead
//!   [in native mode] and saves only a small amount of mode switch
//!   time"; they therefore prefer recompute, and so does
//!   [`crate::Mercury::install`]'s default.
//! * [`TrackingStrategy::DirtyRecompute`] — snapshot the validation
//!   results at detach and, while native, merely *set a dirty bit* on
//!   the containing table frame at each PTE write (one byte store,
//!   [`simx86::costs::DIRTY_TRACK_PER_PTE`] ≪ the active mirror's
//!   [`simx86::costs::ACTIVE_TRACK_PER_PTE`]).  Re-attach revalidates
//!   the dirtied frames at the full scan rate and restores the clean
//!   ones at the snapshot-restore rate, so an idle detach window makes
//!   the re-attach nearly free.  This is the low-overhead-monitoring
//!   trade-off of the kernel-object-introspection line of work applied
//!   to Mercury's accounting problem.
//!
//! **Modelling note** (see DESIGN.md): the mirror's bookkeeping work is
//! charged per mutation through the native VO
//! ([`simx86::costs::ACTIVE_TRACK_PER_PTE`] /
//! [`simx86::costs::DIRTY_TRACK_PER_PTE`]); at attach time the
//! correctness path reuses the same validator as recompute — at a
//! mirror adoption rate ([`ADOPT_PER_FRAME`]) for active tracking, and
//! at a dirty/clean blended rate ([`TrackingStrategy::attach_cost`])
//! for dirty recompute.  A property test asserts all three strategies
//! produce identical `page_info` state, which is the invariant the
//! paper's design relies on.

use serde::{Deserialize, Serialize};

/// Per-frame cost of adopting the actively-maintained mirror at attach
/// (a table copy, not a walk of the page tables).
pub const ADOPT_PER_FRAME: u64 = 3;

/// Per-frame cost of restoring a *clean* frame's accounting from the
/// detach-time snapshot under [`TrackingStrategy::DirtyRecompute`]
/// (a copy plus the dirty-bit check).
pub const RESTORE_PER_FRAME: u64 = 5;

/// How the VMM's frame accounting is kept correct across detached
/// periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TrackingStrategy {
    /// Re-derive all type/count state during the attach (paper default).
    #[default]
    RecomputeOnSwitch,
    /// Mirror every native page-table mutation while detached.
    ActiveTracking,
    /// Snapshot at detach, mark table frames dirty on native PTE
    /// writes, revalidate only the dirty frames at re-attach.
    DirtyRecompute,
}

impl TrackingStrategy {
    /// Cycles per owned frame charged during attach, at the strategy's
    /// *uniform* rate (dirty recompute's blended rate needs the dirty
    /// count — see [`TrackingStrategy::attach_cost`]).
    pub fn attach_per_frame_cost(self) -> u64 {
        match self {
            TrackingStrategy::RecomputeOnSwitch => simx86::costs::PGINFO_RECOMPUTE_PER_FRAME,
            TrackingStrategy::ActiveTracking => ADOPT_PER_FRAME,
            // Without a detach-time baseline every frame counts as
            // dirty: the first attach is a full recompute.
            TrackingStrategy::DirtyRecompute => simx86::costs::PGINFO_RECOMPUTE_PER_FRAME,
        }
    }

    /// Total attach-time accounting cycles for `owned` frames of which
    /// `dirty` were mutated since the last detach snapshot (`dirty` is
    /// ignored by the uniform-rate strategies).
    pub fn attach_cost(self, owned: usize, dirty: usize) -> u64 {
        match self {
            TrackingStrategy::DirtyRecompute => {
                let dirty = dirty.min(owned) as u64;
                let clean = owned as u64 - dirty;
                dirty * simx86::costs::PGINFO_RECOMPUTE_PER_FRAME + clean * RESTORE_PER_FRAME
            }
            _ => self.attach_per_frame_cost() * owned as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recompute_is_the_default_and_costs_more_at_attach() {
        assert_eq!(
            TrackingStrategy::default(),
            TrackingStrategy::RecomputeOnSwitch
        );
        assert!(
            TrackingStrategy::RecomputeOnSwitch.attach_per_frame_cost()
                > TrackingStrategy::ActiveTracking.attach_per_frame_cost() * 5
        );
    }

    #[test]
    fn dirty_recompute_blends_scan_and_restore_rates() {
        let s = TrackingStrategy::DirtyRecompute;
        // All-dirty degenerates to the full recompute.
        assert_eq!(
            s.attach_cost(100, 100),
            TrackingStrategy::RecomputeOnSwitch.attach_cost(100, 0)
        );
        // All-clean is the snapshot-restore rate: ≥5× cheaper than a
        // full recompute (the warm re-attach acceptance bar).
        assert!(s.attach_cost(100, 0) * 5 <= s.attach_cost(100, 100));
        // Blend is monotone in the dirty count and clamps at `owned`.
        assert!(s.attach_cost(100, 10) < s.attach_cost(100, 20));
        assert_eq!(s.attach_cost(100, 200), s.attach_cost(100, 100));
        // Uniform strategies ignore the dirty count.
        assert_eq!(
            TrackingStrategy::ActiveTracking.attach_cost(100, 50),
            ADOPT_PER_FRAME * 100
        );
    }
}
