//! Frame-accounting strategies across mode switches (§5.1.2).
//!
//! When the VMM is detached it "loses track of the usage information" of
//! the kernel's page frames.  The paper implements two ways to make the
//! VMM's `page_info` table correct again; we add two more that trade
//! native-mode overhead against attach-time latency:
//!
//! * [`TrackingStrategy::RecomputeOnSwitch`] — the paper's original
//!   design.  On attach, walk every frame the OS owns and re-derive
//!   owner/type/count from the live page tables.  Costs nothing in
//!   native mode but dominates the native→virtual switch time ("Mercury
//!   has to recalculate the type and count information for all page
//!   frames during a mode switch, which accounts for the major time to
//!   commit a switch", §7.4).
//! * [`TrackingStrategy::ActiveTracking`] — mirror every native
//!   page-table mutation into the dormant VMM's accounting as it
//!   happens.  The paper measures "about 2%~3% performance overhead
//!   [in native mode] and saves only a small amount of mode switch
//!   time".
//! * [`TrackingStrategy::DirtyRecompute`] — **the default**.  Snapshot
//!   the validation results at detach (and once at boot, so even the
//!   first attach has a baseline) and, while native, merely *set a
//!   dirty bit* on the containing table frame at each PTE write (one
//!   byte store, [`simx86::costs::DIRTY_TRACK_PER_PTE`] ≪ the active
//!   mirror's [`simx86::costs::ACTIVE_TRACK_PER_PTE`]).  Re-attach
//!   revalidates dirty frames at the full scan rate — but only up to
//!   [`SYNC_REVALIDATE_CAP`] of them synchronously; overflow beyond the
//!   cap is deferred to first guest touch through the lazy
//!   validation-fault path ([`simx86::lazy::LazySet`]) — and restores
//!   the clean frames at the snapshot-restore rate.  An idle detach
//!   window makes the re-attach nearly free, and the cap makes the
//!   attach-time accounting phase *statically bounded* regardless of
//!   how much native mode dirtied.
//! * [`TrackingStrategy::LazyValidate`] — the demand-paged extreme:
//!   attach synchronously revalidates only the *kernel-critical* dirty
//!   frames (the page-table frames a guest could subvert the VMM
//!   through) and defers every other dirty frame to its first guest
//!   touch.  Admission latency is O(critical-dirty); the rest of the
//!   validation debt is paid at [`simx86::costs::LAZY_VALIDATE_FAULT`]
//!   per frame, only for frames the guest actually uses.
//!
//! **Modelling note** (see DESIGN.md §7b): the mirror's bookkeeping work
//! is charged per mutation through the native VO
//! ([`simx86::costs::ACTIVE_TRACK_PER_PTE`] /
//! [`simx86::costs::DIRTY_TRACK_PER_PTE`]); at attach time the
//! correctness path reuses the same validator as recompute — at a
//! mirror adoption rate ([`ADOPT_PER_FRAME`]) for active tracking, and
//! at the capped dirty/clean/deferred blended rate
//! ([`TrackingStrategy::attach_cost`]) for the dirty strategies.  A
//! property test asserts all strategies produce identical `page_info`
//! state, which is the invariant the paper's design relies on.

use serde::{Deserialize, Serialize};

/// Per-frame cost of adopting the actively-maintained mirror at attach
/// (a table copy, not a walk of the page tables).
pub const ADOPT_PER_FRAME: u64 = 3;

/// Per-frame cost of restoring a *clean* frame's accounting from the
/// detach-time snapshot under the dirty strategies (a copy plus the
/// dirty-bit check).
pub const RESTORE_PER_FRAME: u64 = 5;

/// Maximum number of dirty frames [`TrackingStrategy::DirtyRecompute`]
/// revalidates *synchronously* during the attach.  Dirty frames beyond
/// the cap (kernel-critical frames always sort first, so only
/// non-critical frames ever overflow) are deferred to the lazy
/// validation-fault path, which is what makes the attach-time
/// accounting phase statically bounded: at most
/// `SYNC_REVALIDATE_CAP × PGINFO_RECOMPUTE_PER_FRAME` cycles of full-
/// rate scanning no matter how much native mode dirtied.
pub const SYNC_REVALIDATE_CAP: usize = 4096;

/// How the VMM's frame accounting is kept correct across detached
/// periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TrackingStrategy {
    /// Re-derive all type/count state during the attach (the paper's
    /// original design; kept for the legacy full-rate path).
    RecomputeOnSwitch,
    /// Mirror every native page-table mutation while detached.
    ActiveTracking,
    /// Snapshot at detach (and at boot), mark table frames dirty on
    /// native PTE writes, revalidate dirty frames at re-attach — at
    /// most [`SYNC_REVALIDATE_CAP`] of them synchronously, the rest
    /// lazily on first touch.  The default.
    #[default]
    DirtyRecompute,
    /// Dirty tracking plus fault-driven admission: synchronously
    /// revalidate only kernel-critical dirty frames at attach; every
    /// other dirty frame is validated on its first guest touch.
    LazyValidate,
}

impl TrackingStrategy {
    /// Whether the strategy keeps a detach-time dirty baseline (and
    /// therefore wants the boot-time pre-cache, dirty marking through
    /// the native VO, and background revalidation while native).
    pub fn uses_dirty_baseline(self) -> bool {
        matches!(
            self,
            TrackingStrategy::DirtyRecompute | TrackingStrategy::LazyValidate
        )
    }

    /// Cycles per owned frame charged during attach, at the strategy's
    /// *uniform* rate (the dirty strategies' blended rate needs the
    /// dirty partition — see [`TrackingStrategy::attach_cost`]).  Used
    /// by the no-baseline fallback and the switch rollback path.
    pub fn attach_per_frame_cost(self) -> u64 {
        match self {
            TrackingStrategy::RecomputeOnSwitch => simx86::costs::PGINFO_RECOMPUTE_PER_FRAME,
            TrackingStrategy::ActiveTracking => ADOPT_PER_FRAME,
            // Without a detach-time baseline every frame counts as
            // dirty: the fallback is a full recompute.
            TrackingStrategy::DirtyRecompute | TrackingStrategy::LazyValidate => {
                simx86::costs::PGINFO_RECOMPUTE_PER_FRAME
            }
        }
    }

    /// Total attach-time accounting cycles for `owned` frames of which
    /// `dirty` were mutated since the last snapshot, treating every
    /// dirty frame as kernel-critical (`dirty` is ignored by the
    /// uniform-rate strategies).  The switch path, which knows the real
    /// critical partition, uses [`TrackingStrategy::attach_cost_split`].
    pub fn attach_cost(self, owned: usize, dirty: usize) -> u64 {
        self.attach_cost_split(owned, dirty, dirty)
    }

    /// Detach-time accounting cycles for `owned` frames of which
    /// `tables` are currently pinned page-table frames.
    ///
    /// The legacy strategies wipe the whole table — a release pass at
    /// [`simx86::costs::PGINFO_CLEAR_PER_FRAME`] over every owned frame
    /// (the §7.4 "cheap direction", but still O(owned)).  The
    /// dirty-baseline strategies instead *retain* the just-live
    /// accounting as the next attach's snapshot: the only per-frame
    /// work left is dropping the VMM's type restrictions on the pinned
    /// table frames (≤ 256 by construction), so detach is O(tables).
    ///
    /// ```
    /// use mercury::TrackingStrategy;
    /// let owned = 16384;
    /// let legacy = TrackingStrategy::RecomputeOnSwitch.detach_cost(owned, 24);
    /// let dirty = TrackingStrategy::DirtyRecompute.detach_cost(owned, 24);
    /// assert_eq!(legacy, owned as u64 * simx86::costs::PGINFO_CLEAR_PER_FRAME);
    /// assert_eq!(dirty, 24 * simx86::costs::PGINFO_CLEAR_PER_FRAME);
    /// assert!(dirty * 100 < legacy);
    /// ```
    pub fn detach_cost(self, owned: usize, tables: usize) -> u64 {
        if self.uses_dirty_baseline() {
            tables.min(owned) as u64 * simx86::costs::PGINFO_CLEAR_PER_FRAME
        } else {
            owned as u64 * simx86::costs::PGINFO_CLEAR_PER_FRAME
        }
    }

    /// [`TrackingStrategy::attach_cost`] with an explicit partition:
    /// `critical` of the `dirty` frames are kernel-critical and must be
    /// revalidated synchronously before the guest runs.
    ///
    /// * `DirtyRecompute` revalidates dirty frames synchronously up to
    ///   [`SYNC_REVALIDATE_CAP`] (critical frames sort first and the
    ///   cap never truncates them — [`SYNC_REVALIDATE_CAP`] exceeds the
    ///   ≤ 256 kernel table frames by construction); overflow defers at
    ///   [`simx86::costs::LAZY_DEFER_PER_FRAME`].
    /// * `LazyValidate` synchronously revalidates *only* the critical
    ///   dirty frames and defers all others.
    /// * Clean frames restore from the snapshot at
    ///   [`RESTORE_PER_FRAME`] under both.
    pub fn attach_cost_split(self, owned: usize, dirty: usize, critical: usize) -> u64 {
        let scan = simx86::costs::PGINFO_RECOMPUTE_PER_FRAME;
        match self {
            TrackingStrategy::DirtyRecompute => {
                let dirty = dirty.min(owned) as u64;
                let clean = owned as u64 - dirty;
                let sync = dirty.min(SYNC_REVALIDATE_CAP as u64);
                let deferred = dirty - sync;
                sync * scan
                    + clean * RESTORE_PER_FRAME
                    + deferred * simx86::costs::LAZY_DEFER_PER_FRAME
            }
            TrackingStrategy::LazyValidate => {
                let dirty = dirty.min(owned) as u64;
                let critical = (critical as u64).min(dirty);
                let clean = owned as u64 - dirty;
                let deferred = dirty - critical;
                critical * scan
                    + clean * RESTORE_PER_FRAME
                    + deferred * simx86::costs::LAZY_DEFER_PER_FRAME
            }
            _ => self.attach_per_frame_cost() * owned as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_recompute_is_the_default_with_a_baseline() {
        assert_eq!(TrackingStrategy::default(), TrackingStrategy::DirtyRecompute);
        assert!(TrackingStrategy::default().uses_dirty_baseline());
        assert!(TrackingStrategy::LazyValidate.uses_dirty_baseline());
        assert!(!TrackingStrategy::RecomputeOnSwitch.uses_dirty_baseline());
        assert!(!TrackingStrategy::ActiveTracking.uses_dirty_baseline());
        // The legacy full recompute still costs far more per frame than
        // adopting the active mirror.
        assert!(
            TrackingStrategy::RecomputeOnSwitch.attach_per_frame_cost()
                > TrackingStrategy::ActiveTracking.attach_per_frame_cost() * 5
        );
    }

    #[test]
    fn dirty_recompute_blends_scan_and_restore_rates() {
        let s = TrackingStrategy::DirtyRecompute;
        // Under the cap, all-dirty degenerates to the full recompute.
        assert_eq!(
            s.attach_cost(100, 100),
            TrackingStrategy::RecomputeOnSwitch.attach_cost(100, 0)
        );
        // All-clean is the snapshot-restore rate: ≥5× cheaper than a
        // full recompute (the warm re-attach acceptance bar).
        assert!(s.attach_cost(100, 0) * 5 <= s.attach_cost(100, 100));
        // Blend is monotone in the dirty count and clamps at `owned`.
        assert!(s.attach_cost(100, 10) < s.attach_cost(100, 20));
        assert_eq!(s.attach_cost(100, 200), s.attach_cost(100, 100));
        // Uniform strategies ignore the dirty count.
        assert_eq!(
            TrackingStrategy::ActiveTracking.attach_cost(100, 50),
            ADOPT_PER_FRAME * 100
        );
    }

    #[test]
    fn sync_cap_bounds_the_dirty_recompute_attach() {
        let s = TrackingStrategy::DirtyRecompute;
        let owned = 16384;
        // Everything dirty: only SYNC_REVALIDATE_CAP frames pay the
        // full scan rate; the rest defer at the enqueue rate.
        let all_dirty = s.attach_cost(owned, owned);
        let expect = SYNC_REVALIDATE_CAP as u64 * simx86::costs::PGINFO_RECOMPUTE_PER_FRAME
            + (owned - SYNC_REVALIDATE_CAP) as u64 * simx86::costs::LAZY_DEFER_PER_FRAME;
        assert_eq!(all_dirty, expect);
        // The cap keeps the worst case well under the legacy full scan.
        assert!(all_dirty * 3 < TrackingStrategy::RecomputeOnSwitch.attach_cost(owned, 0));
        // Below the cap the cost is exactly the uncapped blend.
        assert_eq!(
            s.attach_cost(owned, 100),
            100 * simx86::costs::PGINFO_RECOMPUTE_PER_FRAME
                + (owned - 100) as u64 * RESTORE_PER_FRAME
        );
    }

    #[test]
    fn dirty_baseline_detach_releases_only_pinned_tables() {
        let owned = 16384;
        let clear = simx86::costs::PGINFO_CLEAR_PER_FRAME;
        // Legacy strategies pay the full O(owned) wipe.
        assert_eq!(
            TrackingStrategy::RecomputeOnSwitch.detach_cost(owned, 24),
            owned as u64 * clear
        );
        assert_eq!(
            TrackingStrategy::ActiveTracking.detach_cost(owned, 24),
            owned as u64 * clear
        );
        // Dirty-baseline strategies retain the snapshot and release
        // only the pinned tables: O(tables), clamped at the pool size.
        assert_eq!(TrackingStrategy::DirtyRecompute.detach_cost(owned, 24), 24 * clear);
        assert_eq!(TrackingStrategy::LazyValidate.detach_cost(owned, 24), 24 * clear);
        assert_eq!(
            TrackingStrategy::LazyValidate.detach_cost(16, 9999),
            16 * clear
        );
    }

    #[test]
    fn lazy_validate_pays_only_for_critical_frames_up_front() {
        let s = TrackingStrategy::LazyValidate;
        let owned = 16384;
        // 2000 dirty frames, 50 of them critical: sync work is the 50
        // critical scans; the other 1950 defer.
        let cost = s.attach_cost_split(owned, 2000, 50);
        assert_eq!(
            cost,
            50 * simx86::costs::PGINFO_RECOMPUTE_PER_FRAME
                + (owned - 2000) as u64 * RESTORE_PER_FRAME
                + 1950 * simx86::costs::LAZY_DEFER_PER_FRAME
        );
        // Far cheaper than the capped dirty recompute of the same
        // population, which is itself far cheaper than the full scan.
        assert!(cost < TrackingStrategy::DirtyRecompute.attach_cost_split(owned, 2000, 50));
        // Critical clamps at the dirty population.
        assert_eq!(
            s.attach_cost_split(owned, 10, 100),
            s.attach_cost_split(owned, 10, 10)
        );
        // The two-arg form treats every dirty frame as critical — the
        // conservative (all-synchronous) reading.
        assert_eq!(s.attach_cost(owned, 300), s.attach_cost_split(owned, 300, 300));
    }
}
