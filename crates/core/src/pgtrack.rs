//! Frame-accounting strategies across mode switches (§5.1.2).
//!
//! When the VMM is detached it "loses track of the usage information" of
//! the kernel's page frames.  The paper implements two ways to make the
//! VMM's `page_info` table correct again, and so do we:
//!
//! * [`TrackingStrategy::RecomputeOnSwitch`] — the default.  On attach,
//!   walk every frame the OS owns and re-derive owner/type/count from
//!   the live page tables.  Costs nothing in native mode but dominates
//!   the native→virtual switch time ("Mercury has to recalculate the
//!   type and count information for all page frames during a mode
//!   switch, which accounts for the major time to commit a switch",
//!   §7.4).
//! * [`TrackingStrategy::ActiveTracking`] — mirror every native
//!   page-table mutation into the dormant VMM's accounting as it
//!   happens.  The paper measures "about 2%~3% performance overhead
//!   [in native mode] and saves only a small amount of mode switch
//!   time"; they therefore prefer recompute, and so does
//!   [`crate::Mercury::install`]'s default.
//!
//! **Modelling note** (see DESIGN.md): the mirror's bookkeeping work is
//! charged per mutation through the native VO
//! ([`simx86::costs::ACTIVE_TRACK_PER_PTE`]); at attach time the
//! correctness path reuses the same validator as recompute at a mirror
//! adoption rate ([`ADOPT_PER_FRAME`]) instead of the full scan rate.
//! A property test asserts the two strategies produce identical
//! `page_info` state, which is the invariant the paper's design relies
//! on.

use serde::{Deserialize, Serialize};

/// Per-frame cost of adopting the actively-maintained mirror at attach
/// (a table copy, not a walk of the page tables).
pub const ADOPT_PER_FRAME: u64 = 3;

/// How the VMM's frame accounting is kept correct across detached
/// periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TrackingStrategy {
    /// Re-derive all type/count state during the attach (paper default).
    #[default]
    RecomputeOnSwitch,
    /// Mirror every native page-table mutation while detached.
    ActiveTracking,
}

impl TrackingStrategy {
    /// Cycles per owned frame charged during attach.
    pub fn attach_per_frame_cost(self) -> u64 {
        match self {
            TrackingStrategy::RecomputeOnSwitch => simx86::costs::PGINFO_RECOMPUTE_PER_FRAME,
            TrackingStrategy::ActiveTracking => ADOPT_PER_FRAME,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recompute_is_the_default_and_costs_more_at_attach() {
        assert_eq!(
            TrackingStrategy::default(),
            TrackingStrategy::RecomputeOnSwitch
        );
        assert!(
            TrackingStrategy::RecomputeOnSwitch.attach_per_frame_cost()
                > TrackingStrategy::ActiveTracking.attach_per_frame_cost() * 5
        );
    }
}
