//! # mercury — self-virtualization for the nimbus kernel
//!
//! This crate is the reproduction of the paper's contribution: the
//! ability of a running operating system to **attach a full-fledged VMM
//! underneath itself on demand, and detach it when no longer needed**,
//! in sub-millisecond time and without disturbing running applications.
//!
//! The pieces map one-to-one onto the paper's design (§4–§5):
//!
//! * **Virtualization objects** ([`vo`]): the kernel's sensitive
//!   operations behind a swappable, *reference-counted* table.  Mercury
//!   ships a native VO (direct hardware access) and a virtual VO
//!   (hypercalls); relocating the kernel between modes is one pointer
//!   store once the reference count reaches zero (§4.2, §5.3).
//! * **Reference-count gating and the retry timer** ([`refcount`],
//!   §5.1.1): a switch request that finds the VO busy is deferred to a
//!   10 ms kernel timer that retries until safe.
//! * **State transfer** (§5.1.2): page-table pages flip between
//!   writable (native) and read-only (virtual) in the kernel direct
//!   map; per-thread kernel-segment privilege is rewritten; the cached
//!   segment selectors in every saved kernel-stack trap context are
//!   fixed by a stub so the resume path doesn't take a #GP.
//! * **State reload** (§5.1.3): CR3/IDT/GDT are reloaded inside the
//!   dedicated switch interrupt's handler, and the privilege-level
//!   change is committed by editing the interrupt's return frame.
//! * **Frame accounting strategies** ([`pgtrack`], §5.1.2): the default
//!   recompute-on-attach (dominates the 0.22 ms switch of §7.4) and the
//!   active-tracking alternative (2~3 % native overhead, faster
//!   switch) — both implemented, compared by the ablation bench.
//! * **SMP rendezvous** ([`rendezvous`], §5.4): the control processor
//!   IPIs its peers and coordinates the mode switch through shared
//!   atomic variables so no core ever runs in the wrong mode.  The
//!   rendezvous rounds are generation-stamped so a late IPI from an
//!   aborted round can never pollute a later one, and the parked peers
//!   double as workers: they pull chunks of the attach-time page-frame
//!   recompute from a shared queue ([`shard`]) instead of spinning,
//!   turning §7.4's dominant serial cost into a parallel one.
//! * **Usage scenarios** ([`scenarios`], §6): checkpoint/restart,
//!   self-healing, and live kernel update.  (Online hardware
//!   maintenance and HPC failover live in the `mercury-cluster` crate,
//!   which adds multi-node simulation.)
//! * **Hardware assist** ([`switch::AssistMode`], §8 future work):
//!   VT-x/EPT-style switching as an alternative mechanism.
//!
//! # Example
//!
//! ```
//! use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
//! use nimbus::drivers::block::NativeBlockDriver;
//! use nimbus::kernel::{BootMode, KernelConfig};
//! use nimbus::{Kernel, Session};
//! use simx86::{Machine, MachineConfig};
//! use std::sync::Arc;
//! use xenon::Hypervisor;
//!
//! // Power on; pre-cache the VMM (it stays dormant).
//! let machine = Machine::new(MachineConfig::up());
//! let hv = Hypervisor::warm_up(&machine);
//!
//! // Boot the kernel natively and make it self-virtualizable.
//! let cpu = machine.boot_cpu();
//! let pool = machine.allocator.alloc_many(cpu, 4096).unwrap();
//! let kernel = Kernel::boot(
//!     Arc::clone(&machine),
//!     KernelConfig { pool, mode: BootMode::Bare, fs_blocks: 512, fs_first_block: 1 },
//! )
//! .unwrap();
//! let bounce = machine.allocator.alloc(cpu).unwrap();
//! kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
//! let mercury =
//!     Mercury::install(Arc::clone(&kernel), hv, TrackingStrategy::RecomputeOnSwitch).unwrap();
//!
//! // Attach the VMM under a live workload, then detach.
//! let sess = Session::new(kernel, 0);
//! let fd = sess.open("data", true).unwrap();
//! sess.write(fd, b"before").unwrap();
//! assert!(matches!(
//!     mercury.switch_to_virtual(cpu).unwrap(),
//!     SwitchOutcome::Completed { .. }
//! ));
//! sess.write(fd, b" and after").unwrap();
//! mercury.switch_to_native(cpu).unwrap();
//! assert_eq!(sess.stat("data").unwrap().size, 16);
//! ```

#![warn(missing_docs)]

#[cfg(feature = "dyncheck")]
pub mod dyncheck;
pub mod pgtrack;
pub mod refcount;
pub mod rendezvous;
pub mod scenarios;
pub mod shard;
pub mod switch;
pub mod vo;

pub use pgtrack::TrackingStrategy;
pub use refcount::VoRefCount;
pub use switch::{
    AssistMode, LiveUpdatePhase, Mercury, ModeDetail, SwitchError, SwitchOutcome, SwitchStats,
};
pub use vo::CountedVo;

pub use nimbus::paravirt::ExecMode;
