//! Vector-clock happens-before checking for the switch protocol
//! (`--features dyncheck`).
//!
//! The static pass (`volint`) proves the rendezvous and refcount code
//! *uses* acquire/release atomics; this module is its dynamic twin — it
//! validates at runtime that those orderings actually produce the
//! happens-before edges the protocol relies on (paper §5.1.1/§5.4):
//!
//! * a peer leaves its spin only after the CP's `signal_go` (the CP's
//!   entire state transfer happens-before every peer reload);
//! * the CP proceeds past `wait_ready`/`wait_done` only after every
//!   counted check-in/completion happened-before it;
//! * a mode switch passes the refcount gate only when every
//!   `VoRefCount` exit happens-before the gate.
//!
//! Each real atomic is shadowed by a vector-clock location.  Release
//! stores publish the acting thread's clock into the location, acquire
//! loads join the location into the thread, and RMWs do both —
//! mirroring the C11 semantics of the orderings used by the real code.
//! Violations are *recorded*, not panicked (hooks run inside `Drop`);
//! tests drain them with [`take_reports`] and assert emptiness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ------------------------------------------------------------ thread ids

static NEXT_TID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TID: usize = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static CLOCK: std::cell::RefCell<VClock> = std::cell::RefCell::new(VClock::default());
}

/// This thread's checker id (dense, never reused).
pub fn tid() -> usize {
    TID.with(|t| *t)
}

fn with_clock<R>(f: impl FnOnce(&mut VClock) -> R) -> R {
    CLOCK.with(|c| f(&mut c.borrow_mut()))
}

// ---------------------------------------------------------- vector clock

/// A vector clock: per-thread logical timestamps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(HashMap<usize, u64>);

impl VClock {
    /// Advance this thread's component.
    pub fn tick(&mut self, t: usize) {
        *self.0.entry(t).or_insert(0) += 1;
    }

    /// Pointwise maximum.
    pub fn join(&mut self, other: &VClock) {
        for (t, v) in &other.0 {
            let e = self.0.entry(*t).or_insert(0);
            if *v > *e {
                *e = *v;
            }
        }
    }

    /// Does every event in `self` happen-before-or-equal `other`?
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .all(|(t, v)| other.0.get(t).copied().unwrap_or(0) >= *v)
    }
}

/// A shadow location mirroring one real atomic.
#[derive(Debug, Default)]
pub struct Loc {
    clock: Mutex<VClock>,
}

impl Loc {
    /// Shadow of a `Release` store: publish the thread clock.
    pub fn release(&self) {
        let t = tid();
        with_clock(|c| {
            self.clock.lock().unwrap().join(c);
            c.tick(t);
        });
    }

    /// Shadow of an `Acquire` load: adopt the location's clock.
    pub fn acquire(&self) {
        with_clock(|c| c.join(&self.clock.lock().unwrap()));
    }

    /// Shadow of an `AcqRel` read-modify-write.
    pub fn acq_rel(&self) {
        let t = tid();
        with_clock(|c| {
            let mut l = self.clock.lock().unwrap();
            c.join(&l);
            l.join(c);
            c.tick(t);
        });
    }
}

// --------------------------------------------------------------- reports

static REPORTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Record a protocol violation (never panics: hooks run inside `Drop`).
pub fn report(msg: String) {
    REPORTS.lock().unwrap().push(msg);
}

/// Drain all recorded violations.
pub fn take_reports() -> Vec<String> {
    std::mem::take(&mut *REPORTS.lock().unwrap())
}

// ----------------------------------------------------- rendezvous monitor

/// Shadow state for one [`crate::rendezvous::Rendezvous`].
#[derive(Debug, Default)]
pub struct RvMonitor {
    ready: Loc,
    go: Loc,
    done: Loc,
    active: Loc,
    state: Mutex<RvState>,
}

#[derive(Debug, Default)]
struct RvState {
    /// (tid, thread clock at check-in) for this round.
    checkins: Vec<(usize, VClock)>,
    /// (tid, thread clock at completion) for this round.
    completes: Vec<(usize, VClock)>,
    /// CP clock snapshot at `signal_go`.
    go_clock: Option<VClock>,
}

impl RvMonitor {
    /// CP opened the rendezvous (`begin` succeeded).
    pub fn on_begin(&self) {
        self.active.acq_rel();
        self.ready.release();
        self.done.release();
        self.go.release();
        let mut s = self.state.lock().unwrap();
        s.checkins.clear();
        s.completes.clear();
        s.go_clock = None;
    }

    /// A peer bumped the ready count.
    pub fn on_check_in(&self) {
        // The event clock is the clock as *published*: snapshot before
        // the shadow RMW ticks past it.
        let snapshot = with_clock(|c| c.clone());
        self.ready.acq_rel();
        self.state.lock().unwrap().checkins.push((tid(), snapshot));
    }

    /// A peer observed the go flag and is about to reload.
    pub fn on_observed_go(&self) {
        self.go.acquire();
        let s = self.state.lock().unwrap();
        if let Some(go_clock) = &s.go_clock {
            let ordered = with_clock(|c| go_clock.leq(c));
            if !ordered {
                report(format!(
                    "dyncheck[rendezvous]: peer tid {} passed the go flag \
                     without a happens-before edge from signal_go — the \
                     CP's state transfer is not ordered before this reload",
                    tid()
                ));
            }
        } else {
            report(format!(
                "dyncheck[rendezvous]: peer tid {} observed go before the \
                 CP signalled it this round",
                tid()
            ));
        }
    }

    /// CP saw `ready == peers`.
    pub fn on_wait_ready_ok(&self, peers: usize) {
        self.ready.acquire();
        let s = self.state.lock().unwrap();
        let ordered = with_clock(|c| {
            s.checkins
                .iter()
                .filter(|(_, ck)| ck.leq(c))
                .count()
        });
        if ordered < peers {
            report(format!(
                "dyncheck[rendezvous]: CP proceeded past wait_ready({peers}) \
                 but only {ordered} check-in(s) happen-before it"
            ));
        }
    }

    /// CP raised the go flag.
    pub fn on_signal_go(&self) {
        let snapshot = with_clock(|c| c.clone());
        self.state.lock().unwrap().go_clock = Some(snapshot);
        self.go.release();
    }

    /// A peer reported completion.
    pub fn on_complete(&self) {
        let snapshot = with_clock(|c| c.clone());
        self.done.acq_rel();
        self.state.lock().unwrap().completes.push((tid(), snapshot));
    }

    /// CP saw `done == peers` and is closing the rendezvous.
    pub fn on_wait_done_ok(&self, peers: usize) {
        self.done.acquire();
        {
            let s = self.state.lock().unwrap();
            let ordered = with_clock(|c| {
                s.completes
                    .iter()
                    .filter(|(_, ck)| ck.leq(c))
                    .count()
            });
            if ordered < peers {
                report(format!(
                    "dyncheck[rendezvous]: CP proceeded past \
                     wait_done({peers}) but only {ordered} completion(s) \
                     happen-before it"
                ));
            }
        }
        self.active.release();
    }

    /// CP aborted (timeout): the closing `active` store.
    pub fn on_abort(&self) {
        self.active.release();
    }
}

// ------------------------------------------------------ work-queue monitor

/// Shadow state for one [`crate::shard::WorkQueue`]: validates that
/// every chunk completion in the §5.4 work phase happens-before the
/// point where the CP declares the queue drained (and therefore before
/// its `signal_go`) — otherwise a peer's partially-written `page_info`
/// updates could be observed by the reloading CPUs.
#[derive(Debug, Default)]
pub struct WorkMonitor {
    completed: Loc,
    state: Mutex<Vec<(usize, VClock)>>,
}

impl WorkMonitor {
    /// A worker finished one chunk (call *before* the real completion
    /// count is bumped, so the shadow publish is visible to any CP that
    /// observes the bump).
    pub fn on_chunk_complete(&self) {
        let snapshot = with_clock(|c| c.clone());
        self.completed.acq_rel();
        self.state.lock().unwrap().push((tid(), snapshot));
    }

    /// The CP observed the queue fully drained and is about to leave
    /// the work phase: every one of the `expected` chunk completions
    /// must happen-before this point.
    pub fn on_drained(&self, expected: usize) {
        self.completed.acquire();
        let s = self.state.lock().unwrap();
        let ordered = with_clock(|c| s.iter().filter(|(_, ck)| ck.leq(c)).count());
        if ordered < expected {
            report(format!(
                "dyncheck[shard]: CP left the work phase expecting \
                 {expected} chunk completion(s) but only {ordered} \
                 happen-before it — a peer's validation writes are not \
                 ordered before signal_go"
            ));
        }
    }
}

// ------------------------------------------------------- refcount monitor

/// Shadow state for one [`crate::refcount::VoRefCount`].
#[derive(Debug, Default)]
pub struct RcMonitor {
    loc: Loc,
    state: Mutex<RcState>,
}

#[derive(Debug, Default)]
struct RcState {
    enters: u64,
    exits: u64,
    /// Join of every exiting thread's clock at exit time.
    exits_clock: VClock,
}

impl RcMonitor {
    /// A guard was taken (call *before* the real `fetch_add`).
    pub fn on_enter(&self) {
        self.loc.acq_rel();
        self.state.lock().unwrap().enters += 1;
    }

    /// A guard dropped (call *before* the real `fetch_sub`).  The
    /// shadow publish happens first, then the bookkeeping, so any exit
    /// visible in the state snapshot below has already published its
    /// clock to the shadow location.
    pub fn on_exit(&self) {
        let snapshot = with_clock(|c| c.clone());
        self.loc.acq_rel();
        let mut s = self.state.lock().unwrap();
        s.exits += 1;
        s.exits_clock.join(&snapshot);
    }

    /// `current()` / `is_idle()` observation.
    pub fn on_observe(&self) {
        self.loc.acquire();
    }

    /// The switch path passed the refcount gate: every *completed* exit
    /// recorded so far must happen-before this point.  Live guards are
    /// not flagged here — the gate is advisory (a racing `enter` after
    /// the gate's load is handled by deferral), so only the ordering of
    /// finished sections is checkable without false positives.
    pub fn assert_quiescent(&self) {
        // Snapshot first, acquire second: an exit in the snapshot
        // published to `loc` before its bookkeeping (see `on_exit`), so
        // the acquire below is guaranteed to join its clock — any
        // violation reported here is real.
        let (enters, exits, exits_clock) = {
            let s = self.state.lock().unwrap();
            (s.enters, s.exits, s.exits_clock.clone())
        };
        self.loc.acquire();
        if exits > enters {
            report(format!(
                "dyncheck[refcount]: {exits} exit(s) recorded against only \
                 {enters} enter(s) — a guard dropped twice"
            ));
        }
        let ordered = with_clock(|c| exits_clock.leq(c));
        if !ordered {
            report(
                "dyncheck[refcount]: gate passed without a happens-before \
                 edge from every completed VO exit — the switch could \
                 observe a sensitive section's partial writes"
                    .to_string(),
            );
        }
    }

    /// Join-point balance check: after all worker threads have joined,
    /// every enter must have a matching exit.  Returns a description of
    /// the imbalance, if any.
    pub fn check_balanced(&self) -> Option<String> {
        let s = self.state.lock().unwrap();
        (s.enters != s.exits).then(|| {
            format!(
                "dyncheck[refcount]: {} enter(s) vs {} exit(s) at a join \
                 point — a guard leaked",
                s.enters, s.exits
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The report buffer is global; tests that drain it must not
    /// interleave.  (Poisoning is irrelevant — reports are plain data.)
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn clocks_join_tick_and_compare() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        b.join(&a);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn release_acquire_transfers_order() {
        let loc = Arc::new(Loc::default());
        let before = {
            let loc = Arc::clone(&loc);
            std::thread::spawn(move || {
                with_clock(|c| c.tick(tid()));
                let snap = with_clock(|c| c.clone());
                loc.release();
                snap
            })
            .join()
            .unwrap()
        };
        loc.acquire();
        assert!(with_clock(|c| before.leq(c)));
    }

    #[test]
    fn rendezvous_monitor_happy_path_is_silent() {
        let _lk = serialized();
        let _ = take_reports();
        let m = Arc::new(RvMonitor::default());
        m.on_begin();
        let peer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.on_check_in();
            })
        };
        peer.join().unwrap();
        m.on_wait_ready_ok(1);
        m.on_signal_go();
        let peer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.on_observed_go();
                m.on_complete();
            })
        };
        peer.join().unwrap();
        m.on_wait_done_ok(1);
        assert_eq!(take_reports(), Vec::<String>::new());
    }

    #[test]
    fn broken_protocol_is_reported() {
        let _lk = serialized();
        let _ = take_reports();
        let m = Arc::new(RvMonitor::default());
        m.on_begin();
        // A peer claims to have observed go, but the CP never signalled:
        // no happens-before edge exists.
        let peer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.on_observed_go())
        };
        peer.join().unwrap();
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].contains("observed go"));
    }

    #[test]
    fn work_monitor_ordered_completions_are_silent() {
        let _lk = serialized();
        let _ = take_reports();
        let m = Arc::new(WorkMonitor::default());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.on_chunk_complete())
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        m.on_drained(3);
        assert_eq!(take_reports(), Vec::<String>::new());
    }

    #[test]
    fn work_monitor_reports_missing_completion_edge() {
        let _lk = serialized();
        let _ = take_reports();
        let m = WorkMonitor::default();
        // The CP claims the queue drained two chunks, but only one
        // completion ever published a happens-before edge.
        m.on_chunk_complete();
        m.on_drained(2);
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].contains("work phase"));
    }

    #[test]
    fn refcount_monitor_balance_and_ordering() {
        let _lk = serialized();
        let _ = take_reports();
        let m = Arc::new(RcMonitor::default());
        m.on_enter();
        assert!(m.check_balanced().unwrap().contains("1 enter(s) vs 0"));
        m.on_exit();
        assert!(m.check_balanced().is_none());

        // Exits completed on another thread happen-before the gate via
        // the shadow location: silent.
        {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.on_enter();
                m.on_exit();
            })
            .join()
            .unwrap();
        }
        m.assert_quiescent();
        assert_eq!(take_reports(), Vec::<String>::new());
    }

    #[test]
    fn refcount_monitor_reports_unordered_exit() {
        let _lk = serialized();
        let _ = take_reports();
        let m = RcMonitor::default();
        m.on_enter();
        m.on_exit();
        // Fabricate an exit clock the checker's thread has never
        // synchronized with (as if the exit skipped its release).
        m.state.lock().unwrap().exits_clock.tick(usize::MAX);
        m.assert_quiescent();
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].contains("happens-before"));
    }
}
