//! The event clock: the second level of simulated time.
//!
//! Simulated time in this workspace has always had one level: per-CPU
//! cycle counters ([`Cpu::cycles`]) advanced by [`Cpu::tick`] at every
//! priced operation.  That remains the **source of truth** — nothing in
//! this module reads time from anywhere else.  What the event clock
//! adds is a global, deterministic queue of *future deadlines* (request
//! arrivals, timer firings, IRQ deadlines, watchdog retry backoffs,
//! scrubber budgets, fault due-cycles) so that a CPU with nothing to do
//! until cycle `T` can **fast-forward**: charge the whole idle span in
//! one `tick` instead of walking it quantum by quantum.
//!
//! # Accounting neutrality
//!
//! [`Cpu::tick`] is a pure atomic addition, so one tick of `N` cycles
//! and `N / Q` ticks of `Q` cycles leave the counter in exactly the
//! same state.  [`EvClock::advance`] exploits that: with skip enabled
//! (the default) it charges an idle span in a single tick; with skip
//! disabled it charges the *identical total* in [`SKIP_QUANTUM`]-sized
//! steps, emulating a poll-loop walking the span.  Every simulated
//! quantity downstream — request latencies, switch cycles, detection
//! latencies — is therefore bit-identical in both modes; only the
//! *host* work differs.  The serving and fault campaign binaries prove
//! this on every run: pass 1 runs skip-on, pass 2 skip-off, and the
//! two passes must produce byte-identical records before anything is
//! archived (the determinism gate, DESIGN.md §14.3).
//!
//! # Who may skip, and who may not
//!
//! Only *idle* spans skip: a servo worker waiting for its next open-loop
//! arrival, a watchdog backing off between attach attempts, an idle
//! kernel CPU with an empty run queue and a drained scrubber backlog.
//! Switch-critical code (the mode-switch phases, the SMP rendezvous)
//! never skips — it is where cycles are *earned*, not idled away.  That
//! is enforced structurally, not by convention: scheduling and
//! fast-forwarding allocate (heap insertion) and take locks, so any
//! call introduced on a `// volint::root(SWITCH)` path would be flagged
//! by volint's `SWITCH-ALLOC` rule (DESIGN.md §10).
//!
//! # Determinism
//!
//! Events are ordered by `(due_cycle, sequence)` where the sequence
//! number is assigned at [`schedule`](EvClock::schedule) time.  Two
//! events due at the same cycle — even when registered for different
//! CPUs — always pop in schedule order, regardless of skip mode; a
//! property test pins this down.  No host time, no thread identity and
//! no hash-map iteration order enters the queue.
//!
//! ```
//! use simx86::evclock::{EvClock, EventKind};
//! use simx86::Cpu;
//! use std::sync::Arc;
//!
//! let clock = EvClock::new();
//! let cpu = Arc::new(Cpu::new(0));
//!
//! // Register a deadline, then fast-forward the idle span to it.
//! let ev = clock.schedule(5_000, EventKind::RequestArrival);
//! assert_eq!(clock.next_due(), Some(5_000));
//! clock.advance(&cpu, 5_000);
//! assert_eq!(cpu.cycles(), 5_000);
//!
//! // The due event pops exactly once, in schedule order.
//! let fired = clock.take_due(cpu.cycles());
//! assert_eq!(fired.len(), 1);
//! assert_eq!(fired[0].id, ev);
//! assert_eq!(clock.next_due(), None);
//! ```

use crate::cpu::Cpu;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Step size used when skip is *disabled*: idle spans are charged in
/// quanta of this many cycles, emulating the poll loop an event-less
/// simulator would run.  Matches the kernel idle loop's donation
/// quantum so the two walk idle time at the same grain.
pub const SKIP_QUANTUM: u64 = 10_000;

/// Process-wide default for whether new [`EvClock`]s fast-forward.
/// `true` (skip on) is the production default; the campaign binaries
/// flip it to `false` for their second determinism pass.
static DEFAULT_SKIP: AtomicBool = AtomicBool::new(true);

/// Set the process-wide default skip mode inherited by every
/// subsequently built [`EvClock`] (and thus every [`crate::Machine`]).
/// Existing clocks are unaffected; use [`EvClock::set_skip`] for those.
pub fn set_default_skip(on: bool) {
    DEFAULT_SKIP.store(on, Ordering::Release);
}

/// The process-wide default skip mode.
pub fn default_skip() -> bool {
    DEFAULT_SKIP.load(Ordering::Acquire)
}

/// Opaque handle for one scheduled event, returned by
/// [`EvClock::schedule`] and accepted by [`EvClock::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// What kind of deadline an event marks.  Purely descriptive — the
/// clock treats all kinds identically; consumers use it to decide how
/// to service a popped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// An open-loop request arrival (servo load generator).
    RequestArrival,
    /// A programmed timer deadline ([`crate::devices::SimTimer`]).
    TimerDeadline,
    /// A device IRQ expected by some deadline.
    IrqDeadline,
    /// A watchdog attach-retry backoff expiring.
    WatchdogRetry,
    /// A scrubber idle-donation budget boundary.
    ScrubBudget,
    /// A planted fault's due-cycle (faultgen arm deadlines).
    FaultDue,
    /// A live-migration pre-copy round deadline: while a migration is
    /// in flight, its next round is a scheduled event so the time skip
    /// cannot fast-forward past it (the round must run, scan dirty
    /// bits, and re-arm before idle spans may collapse).
    MigrationRound,
    /// Anything else.
    Other,
}

/// One scheduled (or popped) event.
///
/// Ordering is `(due, seq)` — `seq` is the schedule-time sequence
/// number, so same-cycle events compare in schedule order.  The derive
/// relies on field order; keep `due` and `seq` first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Absolute simulated cycle the event is due at.
    pub due: u64,
    /// Schedule-order sequence number (the same-cycle tiebreak).
    pub seq: u64,
    /// The handle [`EvClock::schedule`] returned for it.
    pub id: EventId,
    /// CPU the event targets, if it targets one.
    pub cpu: Option<usize>,
    /// Descriptive kind.
    pub kind: EventKind,
}

struct Inner {
    heap: BinaryHeap<Reverse<Event>>,
    cancelled: BTreeSet<u64>,
    next_id: u64,
}

/// The global event queue plus the fast-forward policy.
///
/// One per [`crate::Machine`] (`machine.evclock`); standalone instances
/// are handy in tests.  All methods take `&self` — the queue is
/// internally locked, and the statistics are atomics.
pub struct EvClock {
    inner: Mutex<Inner>,
    skip: AtomicBool,
    spans: AtomicU64,
    cycles_skipped: AtomicU64,
}

impl EvClock {
    /// A fresh, empty clock inheriting the process-wide
    /// [`default_skip`] mode.
    pub fn new() -> Arc<EvClock> {
        Arc::new(EvClock {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                cancelled: BTreeSet::new(),
                next_id: 0,
            }),
            skip: AtomicBool::new(default_skip()),
            spans: AtomicU64::new(0),
            cycles_skipped: AtomicU64::new(0),
        })
    }

    /// Enable or disable fast-forwarding on this clock.  Accounting is
    /// identical either way (see the module docs); disabling only makes
    /// [`advance`](EvClock::advance) walk idle spans in
    /// [`SKIP_QUANTUM`]-sized host steps.
    pub fn set_skip(&self, on: bool) {
        self.skip.store(on, Ordering::Release);
    }

    /// Is fast-forwarding enabled on this clock?
    pub fn skip_enabled(&self) -> bool {
        self.skip.load(Ordering::Acquire)
    }

    /// Schedule an event at absolute cycle `due`, not bound to a CPU.
    pub fn schedule(&self, due: u64, kind: EventKind) -> EventId {
        self.schedule_inner(due, None, kind)
    }

    /// Schedule an event at absolute cycle `due` targeting `cpu_id`.
    ///
    /// The binding is descriptive: any caller may pop the event, but
    /// consumers that resolve deadlines per CPU (the machine's idle
    /// helper, a per-CPU timer) use it to route servicing.
    pub fn schedule_for(&self, cpu_id: usize, due: u64, kind: EventKind) -> EventId {
        self.schedule_inner(due, Some(cpu_id), kind)
    }

    fn schedule_inner(&self, due: u64, cpu: Option<usize>, kind: EventKind) -> EventId {
        let mut inner = self.inner.lock();
        let seq = inner.next_id;
        inner.next_id += 1;
        let id = EventId(seq);
        inner.heap.push(Reverse(Event {
            due,
            seq,
            id,
            cpu,
            kind,
        }));
        id
    }

    /// Cancel a scheduled event.  Returns `true` if it was still
    /// pending (cancellation is lazy: the entry is dropped when it
    /// reaches the head of the queue).
    pub fn cancel(&self, id: EventId) -> bool {
        let mut inner = self.inner.lock();
        if id.0 >= inner.next_id {
            return false;
        }
        inner.cancelled.insert(id.0)
    }

    /// The due cycle of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<u64> {
        let mut inner = self.inner.lock();
        Self::drop_cancelled(&mut inner);
        inner.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Pop the earliest event due at or before `now`, if any.
    pub fn pop_due(&self, now: u64) -> Option<Event> {
        let mut inner = self.inner.lock();
        Self::drop_cancelled(&mut inner);
        match inner.heap.peek() {
            Some(Reverse(e)) if e.due <= now => {
                let Reverse(e) = inner.heap.pop().expect("peeked entry");
                Some(e)
            }
            _ => None,
        }
    }

    /// Pop *every* event due at or before `now`, in `(due, seq)` order.
    pub fn take_due(&self, now: u64) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.pop_due(now) {
            out.push(e);
        }
        out
    }

    /// Events still pending (scheduled, not yet popped or cancelled).
    pub fn pending_events(&self) -> usize {
        let mut inner = self.inner.lock();
        Self::drop_cancelled(&mut inner);
        inner.heap.len()
    }

    fn drop_cancelled(inner: &mut Inner) {
        while let Some(Reverse(e)) = inner.heap.peek() {
            if inner.cancelled.remove(&e.seq) {
                inner.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Advance `cpu` to absolute cycle `target`, charging the idle span
    /// to its cycle counter.  Returns the cycles charged (0 when the
    /// CPU is already at or past `target`).
    ///
    /// With skip enabled the whole span is one [`Cpu::tick`]; with skip
    /// disabled the identical total is charged in [`SKIP_QUANTUM`]
    /// steps.  Either way the counter lands on the same value — this is
    /// the accounting-neutrality contract the campaign determinism gate
    /// re-proves on every run.
    ///
    /// `advance` does **not** pop events inside the span; callers that
    /// must service intermediate deadlines use
    /// [`advance_until`](EvClock::advance_until).
    pub fn advance(&self, cpu: &Cpu, target: u64) -> u64 {
        let from = cpu.cycles();
        if target <= from {
            return 0;
        }
        let gap = target - from;
        self.spans.fetch_add(1, Ordering::Relaxed);
        if self.skip.load(Ordering::Acquire) {
            cpu.tick(gap);
            self.cycles_skipped.fetch_add(gap, Ordering::Relaxed);
            merctrace::counter!(cpu.id, "simx86.evclock.skip", gap, cpu.cycles());
        } else {
            // Identical total charge, walked at the poll-loop grain.
            let mut left = gap;
            while left > 0 {
                let step = left.min(SKIP_QUANTUM);
                cpu.tick(step);
                left -= step;
            }
        }
        gap
    }

    /// Advance `cpu` to `target`, stopping at every scheduled event on
    /// the way: the span `(now, target]` is walked deadline to
    /// deadline, `on_event` is called for each popped event with the
    /// CPU already advanced to its due cycle, and the remainder of the
    /// span is then fast-forwarded.  Returns the total cycles charged.
    ///
    /// ```
    /// use simx86::evclock::{EvClock, EventKind};
    /// use simx86::Cpu;
    /// use std::sync::Arc;
    ///
    /// let clock = EvClock::new();
    /// let cpu = Arc::new(Cpu::new(0));
    /// clock.schedule(2_000, EventKind::TimerDeadline);
    /// clock.schedule(7_500, EventKind::FaultDue);
    ///
    /// let mut seen = Vec::new();
    /// clock.advance_until(&cpu, 10_000, |cpu, ev| {
    ///     seen.push((cpu.cycles(), ev.kind));
    /// });
    /// assert_eq!(cpu.cycles(), 10_000);
    /// assert_eq!(seen, vec![
    ///     (2_000, EventKind::TimerDeadline),
    ///     (7_500, EventKind::FaultDue),
    /// ]);
    /// ```
    pub fn advance_until(
        &self,
        cpu: &Cpu,
        target: u64,
        mut on_event: impl FnMut(&Cpu, Event),
    ) -> u64 {
        let mut charged = 0u64;
        loop {
            let now = cpu.cycles();
            if now >= target {
                break;
            }
            match self.next_due() {
                Some(due) if due <= target => {
                    charged += self.advance(cpu, due);
                    while let Some(e) = self.pop_due(cpu.cycles()) {
                        on_event(cpu, e);
                    }
                }
                _ => {
                    charged += self.advance(cpu, target);
                }
            }
        }
        charged
    }

    /// Idle spans advanced so far (in either mode).
    pub fn spans_advanced(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Cycles fast-forwarded (skip-on spans only) — the simulated time
    /// this clock saved the host from walking.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for EvClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvClock")
            .field("skip", &self.skip_enabled())
            .field("pending", &self.pending_events())
            .field("spans", &self.spans_advanced())
            .field("cycles_skipped", &self.cycles_skipped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_charges_identically_in_both_modes() {
        for (skip, quantum_walk) in [(true, false), (false, true)] {
            let clock = EvClock::new();
            clock.set_skip(skip);
            let cpu = Arc::new(Cpu::new(0));
            cpu.tick(123);
            let charged = clock.advance(&cpu, 1_234_567);
            assert_eq!(charged, 1_234_567 - 123);
            assert_eq!(cpu.cycles(), 1_234_567);
            assert_eq!(clock.cycles_skipped() > 0, !quantum_walk);
        }
    }

    #[test]
    fn advance_to_the_past_is_free() {
        let clock = EvClock::new();
        let cpu = Arc::new(Cpu::new(0));
        cpu.tick(500);
        assert_eq!(clock.advance(&cpu, 400), 0);
        assert_eq!(clock.advance(&cpu, 500), 0);
        assert_eq!(cpu.cycles(), 500);
    }

    #[test]
    fn same_cycle_events_pop_in_schedule_order() {
        let clock = EvClock::new();
        let a = clock.schedule_for(1, 1_000, EventKind::RequestArrival);
        let b = clock.schedule_for(0, 1_000, EventKind::TimerDeadline);
        let c = clock.schedule(999, EventKind::FaultDue);
        let fired = clock.take_due(1_000);
        assert_eq!(
            fired.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![c, a, b],
            "earlier due first, then schedule order within a cycle"
        );
    }

    #[test]
    fn cancel_is_lazy_but_effective() {
        let clock = EvClock::new();
        let a = clock.schedule(100, EventKind::Other);
        let b = clock.schedule(200, EventKind::Other);
        assert!(clock.cancel(a));
        assert!(!clock.cancel(a), "double cancel reports not-pending");
        assert_eq!(clock.next_due(), Some(200));
        let fired = clock.take_due(1_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].id, b);
        assert!(!clock.cancel(EventId(99)), "never-scheduled id");
    }

    #[test]
    fn advance_until_services_intermediate_deadlines() {
        let clock = EvClock::new();
        let cpu = Arc::new(Cpu::new(0));
        clock.schedule(300, EventKind::TimerDeadline);
        clock.schedule(300, EventKind::RequestArrival);
        clock.schedule(900, EventKind::WatchdogRetry);
        clock.schedule(5_000, EventKind::Other); // beyond the span
        let mut stops = Vec::new();
        let charged = clock.advance_until(&cpu, 1_000, |cpu, e| {
            stops.push((cpu.cycles(), e.kind));
        });
        assert_eq!(charged, 1_000);
        assert_eq!(cpu.cycles(), 1_000);
        assert_eq!(
            stops,
            vec![
                (300, EventKind::TimerDeadline),
                (300, EventKind::RequestArrival),
                (900, EventKind::WatchdogRetry),
            ]
        );
        assert_eq!(clock.pending_events(), 1, "the far event stays queued");
    }

    #[test]
    fn default_skip_is_inherited_at_construction() {
        assert!(default_skip(), "skip is the production default");
        set_default_skip(false);
        let off = EvClock::new();
        set_default_skip(true);
        let on = EvClock::new();
        assert!(!off.skip_enabled());
        assert!(on.skip_enabled());
    }
}
