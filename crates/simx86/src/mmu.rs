//! The memory-management unit: hardware page-table walks.
//!
//! The MMU is pure mechanism.  It reads the two-level tables rooted at
//! the CPU's CR3 out of simulated physical memory, enforces the
//! protection bits (including write protection for supervisor accesses,
//! i.e. CR0.WP=1 semantics — this is what makes read-only page-table
//! pages in virtual mode actually fault), maintains accessed/dirty bits,
//! and fills the per-CPU TLB.
//!
//! Policy — who owns a frame, whether a PTE write is legal — lives in the
//! kernel's paravirt layer and the hypervisor's validators.

use crate::costs;
use crate::cpu::Cpu;
use crate::fault::{AccessKind, Fault};
use crate::mem::{FrameNum, PhysAddr, PhysMemory};
use crate::paging::{Pte, VirtAddr};

/// Stateless MMU entry points.
pub struct Mmu;

impl Mmu {
    /// Translate `va` for the given access, exactly as the hardware
    /// would: TLB first, then a walk of the tables under the CPU's CR3.
    ///
    /// `user_access` marks accesses performed on behalf of user code
    /// (supervisor-only pages then fault).
    pub fn translate(
        mem: &PhysMemory,
        cpu: &Cpu,
        va: VirtAddr,
        access: AccessKind,
        user_access: bool,
    ) -> Result<PhysAddr, Fault> {
        if !va.is_canonical() {
            return Err(Fault::PageNotPresent { va, access });
        }
        let vpn = va.vpn();

        // TLB lookup.  A write through a clean cached entry re-walks so
        // the dirty bit lands in memory (dirty tracking feeds live
        // migration's log).
        if let Some(pte) = cpu.tlb.lock().lookup(vpn) {
            let dirty_ok = access != AccessKind::Write || pte.dirty();
            if dirty_ok {
                Self::check_perms(pte, va, access, user_access)?;
                cpu.tick(costs::TLB_HIT);
                return Ok(PhysAddr(FrameNum(pte.frame()).base().0 + va.page_offset()));
            }
        }

        cpu.tick(costs::TLB_MISS_WALK);
        merctrace::counter!(cpu.id, "simx86.tlb.miss", 1, cpu.cycles());
        let ept = cpu.active_ept();
        if ept.is_some() {
            // Nested walk: every guest-table access re-translates.
            cpu.tick(costs::EPT_WALK_EXTRA);
        }
        let (leaf, table, index) = Self::walk_leaf(mem, cpu, FrameNum(cpu.cr3_raw()), va)?
            .ok_or(Fault::PageNotPresent { va, access })?;
        Self::check_perms(leaf, va, access, user_access)?;
        if let Some(ept) = &ept {
            ept.check(FrameNum(leaf.frame()))?;
        }
        // Lazy fault-driven attach: the first touch of a frame whose
        // page_info revalidation was deferred takes a validation fault
        // drained by the resident VMM.  Registration flushed the TLB,
        // so every deferred frame is guaranteed to pass through here.
        if let Some(lazy) = cpu.active_lazy_set() {
            lazy.check(cpu, FrameNum(leaf.frame()))?;
        }

        // Set accessed/dirty in the in-memory entry, as hardware does.
        let mut updated = leaf.with_flags(Pte::ACCESSED);
        if access == AccessKind::Write {
            updated = updated.with_flags(Pte::DIRTY);
        }
        if updated != leaf {
            mem.write_pte(cpu, table, index, updated)?;
        }
        cpu.tlb.lock().insert(vpn, updated);
        Ok(PhysAddr(
            FrameNum(updated.frame()).base().0 + va.page_offset(),
        ))
    }

    /// Software walk: find the leaf PTE for `va` under `pgd`, along with
    /// the table frame and slot holding it.  No permission checks, no
    /// TLB, no A/D updates — this is what the kernel, the hypervisor's
    /// validators and Mercury's type/count recomputation use.
    pub fn walk_leaf(
        mem: &PhysMemory,
        cpu: &Cpu,
        pgd: FrameNum,
        va: VirtAddr,
    ) -> Result<Option<(Pte, FrameNum, usize)>, Fault> {
        let l2 = mem.read_pte(cpu, pgd, va.l2_index())?;
        if !l2.present() {
            return Ok(None);
        }
        let l1_table = FrameNum(l2.frame());
        let l1 = mem.read_pte(cpu, l1_table, va.l1_index())?;
        if !l1.present() {
            return Ok(None);
        }
        Ok(Some((l1, l1_table, va.l1_index())))
    }

    /// Read the L2 (page-directory) entry covering `va`.
    pub fn read_l2(mem: &PhysMemory, cpu: &Cpu, pgd: FrameNum, va: VirtAddr) -> Result<Pte, Fault> {
        mem.read_pte(cpu, pgd, va.l2_index())
    }

    fn check_perms(
        pte: Pte,
        va: VirtAddr,
        access: AccessKind,
        user_access: bool,
    ) -> Result<(), Fault> {
        if !pte.present() {
            return Err(Fault::PageNotPresent { va, access });
        }
        if user_access && !pte.user() {
            return Err(Fault::PageProtection { va, access });
        }
        // CR0.WP = 1: even supervisor writes honor the writable bit.
        if access == AccessKind::Write && !pte.writable() {
            return Err(Fault::PageProtection { va, access });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use std::sync::Arc;

    /// Hand-build a tiny address space: PGD in frame 1, one L1 table in
    /// frame 2, data page in frame 3 mapped at `va`.
    fn setup(mapping_flags: u64) -> (PhysMemory, Arc<Cpu>, VirtAddr) {
        let mem = PhysMemory::new(8);
        let cpu = Arc::new(Cpu::new(0));
        let va = VirtAddr(0x0020_3000); // l2=1, l1=3
        mem.write_pte(
            &cpu,
            FrameNum(1),
            va.l2_index(),
            Pte::new(2, Pte::WRITABLE | Pte::USER),
        )
        .unwrap();
        mem.write_pte(&cpu, FrameNum(2), va.l1_index(), Pte::new(3, mapping_flags))
            .unwrap();
        cpu.write_cr3(1).unwrap();
        (mem, cpu, va)
    }

    #[test]
    fn translate_hits_mapped_page() {
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        let pa = Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        assert_eq!(pa.frame(), FrameNum(3));
        assert_eq!(pa.offset(), va.page_offset());
        // Second access: TLB hit.
        let (h0, _, _) = cpu.tlb.lock().stats();
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        let (h1, _, _) = cpu.tlb.lock().stats();
        assert_eq!(h1, h0 + 1);
    }

    #[test]
    fn unmapped_page_not_present() {
        let (mem, cpu, _) = setup(Pte::WRITABLE | Pte::USER);
        let err =
            Mmu::translate(&mem, &cpu, VirtAddr(0x0100_0000), AccessKind::Read, true).unwrap_err();
        assert!(matches!(err, Fault::PageNotPresent { .. }));
    }

    #[test]
    fn write_to_readonly_faults_even_for_supervisor() {
        let (mem, cpu, va) = setup(Pte::USER); // not writable
        let err = Mmu::translate(&mem, &cpu, va, AccessKind::Write, false).unwrap_err();
        assert!(matches!(err, Fault::PageProtection { .. }));
        // Reads still fine.
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, false).unwrap();
    }

    #[test]
    fn user_access_to_supervisor_page_faults() {
        let (mem, cpu, va) = setup(Pte::WRITABLE); // no USER bit
        let err = Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap_err();
        assert!(matches!(err, Fault::PageProtection { .. }));
        // Supervisor access is fine.
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, false).unwrap();
    }

    #[test]
    fn walk_sets_accessed_and_dirty() {
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        Mmu::translate(&mem, &cpu, va, AccessKind::Write, true).unwrap();
        let (leaf, _, _) = Mmu::walk_leaf(&mem, &cpu, FrameNum(1), va)
            .unwrap()
            .unwrap();
        assert!(leaf.accessed());
        assert!(leaf.dirty());
    }

    #[test]
    fn read_does_not_set_dirty() {
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        let (leaf, _, _) = Mmu::walk_leaf(&mem, &cpu, FrameNum(1), va)
            .unwrap()
            .unwrap();
        assert!(leaf.accessed());
        assert!(!leaf.dirty());
    }

    #[test]
    fn write_through_clean_tlb_entry_sets_dirty() {
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        // Prime the TLB with a clean entry.
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        // Now write: must re-walk and set dirty in memory.
        Mmu::translate(&mem, &cpu, va, AccessKind::Write, true).unwrap();
        let (leaf, _, _) = Mmu::walk_leaf(&mem, &cpu, FrameNum(1), va)
            .unwrap()
            .unwrap();
        assert!(leaf.dirty());
    }

    #[test]
    fn stale_tlb_masks_table_change_until_invlpg() {
        // Demonstrates why TLB flushes are part of the paravirt interface.
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        // Unmap behind the TLB's back.
        mem.write_pte(&cpu, FrameNum(2), va.l1_index(), Pte::ABSENT)
            .unwrap();
        // Still translates via the stale entry.
        assert!(Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).is_ok());
        cpu.invlpg(va.vpn());
        assert!(Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).is_err());
    }

    #[test]
    fn lazy_pending_frame_validated_on_first_touch() {
        let (mem, cpu, va) = setup(Pte::WRITABLE | Pte::USER);
        // Defer the data frame (3); registration flushes the TLB.
        let set = Arc::new(crate::lazy::LazySet::new([FrameNum(3)]));
        cpu.set_lazy_set(Some(Arc::clone(&set)));

        Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap();
        assert_eq!(set.remaining(), 0, "first touch must drain the deferral");
        assert_eq!(set.validated(), 1);

        // Sealed with a pending frame: the touch is a hard fault.
        let set2 = Arc::new(crate::lazy::LazySet::new([FrameNum(3)]));
        set2.seal();
        cpu.set_lazy_set(Some(set2));
        let err = Mmu::translate(&mem, &cpu, va, AccessKind::Read, true).unwrap_err();
        assert!(matches!(err, Fault::ValidationPending { frame: 3 }));
        cpu.set_lazy_set(None);
    }

    #[test]
    fn non_canonical_address_faults() {
        let (mem, cpu, _) = setup(Pte::WRITABLE | Pte::USER);
        let err = Mmu::translate(
            &mem,
            &cpu,
            VirtAddr(crate::paging::VA_TOP + 5),
            AccessKind::Read,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, Fault::PageNotPresent { .. }));
    }
}
