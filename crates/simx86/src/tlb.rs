//! A small per-CPU translation lookaside buffer.
//!
//! The TLB caches virtual-page → (frame, flags) translations.  Capacity
//! and eviction are deliberately simple (FIFO over a fixed-size table);
//! what matters to the reproduction is *when* flushes happen: CR3 loads
//! flush non-global entries (costly in virtual mode where they become
//! hypercalls), and `invlpg` drops a single page.

use crate::paging::Pte;

/// TLB capacity in entries.
pub const TLB_ENTRIES: usize = 64;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TlbEntry {
    vpn: u64,
    pte: Pte,
}

/// The TLB itself.  Owned by a [`crate::Cpu`] behind a mutex.
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    next_slot: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Tlb {
    /// An empty TLB.
    pub fn new() -> Tlb {
        Tlb {
            entries: vec![None; TLB_ENTRIES],
            next_slot: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Look up a virtual page number.  Returns the cached leaf PTE.
    pub fn lookup(&mut self, vpn: u64) -> Option<Pte> {
        match self
            .entries
            .iter()
            .flatten()
            .find(|e| e.vpn == vpn)
            .map(|e| e.pte)
        {
            Some(pte) => {
                self.hits += 1;
                Some(pte)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install a translation after a successful walk.
    pub fn insert(&mut self, vpn: u64, pte: Pte) {
        // Replace an existing entry for the same page if present.
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|e| matches!(e, Some(x) if x.vpn == vpn))
        {
            *slot = Some(TlbEntry { vpn, pte });
            return;
        }
        self.entries[self.next_slot] = Some(TlbEntry { vpn, pte });
        self.next_slot = (self.next_slot + 1) % TLB_ENTRIES;
    }

    /// Drop every non-global entry (CR3 reload).
    pub fn flush(&mut self) {
        self.flushes += 1;
        for e in self.entries.iter_mut() {
            if !matches!(e, Some(x) if x.pte.global()) {
                *e = None;
            }
        }
    }

    /// Drop everything including global entries (CR4.PGE toggle).
    pub fn flush_all(&mut self) {
        self.flushes += 1;
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Drop a single page's translation (`invlpg`).
    pub fn invalidate(&mut self, vpn: u64) {
        // volint::bound(64) — fixed-size TLB entry array
        for e in self.entries.iter_mut() {
            if matches!(e, Some(x) if x.vpn == vpn) {
                *e = None;
            }
        }
    }

    /// (hits, misses, flushes) counters for diagnostics.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.flushes)
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_invalidate() {
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(5), None);
        tlb.insert(5, Pte::new(42, Pte::WRITABLE));
        assert_eq!(tlb.lookup(5).unwrap().frame(), 42);
        tlb.invalidate(5);
        assert_eq!(tlb.lookup(5), None);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new();
        tlb.insert(5, Pte::new(1, 0));
        tlb.insert(5, Pte::new(2, 0));
        assert_eq!(tlb.lookup(5).unwrap().frame(), 2);
        // Only one slot used.
        assert_eq!(tlb.entries.iter().flatten().count(), 1);
    }

    #[test]
    fn flush_preserves_global_entries() {
        let mut tlb = Tlb::new();
        tlb.insert(1, Pte::new(10, 0));
        tlb.insert(2, Pte::new(20, Pte::GLOBAL));
        tlb.flush();
        assert_eq!(tlb.lookup(1), None);
        assert_eq!(tlb.lookup(2).unwrap().frame(), 20);
        tlb.flush_all();
        assert_eq!(tlb.lookup(2), None);
    }

    #[test]
    fn eviction_wraps_around() {
        let mut tlb = Tlb::new();
        for i in 0..(TLB_ENTRIES as u64 + 8) {
            tlb.insert(i, Pte::new(i as u32, 0));
        }
        // The earliest entries were evicted; the latest survive.
        assert_eq!(tlb.lookup(0), None);
        assert!(tlb.lookup(TLB_ENTRIES as u64 + 7).is_some());
    }

    #[test]
    fn stats_count() {
        let mut tlb = Tlb::new();
        tlb.insert(9, Pte::new(1, 0));
        tlb.lookup(9);
        tlb.lookup(10);
        tlb.flush();
        let (h, m, f) = tlb.stats();
        assert_eq!((h, m, f), (1, 1, 1));
    }
}
