//! Lazy frame-validation pending set — the hardware half of Mercury's
//! fault-driven attach.
//!
//! Under `TrackingStrategy::LazyValidate` (and as dirty-set overflow
//! protection for `DirtyRecompute`) the attach path admits the guest
//! after synchronously revalidating only the *kernel-critical* dirty
//! frames, and enqueues the remaining dirty frames here.  The MMU then
//! consults the set on every TLB-miss walk: the first guest touch of a
//! deferred frame takes a validation fault that the resident VMM
//! handles below the guest — the frame is revalidated, charged
//! [`costs::LAZY_VALIDATE_FAULT`] + [`costs::PGINFO_RECOMPUTE_PER_FRAME`]
//! cycles, and removed from the set — exactly the demand-paging shape
//! of §5.1.2's recompute, spread over the frames the guest actually
//! uses.
//!
//! Registration mirrors the EPT hook: the switch path installs the set
//! on each CPU ([`crate::Cpu::set_lazy_set`]), which flushes the TLB so
//! no cached translation can bypass the first-touch check, and removes
//! it at detach after draining the stragglers.  Stragglers that no
//! guest touch ever reaches are drained by the background scrubber from
//! *donated idle cycles* — and because donation budgets are ordinary
//! priced work, idle spans that the event clock fast-forwards
//! ([`crate::evclock`]) charge the same revalidation cycles they would
//! charge if walked.
//!
//! ```
//! use simx86::lazy::LazySet;
//! use simx86::{costs, Cpu, FrameNum};
//! use std::sync::Arc;
//!
//! let cpu = Arc::new(Cpu::new(0));
//! let set = Arc::new(LazySet::new([FrameNum(7), FrameNum(9)]));
//! cpu.set_lazy_set(Some(Arc::clone(&set)));
//!
//! // First touch of a deferred frame: validation fault taken and
//! // drained transparently, cycles charged, frame leaves the set.
//! let before = cpu.cycles();
//! set.check(&cpu, FrameNum(7)).unwrap();
//! assert_eq!(
//!     cpu.cycles() - before,
//!     costs::LAZY_VALIDATE_FAULT + costs::PGINFO_RECOMPUTE_PER_FRAME
//! );
//! assert_eq!(set.remaining(), 1);
//!
//! // Second touch is free: the frame is already validated.
//! let before = cpu.cycles();
//! set.check(&cpu, FrameNum(7)).unwrap();
//! assert_eq!(cpu.cycles(), before);
//! cpu.set_lazy_set(None);
//! ```

use crate::costs;
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::mem::FrameNum;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Frames whose page_info revalidation was deferred by a lazy attach,
/// awaiting their first guest touch.
///
/// The set is shared by every CPU of the machine (one admission window
/// per attach), so membership is behind a mutex and the statistics are
/// atomics — two CPUs faulting on different deferred frames drain them
/// independently.
pub struct LazySet {
    pending: Mutex<BTreeSet<u32>>,
    sealed: AtomicBool,
    validated: AtomicU64,
    cycles_charged: AtomicU64,
}

impl LazySet {
    /// A new pending set over `frames`.
    pub fn new(frames: impl IntoIterator<Item = FrameNum>) -> LazySet {
        LazySet {
            // volint::allow(SWITCH-ALLOC): one bounded (≤ pool size) set per admission window, built once at lazy attach
            pending: Mutex::new(frames.into_iter().map(|f| f.0).collect()),
            sealed: AtomicBool::new(false),
            validated: AtomicU64::new(0),
            cycles_charged: AtomicU64::new(0),
        }
    }

    /// The MMU's first-touch check, called on every TLB-miss walk while
    /// the set is registered.
    ///
    /// A frame not in the set costs one lookup and nothing else.  A
    /// pending frame takes the validation fault: the VMM's fixup charge
    /// ([`costs::LAZY_VALIDATE_FAULT`] +
    /// [`costs::PGINFO_RECOMPUTE_PER_FRAME`]) lands on `cpu` and the
    /// frame leaves the set.  A pending frame touched after [`seal`]
    /// (admission window closed with the deferral still outstanding) is
    /// the invariant breach [`Fault::ValidationPending`] reports.
    ///
    /// [`seal`]: LazySet::seal
    pub fn check(&self, cpu: &Cpu, frame: FrameNum) -> Result<(), Fault> {
        {
            let mut pending = self.pending.lock();
            if !pending.contains(&frame.0) {
                return Ok(());
            }
            if self.sealed.load(Ordering::Acquire) {
                return Err(Fault::ValidationPending { frame: frame.0 });
            }
            pending.remove(&frame.0);
        }
        let cost = costs::LAZY_VALIDATE_FAULT + costs::PGINFO_RECOMPUTE_PER_FRAME;
        cpu.tick(cost);
        self.validated.fetch_add(1, Ordering::Relaxed);
        self.cycles_charged.fetch_add(cost, Ordering::Relaxed);
        merctrace::counter!(cpu.id, "simx86.lazy.validate", 1, cpu.cycles());
        Ok(())
    }

    /// Is `frame` still awaiting validation?
    pub fn contains(&self, frame: FrameNum) -> bool {
        self.pending.lock().contains(&frame.0)
    }

    /// Number of frames still pending.
    pub fn remaining(&self) -> usize {
        self.pending.lock().len()
    }

    /// Close the admission window: from now on a touch of a still-
    /// pending frame is a hard [`Fault::ValidationPending`] instead of
    /// a transparent fixup.  The switch path drains the set *before*
    /// sealing; sealing exists so a missed drain fails loudly.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// Has the admission window been closed?
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// Remove and return every still-pending frame (the detach path's
    /// bulk drain; the frames are revalidated under the detach clear).
    pub fn drain(&self) -> Vec<FrameNum> {
        std::mem::take(&mut *self.pending.lock())
            .into_iter()
            .map(FrameNum)
            .collect()
    }

    /// Frames validated through the fault path so far.
    pub fn validated(&self) -> u64 {
        self.validated.load(Ordering::Relaxed)
    }

    /// Total cycles charged through the fault path so far.
    pub fn cycles_charged(&self) -> u64 {
        self.cycles_charged.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for LazySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazySet")
            .field("remaining", &self.remaining())
            .field("sealed", &self.is_sealed())
            .field("validated", &self.validated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_touch_charges_and_drains() {
        let cpu = Cpu::new(0);
        let set = LazySet::new([FrameNum(3), FrameNum(5)]);
        assert_eq!(set.remaining(), 2);

        let c0 = cpu.cycles();
        set.check(&cpu, FrameNum(3)).unwrap();
        assert_eq!(
            cpu.cycles() - c0,
            costs::LAZY_VALIDATE_FAULT + costs::PGINFO_RECOMPUTE_PER_FRAME
        );
        assert_eq!(set.remaining(), 1);
        assert_eq!(set.validated(), 1);

        // Non-pending frames are free.
        let c1 = cpu.cycles();
        set.check(&cpu, FrameNum(3)).unwrap();
        set.check(&cpu, FrameNum(42)).unwrap();
        assert_eq!(cpu.cycles(), c1);
    }

    #[test]
    fn sealed_set_hard_faults_on_pending_touch() {
        let cpu = Cpu::new(0);
        let set = LazySet::new([FrameNum(8)]);
        set.seal();
        let err = set.check(&cpu, FrameNum(8)).unwrap_err();
        assert_eq!(err, Fault::ValidationPending { frame: 8 });
        // Non-pending frames stay fine even when sealed.
        set.check(&cpu, FrameNum(9)).unwrap();
    }

    #[test]
    fn drain_empties_the_set() {
        let set = LazySet::new([FrameNum(1), FrameNum(2), FrameNum(3)]);
        let mut drained = set.drain();
        drained.sort();
        assert_eq!(drained, vec![FrameNum(1), FrameNum(2), FrameNum(3)]);
        assert_eq!(set.remaining(), 0);
    }

    #[test]
    fn registration_on_cpu_flushes_tlb() {
        let cpu = Arc::new(Cpu::new(0));
        let set = Arc::new(LazySet::new([FrameNum(1)]));
        cpu.set_lazy_set(Some(Arc::clone(&set)));
        assert!(cpu.active_lazy_set().is_some());
        cpu.set_lazy_set(None);
        assert!(cpu.active_lazy_set().is_none());
    }
}
