//! # simx86 — a simulated x86-like machine
//!
//! This crate provides the hardware substrate that the Mercury
//! self-virtualization stack runs on.  The real Mercury prototype is a
//! patched Linux kernel on Xen on x86 Xeons; since a ring-deprivileged x86
//! kernel cannot run inside a Rust test process, we simulate the parts of
//! the architecture that virtualization actually manipulates:
//!
//! * **CPUs** with privilege levels (PL0/PL1/PL3), control registers
//!   (CR0/CR3/CR4), descriptor-table registers (IDTR as a swappable gate
//!   table), an interrupt-enable flag and a cycle counter (`RDTSC`).
//! * **Physical memory** as an array of 4 KiB frames, with a frame
//!   allocator.  Page tables are *real data in simulated frames* — the MMU
//!   walks them word by word, so anything that corrupts a page table
//!   faults just as it would on hardware.
//! * A two-level **MMU** (9 + 9 + 12 bit split over a 1 GiB virtual
//!   address space) with a per-CPU TLB.
//! * An **interrupt controller** with per-CPU pending vectors and
//!   inter-processor interrupts (IPIs) — the mechanism Mercury's SMP mode
//!   switch protocol (§5.4 of the paper) is built on.
//! * **Devices**: a programmable timer, a sector-addressed disk, a NIC
//!   attached to a pluggable wire, and a console.
//! * A **cycle cost model** ([`costs`]) calibrated as a 3 GHz CPU
//!   (3000 cycles = 1 µs) so that simulated latencies land in the same
//!   regime as the paper's measurements.
//! * An **event clock** ([`evclock`]) — the second level of simulated
//!   time: a deterministic global queue of future deadlines that lets
//!   idle spans fast-forward to the next scheduled event without
//!   changing accounting.  The per-CPU cycle counters remain the source
//!   of truth (DESIGN.md §14).
//!
//! Privilege is enforced: every privileged operation checks the CPU's
//! current privilege level and returns [`Fault::GeneralProtection`] when
//! executed de-privileged.  A hypervisor claims PL0 and installs its own
//! gate table; the guest kernel then runs at PL1 and must either use
//! hypercalls (paravirtualization) or trap.
//!
//! With the `fault` feature (off by default, an alias for
//! `faultgen/enabled`) the memory, interrupt and device paths compile in
//! faultgen's injection hooks: memory bit-flips on word reads, a wedged
//! disk in the pump, spurious/stuck interrupt lines at service points,
//! and swallowed gate dispatches for corrupted descriptors.  Without the
//! feature every hook expands to a constant and the hardware model is
//! cycle-identical to this crate built before the hooks existed
//! (`tests/faultgen_overhead.rs` in the workspace root pins this).

#![warn(missing_docs)]

pub mod costs;
pub mod cpu;
pub mod devices;
pub mod evclock;
pub mod fault;
pub mod intc;
pub mod lazy;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod paging;
pub mod privops;
pub mod tlb;
pub mod vmx;

pub use cpu::{Cpu, Gate, IdtTable, InterruptSink, PrivLevel, TrapFrame};
pub use evclock::{EvClock, Event, EventId, EventKind};
pub use fault::{AccessKind, Fault};
pub use intc::InterruptController;
pub use lazy::LazySet;
pub use machine::{FrameAllocator, Machine, MachineConfig};
pub use mem::{FrameNum, PhysAddr, PhysMemory};
pub use mmu::Mmu;
pub use paging::{Pte, VirtAddr, PAGE_SIZE};
pub use vmx::Ept;
