//! Hardware virtualization assist: VT-x-style non-root execution and an
//! EPT-like second-level translation filter.
//!
//! The paper's §8 names this as Mercury's main future work: "current
//! CPU virtualization such as VT-x enables the encapsulation of
//! virtualization sensitive data into a centralized structure (e.g.,
//! VMCS or VMCB).  This could make the mode switch between the native
//! mode and virtualized mode much easier to implement.  Further, the
//! nested page table or extended page table could ease the tracking of
//! the states of each page."
//!
//! The model captures exactly those two effects:
//!
//! * **Non-root mode** ([`Cpu::set_non_root`](crate::cpu::Cpu::set_non_root)): the guest kernel keeps
//!   running at PL0 — no de-privileging, so no segment-selector fixups
//!   and no read-only page tables.  Selected events (interrupts, device
//!   doorbells) cost a VM exit + re-entry instead.
//! * **EPT** ([`Ept`]): a second-level *permission filter* over machine
//!   frames, built once at warm-up.  The guest writes its own page
//!   tables freely; isolation holds because every translation is
//!   checked against the EPT, and a violation faults to the VMM instead
//!   of reaching foreign memory.  No per-PTE type/count accounting —
//!   which is precisely why the hardware-assisted attach needs no
//!   `page_info` recompute.

use crate::fault::Fault;
use crate::mem::FrameNum;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An EPT: which machine frames the guest may reach, plus hit counters.
pub struct Ept {
    allowed: RwLock<Vec<bool>>,
    violations: AtomicU64,
}

impl Ept {
    /// An EPT over a machine with `num_frames` frames, initially
    /// allowing nothing.
    pub fn new(num_frames: usize) -> Arc<Ept> {
        Arc::new(Ept {
            allowed: RwLock::new(vec![false; num_frames]),
            violations: AtomicU64::new(0),
        })
    }

    /// Permit guest access to `frame`.
    pub fn allow(&self, frame: FrameNum) {
        self.allowed.write()[frame.0 as usize] = true;
    }

    /// Permit a whole set (warm-up bulk build).
    pub fn allow_all(&self, frames: &[FrameNum]) {
        let mut a = self.allowed.write();
        for f in frames {
            a[f.0 as usize] = true;
        }
    }

    /// Revoke access to `frame`.
    pub fn revoke(&self, frame: FrameNum) {
        self.allowed.write()[frame.0 as usize] = false;
    }

    /// Check a final translation.  Counts violations.
    pub fn check(&self, frame: FrameNum) -> Result<(), Fault> {
        if self
            .allowed
            .read()
            .get(frame.0 as usize)
            .copied()
            .unwrap_or(false)
        {
            Ok(())
        } else {
            self.violations.fetch_add(1, Ordering::Relaxed);
            Err(Fault::EptViolation { frame: frame.0 })
        }
    }

    /// Frames currently permitted.
    pub fn allowed_count(&self) -> usize {
        self.allowed.read().iter().filter(|&&b| b).count()
    }

    /// EPT violations observed.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_check_revoke() {
        let ept = Ept::new(8);
        assert!(ept.check(FrameNum(3)).is_err());
        assert_eq!(ept.violations(), 1);
        ept.allow(FrameNum(3));
        assert!(ept.check(FrameNum(3)).is_ok());
        ept.revoke(FrameNum(3));
        assert!(ept.check(FrameNum(3)).is_err());
        assert_eq!(ept.violations(), 2);
    }

    #[test]
    fn bulk_allow() {
        let ept = Ept::new(8);
        ept.allow_all(&[FrameNum(1), FrameNum(2), FrameNum(5)]);
        assert_eq!(ept.allowed_count(), 3);
        assert!(ept.check(FrameNum(5)).is_ok());
        assert!(ept.check(FrameNum(4)).is_err());
    }

    #[test]
    fn out_of_range_is_violation() {
        let ept = Ept::new(2);
        assert!(ept.check(FrameNum(99)).is_err());
    }
}
