//! The simulated CPU: privilege levels, control registers, descriptor
//! tables, interrupt dispatch and the cycle counter.
//!
//! Everything cross-thread-visible is atomic or lock-protected so that an
//! SMP machine can be driven by one host thread per virtual CPU (the
//! §5.4 IPI rendezvous protocol runs on real atomics).

use crate::costs;
use crate::fault::Fault;
use crate::tlb::Tlb;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Number of interrupt vectors in a gate table.
pub const N_VECTORS: usize = 64;

/// Well-known vector assignments.
pub mod vectors {
    /// Page fault (synchronous).
    pub const PAGE_FAULT: u8 = 14;
    /// General protection fault (synchronous).
    pub const GP_FAULT: u8 = 13;
    /// Machine check (failure injection).
    pub const MACHINE_CHECK: u8 = 18;
    /// Periodic timer.
    pub const TIMER: u8 = 32;
    /// Disk completion.
    pub const DISK: u8 = 33;
    /// NIC receive.
    pub const NIC: u8 = 34;
    /// Cross-CPU reschedule / function-call IPI.
    pub const IPI_CALL: u8 = 48;
    /// Mercury: attach the pre-cached VMM (switch to virtual mode).
    pub const SELF_VIRT_ATTACH: u8 = 50;
    /// Mercury: detach the VMM (switch back to native mode).
    pub const SELF_VIRT_DETACH: u8 = 51;
    /// Mercury: rendezvous IPI used by the SMP switch protocol.
    pub const SELF_VIRT_RENDEZVOUS: u8 = 52;
    /// Mercury: live-update the running VMM to a pre-cached successor.
    pub const SELF_VIRT_UPDATE: u8 = 53;
    /// Event-channel upcall (xenon → guest virtual IRQ).
    pub const EVTCHN_UPCALL: u8 = 54;
}

/// Hardware privilege level.  Lower is more privileged.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum PrivLevel {
    /// Most privileged: the bare-metal kernel, or the VMM.
    Pl0 = 0,
    /// De-privileged guest kernel (virtual mode).
    Pl1 = 1,
    /// User mode.
    Pl3 = 3,
}

impl PrivLevel {
    /// Decode from the numeric ring value.
    pub fn from_u8(v: u8) -> PrivLevel {
        match v {
            0 => PrivLevel::Pl0,
            1 => PrivLevel::Pl1,
            _ => PrivLevel::Pl3,
        }
    }
}

/// A segment selector as saved in trap frames: descriptor index plus the
/// requested privilege level (RPL) — the piece of state §5.1.2 has to fix
/// up on kernel stacks during a mode switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Selector {
    /// Descriptor table index (we only model a handful of descriptors).
    pub index: u16,
    /// Requested privilege level encoded in the selector's low bits.
    pub rpl: PrivLevel,
}

/// Descriptor indices used by the kernel's flat segmentation model.
pub mod selectors {
    /// Kernel code segment descriptor index.
    pub const KERNEL_CS: u16 = 1;
    /// Kernel stack/data segment descriptor index.
    pub const KERNEL_SS: u16 = 2;
    /// User code segment descriptor index.
    pub const USER_CS: u16 = 3;
    /// User stack/data segment descriptor index.
    pub const USER_SS: u16 = 4;
}

/// A (deliberately tiny) global descriptor table: what matters for
/// Mercury is the *privilege level of the kernel segments*, which is 0 in
/// native mode and 1 in virtual mode (§5.1.2 item 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Gdt {
    /// DPL of the kernel code/stack descriptors.
    pub kernel_dpl: PrivLevel,
}

impl Gdt {
    /// The GDT a bare-metal kernel loads.
    pub const NATIVE: Gdt = Gdt {
        kernel_dpl: PrivLevel::Pl0,
    };
    /// The GDT the hypervisor installs for a de-privileged guest.
    pub const VIRTUALIZED: Gdt = Gdt {
        kernel_dpl: PrivLevel::Pl1,
    };

    /// Check a selector against this table, as the hardware does when a
    /// saved selector is popped on the return path.  A selector whose RPL
    /// disagrees with the descriptor's DPL raises `#GP` — exactly the
    /// fault §5.1.2 describes for stale stack-cached selectors.
    pub fn check_selector(&self, sel: Selector) -> Result<(), Fault> {
        let expect = match sel.index {
            selectors::KERNEL_CS | selectors::KERNEL_SS => self.kernel_dpl,
            _ => PrivLevel::Pl3,
        };
        if sel.rpl == expect {
            Ok(())
        } else {
            Err(Fault::GeneralProtection {
                what: "segment selector RPL does not match descriptor DPL",
            })
        }
    }

    /// The kernel code selector under this table.
    pub fn kernel_cs(&self) -> Selector {
        Selector {
            index: selectors::KERNEL_CS,
            rpl: self.kernel_dpl,
        }
    }

    /// The kernel stack selector under this table.
    pub fn kernel_ss(&self) -> Selector {
        Selector {
            index: selectors::KERNEL_SS,
            rpl: self.kernel_dpl,
        }
    }
}

/// The stack image pushed by the hardware when an interrupt or trap is
/// taken.  Handlers may *edit* `return_pl` — that is how Mercury commits
/// the privilege-level change on the interrupt return path (§5.1.3:
/// "accomplished by modifying the privileged level in the return stack of
/// the interrupt").
#[derive(Clone, Copy, Debug)]
pub struct TrapFrame {
    /// Vector being delivered.
    pub vector: u8,
    /// Hardware error code (fault-dependent).
    pub error: u64,
    /// Privilege level the CPU will return to on `iret`.
    pub return_pl: PrivLevel,
    /// Saved code-segment selector.
    pub cs: Selector,
    /// Saved stack-segment selector.
    pub ss: Selector,
    /// Interrupt-enable flag to restore on `iret`.
    pub saved_if: bool,
}

/// An installed interrupt/trap handler.
///
/// Sinks are invoked on the thread driving the CPU, at PL0, with
/// interrupts disabled — the "interrupt context" §5.1.3 requires for the
/// state-reload functions.
pub trait InterruptSink: Send + Sync {
    /// Handle the trap described by `frame` on `cpu`.
    fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame);
}

/// One IDT slot.
#[derive(Clone)]
pub struct Gate {
    /// The handler.
    pub sink: Arc<dyn InterruptSink>,
}

/// A gate table (IDT).  `lidt` swaps the whole table atomically, which is
/// how the hypervisor takes over interrupt delivery on attach and hands
/// it back on detach.
pub struct IdtTable {
    gates: Vec<Option<Gate>>,
    /// Human-readable owner tag, for diagnostics ("nimbus", "xenon").
    pub owner: &'static str,
}

impl IdtTable {
    /// An empty table owned by `owner`.
    pub fn new(owner: &'static str) -> Self {
        IdtTable {
            gates: vec![None; N_VECTORS],
            owner,
        }
    }

    /// Install a handler for `vector`.
    pub fn set_gate(&mut self, vector: u8, sink: Arc<dyn InterruptSink>) {
        self.gates[vector as usize] = Some(Gate { sink });
    }

    /// Look up the gate for `vector`.
    pub fn gate(&self, vector: u8) -> Option<&Gate> {
        self.gates.get(vector as usize).and_then(|g| g.as_ref())
    }
}

/// A simulated CPU core.
pub struct Cpu {
    /// Core id (APIC id).
    pub id: usize,
    cycles: AtomicU64,
    pl: AtomicU8,
    cr3: AtomicU64,
    if_flag: AtomicBool,
    pending: AtomicU64,
    in_service: AtomicBool,
    halted: AtomicBool,
    idt: RwLock<Option<Arc<IdtTable>>>,
    gdt: RwLock<Gdt>,
    non_root: AtomicBool,
    ept: RwLock<Option<Arc<crate::vmx::Ept>>>,
    lazy: RwLock<Option<Arc<crate::lazy::LazySet>>>,
    /// The TLB; the MMU locks it during translations.
    pub(crate) tlb: Mutex<Tlb>,
}

impl Cpu {
    /// A fresh CPU at PL0 with interrupts disabled and no IDT.
    pub fn new(id: usize) -> Cpu {
        Cpu {
            id,
            cycles: AtomicU64::new(0),
            pl: AtomicU8::new(PrivLevel::Pl0 as u8),
            cr3: AtomicU64::new(0),
            if_flag: AtomicBool::new(false),
            pending: AtomicU64::new(0),
            in_service: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            idt: RwLock::new(None),
            gdt: RwLock::new(Gdt::NATIVE),
            non_root: AtomicBool::new(false),
            ept: RwLock::new(None),
            lazy: RwLock::new(None),
            tlb: Mutex::new(Tlb::new()),
        }
    }

    // -- time ---------------------------------------------------------

    /// Advance this core's clock by `n` cycles.
    ///
    /// This is a pure atomic addition, which is what makes the event
    /// clock's fast-forward accounting-neutral: one tick of `N` cycles
    /// leaves the counter exactly where `N / Q` ticks of `Q` would
    /// (see [`crate::evclock`]).  The counter is the **only** source of
    /// simulated time — the event clock schedules deadlines against it
    /// but never stores time of its own.
    #[inline]
    pub fn tick(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Current cycle count.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// `RDTSC`: read the time-stamp counter (readable at any privilege,
    /// like the paper's measurement methodology in §7.4).
    #[inline]
    pub fn rdtsc(&self) -> u64 {
        self.tick(20);
        self.cycles()
    }

    // -- privilege ----------------------------------------------------

    /// Current privilege level.
    #[inline]
    pub fn pl(&self) -> PrivLevel {
        PrivLevel::from_u8(self.pl.load(Ordering::Acquire))
    }

    /// Hardware-internal privilege update.  Only trap dispatch, `iret`
    /// and the state-reload path may call this; ordinary code changes
    /// privilege exclusively through gates.
    #[inline]
    #[doc(alias = "volint-privileged")]
    pub fn set_pl_raw(&self, pl: PrivLevel) {
        self.pl.store(pl as u8, Ordering::Release);
    }

    /// Fail with `#GP` unless running at PL0.
    #[inline]
    pub fn require_pl0(&self, what: &'static str) -> Result<(), Fault> {
        if self.pl() == PrivLevel::Pl0 {
            Ok(())
        } else {
            Err(Fault::GeneralProtection { what })
        }
    }

    // -- control registers -------------------------------------------

    /// Load CR3 with the page-directory frame number.  Privileged;
    /// flushes the TLB (non-global entries) and charges the reload cost.
    #[doc(alias = "volint-privileged")]
    pub fn write_cr3(&self, pgd_frame: u32) -> Result<(), Fault> {
        self.require_pl0("mov cr3")?;
        self.tick(costs::CR3_LOAD_NATIVE);
        self.cr3.store(pgd_frame as u64, Ordering::Release);
        self.flush_tlb_local();
        merctrace::counter!(self.id, "simx86.privop.write_cr3", 1, self.cycles());
        Ok(())
    }

    /// Read CR3.  Privileged, as on x86.
    #[doc(alias = "volint-privileged")]
    pub fn read_cr3(&self) -> Result<u32, Fault> {
        self.require_pl0("mov from cr3")?;
        Ok(self.cr3.load(Ordering::Acquire) as u32)
    }

    /// The MMU's view of CR3 (hardware-internal, no privilege check —
    /// the MMU *is* the hardware; also used by PL0 reload paths).
    #[inline]
    pub fn cr3_raw(&self) -> u32 {
        self.cr3.load(Ordering::Acquire) as u32
    }

    /// Hardware-internal CR3 restore used by state reloading; does not
    /// charge the privileged-instruction path.
    #[doc(alias = "volint-privileged")]
    pub fn set_cr3_raw(&self, pgd_frame: u32) {
        self.cr3.store(pgd_frame as u64, Ordering::Release);
        self.flush_tlb_local();
    }

    /// Flush this CPU's entire TLB (privilege enforced by callers via
    /// `invlpg`/CR3 paths; exposed for the paravirt layer).
    #[doc(alias = "volint-privileged")]
    pub fn flush_tlb_local(&self) {
        self.tick(costs::TLB_FLUSH);
        self.tlb.lock().flush();
        merctrace::counter!(self.id, "simx86.tlb.flush", 1, self.cycles());
    }

    /// Invalidate a single page translation.
    #[doc(alias = "volint-privileged")]
    pub fn invlpg(&self, vpn: u64) {
        self.tick(4);
        self.tlb.lock().invalidate(vpn);
        merctrace::counter!(self.id, "simx86.tlb.invlpg", 1, self.cycles());
    }

    // -- interrupt flag -----------------------------------------------

    /// `cli`: disable interrupts.  Privileged.
    #[doc(alias = "volint-privileged")]
    pub fn cli(&self) -> Result<(), Fault> {
        self.require_pl0("cli")?;
        self.if_flag.store(false, Ordering::Release);
        Ok(())
    }

    /// `sti`: enable interrupts.  Privileged.
    #[doc(alias = "volint-privileged")]
    pub fn sti(&self) -> Result<(), Fault> {
        self.require_pl0("sti")?;
        self.if_flag.store(true, Ordering::Release);
        Ok(())
    }

    /// Hardware-internal IF manipulation for trap entry/exit.
    #[doc(alias = "volint-privileged")]
    pub fn set_if_raw(&self, enabled: bool) {
        self.if_flag.store(enabled, Ordering::Release);
    }

    /// Are interrupts enabled?
    #[inline]
    pub fn interrupts_enabled(&self) -> bool {
        self.if_flag.load(Ordering::Acquire)
    }

    // -- descriptor tables --------------------------------------------

    /// `lidt`: install a gate table.  Privileged.
    #[doc(alias = "volint-privileged")]
    pub fn lidt(&self, table: Arc<IdtTable>) -> Result<(), Fault> {
        self.require_pl0("lidt")?;
        self.tick(60);
        *self.idt.write() = Some(table);
        merctrace::counter!(self.id, "simx86.privop.lidt", 1, self.cycles());
        Ok(())
    }

    /// Hardware-internal IDT swap for the state-reload path.
    #[doc(alias = "volint-privileged")]
    pub fn set_idt_raw(&self, table: Arc<IdtTable>) {
        *self.idt.write() = Some(table);
    }

    /// The currently loaded gate table, if any.
    pub fn current_idt(&self) -> Option<Arc<IdtTable>> {
        self.idt.read().clone()
    }

    /// `lgdt`: install a descriptor table.  Privileged.
    #[doc(alias = "volint-privileged")]
    pub fn lgdt(&self, gdt: Gdt) -> Result<(), Fault> {
        self.require_pl0("lgdt")?;
        self.tick(60);
        *self.gdt.write() = gdt;
        merctrace::counter!(self.id, "simx86.privop.lgdt", 1, self.cycles());
        Ok(())
    }

    /// Hardware-internal GDT swap for the state-reload path.
    #[doc(alias = "volint-privileged")]
    pub fn set_gdt_raw(&self, gdt: Gdt) {
        *self.gdt.write() = gdt;
    }

    /// The currently loaded descriptor table.
    pub fn current_gdt(&self) -> Gdt {
        *self.gdt.read()
    }

    // -- hardware virtualization assist (§8 extension) -------------------

    /// Enter or leave VT-x-style non-root execution with the given EPT.
    /// In non-root mode the kernel keeps PL0 (no de-privileging); the
    /// EPT filters every translation.
    #[doc(alias = "volint-privileged")]
    pub fn set_non_root(&self, ept: Option<Arc<crate::vmx::Ept>>) {
        self.non_root.store(ept.is_some(), Ordering::Release);
        *self.ept.write() = ept;
        // Address-space view changed: flush.
        self.flush_tlb_local();
    }

    /// Is the CPU executing in non-root (guest) mode?
    pub fn in_non_root(&self) -> bool {
        self.non_root.load(Ordering::Acquire)
    }

    /// The active EPT, if any (the MMU consults this on every walk).
    pub fn active_ept(&self) -> Option<Arc<crate::vmx::Ept>> {
        self.ept.read().clone()
    }

    // -- lazy frame validation (Mercury fault-driven attach) -------------

    /// Install or remove the lazy-validation pending set the MMU checks
    /// on every TLB-miss walk (Mercury's fault-driven attach).  Like
    /// [`Cpu::set_non_root`], changing the set flushes the TLB so no
    /// cached translation can bypass a deferred frame's first-touch
    /// validation fault.
    #[doc(alias = "volint-privileged")]
    pub fn set_lazy_set(&self, set: Option<Arc<crate::lazy::LazySet>>) {
        *self.lazy.write() = set;
        self.flush_tlb_local();
    }

    /// The registered lazy-validation pending set, if any.
    pub fn active_lazy_set(&self) -> Option<Arc<crate::lazy::LazySet>> {
        self.lazy.read().clone()
    }

    // -- halting --------------------------------------------------------

    /// `hlt`: privileged; parks the CPU until the next interrupt.
    ///
    /// A halted CPU is the canonical idle span: instead of polling for
    /// the wake-up interrupt quantum by quantum, callers fast-forward
    /// the halt with [`crate::Machine::idle_until`], which charges the
    /// whole wait in one tick and still fires every timer deadline it
    /// skips over at the exact cycle it was programmed for.
    pub fn hlt(&self) -> Result<(), Fault> {
        self.require_pl0("hlt")?;
        self.halted.store(true, Ordering::Release);
        Ok(())
    }

    /// Is the CPU halted?
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }

    // -- interrupt delivery ---------------------------------------------

    /// Mark `vector` pending on this CPU (called by the interrupt
    /// controller and devices, possibly from other threads).
    pub fn raise(&self, vector: u8) {
        debug_assert!((vector as usize) < N_VECTORS);
        self.pending.fetch_or(1 << vector, Ordering::AcqRel);
        self.halted.store(false, Ordering::Release);
    }

    /// Is `vector` pending?
    pub fn is_pending(&self, vector: u8) -> bool {
        self.pending.load(Ordering::Acquire) & (1 << vector) != 0
    }

    /// Any vector pending?
    pub fn has_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire) != 0
    }

    /// Service pending interrupts, lowest vector first, while interrupts
    /// are enabled.  Returns the number of interrupts dispatched.
    ///
    /// This is the simulation's stand-in for "interrupts are recognized
    /// at instruction boundaries": the kernel calls it at syscall
    /// entry/exit, in its idle loop, and inside long-running operations.
    pub fn service_pending(self: &Arc<Self>) -> usize {
        let mut n = 0;
        // Don't recurse into interrupt servicing from inside a handler.
        if self.in_service.swap(true, Ordering::AcqRel) {
            return 0;
        }
        // Fault injection (compiled out by default): a due spurious
        // interrupt fires once; a stuck line re-asserts its vector at
        // every service point until the fault is resolved.
        if let Some(vector) = faultgen::irq_site!(self.id, self.cycles()) {
            self.raise(vector);
        }
        while self.interrupts_enabled() {
            let bits = self.pending.load(Ordering::Acquire);
            if bits == 0 {
                break;
            }
            let vector = bits.trailing_zeros() as u8;
            self.pending.fetch_and(!(1 << vector), Ordering::AcqRel);
            self.dispatch(vector, 0);
            n += 1;
        }
        self.in_service.store(false, Ordering::Release);
        n
    }

    /// Deliver a synchronous exception (page fault, #GP).  Unlike
    /// asynchronous interrupts, exceptions fire regardless of IF.
    ///
    /// Returns the fault back to the caller if no handler is installed
    /// (double fault).
    pub fn deliver_exception(self: &Arc<Self>, vector: u8, error: u64) -> Result<(), Fault> {
        let idt = self.current_idt();
        match idt.as_ref().and_then(|t| t.gate(vector)) {
            Some(_) => {
                merctrace::counter!(self.id, "simx86.fault", 1, self.cycles());
                merctrace::hist!(self.id, "simx86.fault.vector", vector, self.cycles());
                self.dispatch(vector, error);
                Ok(())
            }
            None => Err(Fault::DoubleFault),
        }
    }

    /// Core gate dispatch: push a trap frame, raise to PL0, run the
    /// handler, and `iret` to whatever privilege level the handler left
    /// in the frame.
    fn dispatch(self: &Arc<Self>, vector: u8, error: u64) {
        // Fault injection (compiled out by default): a corrupted
        // descriptor makes the gate unreadable — the dispatch is
        // swallowed until the descriptor is rewritten and the fault
        // resolved, exactly like a latent IDT corruption on hardware.
        if faultgen::gate_site!(self.id, self.cycles(), vector) {
            return;
        }
        let Some(idt) = self.current_idt() else {
            return;
        };
        let Some(gate) = idt.gate(vector) else {
            return;
        };
        let gdt = self.current_gdt();
        let prev_pl = self.pl();
        let prev_if = self.interrupts_enabled();
        let mut frame = TrapFrame {
            vector,
            error,
            return_pl: prev_pl,
            cs: Selector {
                index: selectors::KERNEL_CS,
                rpl: if prev_pl == PrivLevel::Pl3 {
                    PrivLevel::Pl3
                } else {
                    gdt.kernel_dpl
                },
            },
            ss: Selector {
                index: selectors::KERNEL_SS,
                rpl: if prev_pl == PrivLevel::Pl3 {
                    PrivLevel::Pl3
                } else {
                    gdt.kernel_dpl
                },
            },
            saved_if: prev_if,
        };
        self.tick(costs::IRQ_DISPATCH);
        merctrace::counter!(self.id, "simx86.irq.dispatch", 1, self.cycles());
        // In non-root mode an external interrupt forces a VM exit; the
        // VMM re-injects it and re-enters the guest.
        if self.in_non_root() {
            self.tick(costs::VMEXIT + costs::VMENTRY);
            merctrace::counter!(self.id, "simx86.vmexit.irq", 1, self.cycles());
        }
        // Interrupt gates disable interrupts and enter at PL0.
        self.set_if_raw(false);
        self.set_pl_raw(PrivLevel::Pl0);
        let sink = Arc::clone(&gate.sink);
        sink.handle(self, &mut frame);
        // `iret`: restore (possibly handler-edited) privilege and IF.
        self.set_pl_raw(frame.return_pl);
        self.set_if_raw(frame.saved_if);
        self.tick(costs::TRAP_EXIT_NATIVE);
    }
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("id", &self.id)
            .field("cycles", &self.cycles())
            .field("pl", &self.pl())
            .field("if", &self.interrupts_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountSink(AtomicUsize);
    impl InterruptSink for CountSink {
        fn handle(&self, _cpu: &Arc<Cpu>, _frame: &mut TrapFrame) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn privilege_enforced_on_privileged_ops() {
        let cpu = Cpu::new(0);
        cpu.set_pl_raw(PrivLevel::Pl1);
        assert!(matches!(
            cpu.write_cr3(1),
            Err(Fault::GeneralProtection { .. })
        ));
        assert!(cpu.cli().is_err());
        assert!(cpu.sti().is_err());
        assert!(cpu.hlt().is_err());
        assert!(cpu.read_cr3().is_err());
        cpu.set_pl_raw(PrivLevel::Pl0);
        assert!(cpu.write_cr3(1).is_ok());
        assert_eq!(cpu.read_cr3().unwrap(), 1);
    }

    #[test]
    fn pending_bits_and_service() {
        let cpu = Arc::new(Cpu::new(0));
        let sink = Arc::new(CountSink(AtomicUsize::new(0)));
        let mut idt = IdtTable::new("test");
        idt.set_gate(vectors::TIMER, sink.clone());
        cpu.lidt(Arc::new(idt)).unwrap();

        cpu.raise(vectors::TIMER);
        assert!(cpu.is_pending(vectors::TIMER));
        // IF clear: nothing serviced.
        assert_eq!(cpu.service_pending(), 0);
        cpu.sti().unwrap();
        assert_eq!(cpu.service_pending(), 1);
        assert_eq!(sink.0.load(Ordering::SeqCst), 1);
        assert!(!cpu.has_pending());
    }

    #[test]
    fn dispatch_restores_privilege_and_if() {
        let cpu = Arc::new(Cpu::new(0));
        struct Checker;
        impl InterruptSink for Checker {
            fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
                // Handler runs at PL0 with interrupts off.
                assert_eq!(cpu.pl(), PrivLevel::Pl0);
                assert!(!cpu.interrupts_enabled());
                assert_eq!(frame.return_pl, PrivLevel::Pl1);
            }
        }
        let mut idt = IdtTable::new("test");
        idt.set_gate(vectors::TIMER, Arc::new(Checker));
        cpu.lidt(Arc::new(idt)).unwrap();
        cpu.sti().unwrap();
        cpu.set_pl_raw(PrivLevel::Pl1);
        cpu.raise(vectors::TIMER);
        cpu.service_pending();
        assert_eq!(cpu.pl(), PrivLevel::Pl1);
        assert!(cpu.interrupts_enabled());
    }

    #[test]
    fn handler_can_change_return_privilege() {
        // The Mercury state-reload mechanism: edit return_pl in the frame.
        let cpu = Arc::new(Cpu::new(0));
        struct Deprivilege;
        impl InterruptSink for Deprivilege {
            fn handle(&self, _cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
                frame.return_pl = PrivLevel::Pl1;
            }
        }
        let mut idt = IdtTable::new("test");
        idt.set_gate(vectors::SELF_VIRT_ATTACH, Arc::new(Deprivilege));
        cpu.lidt(Arc::new(idt)).unwrap();
        cpu.sti().unwrap();
        assert_eq!(cpu.pl(), PrivLevel::Pl0);
        cpu.raise(vectors::SELF_VIRT_ATTACH);
        cpu.service_pending();
        assert_eq!(cpu.pl(), PrivLevel::Pl1);
    }

    #[test]
    fn exception_without_handler_is_double_fault() {
        let cpu = Arc::new(Cpu::new(0));
        let err = cpu.deliver_exception(vectors::PAGE_FAULT, 0).unwrap_err();
        assert_eq!(err, Fault::DoubleFault);
    }

    #[test]
    fn gdt_selector_checks() {
        let native = Gdt::NATIVE;
        let virt = Gdt::VIRTUALIZED;
        let ksel_native = native.kernel_cs();
        assert!(native.check_selector(ksel_native).is_ok());
        // A selector cached under the native GDT faults under the
        // virtualized one — the §5.1.2 stack-fixup scenario.
        assert!(virt.check_selector(ksel_native).is_err());
        assert!(virt.check_selector(virt.kernel_cs()).is_ok());
    }

    #[test]
    fn hlt_cleared_by_interrupt() {
        let cpu = Cpu::new(0);
        cpu.hlt().unwrap();
        assert!(cpu.is_halted());
        cpu.raise(vectors::TIMER);
        assert!(!cpu.is_halted());
    }

    #[test]
    fn rdtsc_monotonic() {
        let cpu = Cpu::new(0);
        let a = cpu.rdtsc();
        cpu.tick(100);
        let b = cpu.rdtsc();
        assert!(b > a);
    }
}
