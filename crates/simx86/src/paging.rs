//! Page-table formats and the virtual address-space layout.
//!
//! The simulated architecture uses a 1 GiB virtual address space with a
//! two-level page table: 9 bits of L2 (page directory) index, 9 bits of
//! L1 (page table) index and a 12-bit page offset.  Entries are 64-bit
//! words stored in simulated physical frames, so the MMU genuinely walks
//! memory.
//!
//! The layout follows §3.2.2 of the paper: a fixed slice at the *top* of
//! every address space is reserved for the VMM in **both** execution
//! modes ("Mercury instead unifies the address space layout ... by
//! reserving a fixed portion of virtual address space for the VMM"),
//! mirroring Xen's top-64 MiB reservation.

use serde::{Deserialize, Serialize};

/// Bytes per page / frame.
pub const PAGE_SIZE: u64 = 4096;
/// 64-bit words per page.
pub const WORDS_PER_PAGE: usize = (PAGE_SIZE / 8) as usize;
/// Entries per page table (both levels).
pub const ENTRIES_PER_TABLE: usize = 512;

/// Bit offset of the L1 index inside a virtual address.
pub const L1_SHIFT: u64 = 12;
/// Bit offset of the L2 index inside a virtual address.
pub const L2_SHIFT: u64 = 21;
/// Total virtual address bits (1 GiB space).
pub const VA_BITS: u64 = 30;
/// One past the highest valid virtual address.
pub const VA_TOP: u64 = 1 << VA_BITS;

/// Start of the user region (grows upward).
pub const USER_BASE: u64 = 0x0000_0000;
/// End of the user region: 768 MiB.
pub const USER_TOP: u64 = 0x3000_0000;
/// Start of the kernel region (direct map of physical memory).
pub const KERNEL_BASE: u64 = 0x3000_0000;
/// End of the kernel direct map: kernel owns 192 MiB of VA.
pub const KERNEL_TOP: u64 = 0x3C00_0000;
/// Start of the region reserved for the VMM in *every* address space
/// (the Xen-style top 64 MiB).  Present in native mode too, so a mode
/// switch never relays out the address space.
pub const HV_BASE: u64 = 0x3C00_0000;
/// One past the end of the VMM reservation (== `VA_TOP`).
pub const HV_TOP: u64 = VA_TOP;

/// A virtual address in the simulated 1 GiB space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

impl std::fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VA({:#010x})", self.0)
    }
}

impl VirtAddr {
    /// L2 (page-directory) index of this address.
    #[inline]
    pub fn l2_index(self) -> usize {
        ((self.0 >> L2_SHIFT) & 0x1ff) as usize
    }

    /// L1 (page-table) index of this address.
    #[inline]
    pub fn l1_index(self) -> usize {
        ((self.0 >> L1_SHIFT) & 0x1ff) as usize
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The address rounded down to its page base.
    #[inline]
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Virtual page number (address / 4096).
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> L1_SHIFT
    }

    /// Is this address inside the user region?
    #[inline]
    pub fn is_user(self) -> bool {
        self.0 < USER_TOP
    }

    /// Is this address inside the kernel direct map?
    #[inline]
    pub fn is_kernel(self) -> bool {
        (KERNEL_BASE..KERNEL_TOP).contains(&self.0)
    }

    /// Is this address inside the VMM reservation?
    #[inline]
    pub fn is_hypervisor(self) -> bool {
        (HV_BASE..HV_TOP).contains(&self.0)
    }

    /// Is this a legal address at all?
    #[inline]
    pub fn is_canonical(self) -> bool {
        self.0 < VA_TOP
    }

    /// Rebuild a virtual address from table indices and offset.
    pub fn from_indices(l2: usize, l1: usize, offset: u64) -> VirtAddr {
        debug_assert!(l2 < ENTRIES_PER_TABLE && l1 < ENTRIES_PER_TABLE && offset < PAGE_SIZE);
        VirtAddr(((l2 as u64) << L2_SHIFT) | ((l1 as u64) << L1_SHIFT) | offset)
    }
}

// ---------------------------------------------------------------------------
// PTE format
// ---------------------------------------------------------------------------

/// A page-table entry (used at both levels; at L2 the frame points to an
/// L1 table).
///
/// Bit layout (subset of x86):
/// ```text
///  0 PRESENT     5 ACCESSED     9 COW (software)
///  1 WRITABLE    6 DIRTY       10 PINNED-HINT (software, used by xenon)
///  2 USER        8 GLOBAL
///  bits 12..40: frame number
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pte(pub u64);

impl std::fmt::Debug for Pte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.present() {
            return write!(f, "PTE(absent)");
        }
        write!(
            f,
            "PTE(frame={}{}{}{}{}{})",
            self.frame(),
            if self.writable() { " W" } else { " RO" },
            if self.user() { " U" } else { " S" },
            if self.cow() { " COW" } else { "" },
            if self.dirty() { " D" } else { "" },
            if self.accessed() { " A" } else { "" },
        )
    }
}

impl Pte {
    /// Entry is valid.
    pub const PRESENT: u64 = 1 << 0;
    /// Writes permitted (enforced even for supervisor: CR0.WP=1).
    pub const WRITABLE: u64 = 1 << 1;
    /// User-mode access permitted.
    pub const USER: u64 = 1 << 2;
    /// Hardware-set on any access.
    pub const ACCESSED: u64 = 1 << 5;
    /// Hardware-set on write (feeds live migration's dirty log).
    pub const DIRTY: u64 = 1 << 6;
    /// Survives CR3 reloads (kernel direct-map entries).
    pub const GLOBAL: u64 = 1 << 8;
    /// Software bit: this mapping is copy-on-write.
    pub const COW: u64 = 1 << 9;
    /// Software bit: hint that the mapped frame is a pinned page table.
    pub const PIN_HINT: u64 = 1 << 10;

    const FRAME_MASK: u64 = 0x0000_00ff_ffff_f000;

    /// An absent entry.
    pub const ABSENT: Pte = Pte(0);

    /// Build a present entry mapping `frame` with the given flag bits.
    pub fn new(frame: u32, flags: u64) -> Pte {
        Pte((((frame as u64) << 12) & Self::FRAME_MASK) | flags | Self::PRESENT)
    }

    /// Is the entry valid?
    #[inline]
    pub fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }
    /// May the mapping be written?
    #[inline]
    pub fn writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }
    /// May user mode access it?
    #[inline]
    pub fn user(self) -> bool {
        self.0 & Self::USER != 0
    }
    /// Has the page been accessed?
    #[inline]
    pub fn accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }
    /// Has the page been written?
    #[inline]
    pub fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }
    /// Does the entry survive CR3 reloads?
    #[inline]
    pub fn global(self) -> bool {
        self.0 & Self::GLOBAL != 0
    }
    /// Is the mapping copy-on-write?
    #[inline]
    pub fn cow(self) -> bool {
        self.0 & Self::COW != 0
    }

    /// Frame number this entry maps.
    #[inline]
    pub fn frame(self) -> u32 {
        ((self.0 & Self::FRAME_MASK) >> 12) as u32
    }

    /// Copy of this entry with extra flag bits set.
    #[inline]
    pub fn with_flags(self, flags: u64) -> Pte {
        Pte(self.0 | flags)
    }

    /// Copy of this entry with the given flag bits cleared.
    #[inline]
    pub fn without_flags(self, flags: u64) -> Pte {
        Pte(self.0 & !flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition_roundtrips() {
        let va = VirtAddr(0x1234_5678 & (VA_TOP - 1));
        let back = VirtAddr::from_indices(va.l2_index(), va.l1_index(), va.page_offset());
        assert_eq!(va, back);
    }

    #[test]
    fn layout_regions_are_disjoint_and_cover_space() {
        assert_eq!(USER_BASE, 0);
        assert_eq!(USER_TOP, KERNEL_BASE);
        assert_eq!(KERNEL_TOP, HV_BASE);
        assert_eq!(HV_TOP, VA_TOP);
        // The VMM reservation is exactly 64 MiB, like Xen's.
        assert_eq!(HV_TOP - HV_BASE, 64 * 1024 * 1024);
    }

    #[test]
    fn region_predicates() {
        assert!(VirtAddr(0x1000).is_user());
        assert!(VirtAddr(KERNEL_BASE).is_kernel());
        assert!(VirtAddr(HV_BASE).is_hypervisor());
        assert!(!VirtAddr(HV_BASE).is_kernel());
        assert!(VirtAddr(VA_TOP - 1).is_canonical());
        assert!(!VirtAddr(VA_TOP).is_canonical());
    }

    #[test]
    fn pte_bits_roundtrip() {
        let pte = Pte::new(0x1234, Pte::WRITABLE | Pte::USER | Pte::COW);
        assert!(pte.present() && pte.writable() && pte.user() && pte.cow());
        assert!(!pte.dirty());
        assert_eq!(pte.frame(), 0x1234);

        let ro = pte.without_flags(Pte::WRITABLE);
        assert!(!ro.writable());
        assert_eq!(ro.frame(), 0x1234);

        let d = ro.with_flags(Pte::DIRTY);
        assert!(d.dirty());
    }

    #[test]
    fn absent_pte() {
        assert!(!Pte::ABSENT.present());
        assert_eq!(format!("{:?}", Pte::ABSENT), "PTE(absent)");
    }

    #[test]
    fn vpn_and_page_base() {
        let va = VirtAddr(0x0123_4567);
        assert_eq!(va.page_base().0, 0x0123_4000);
        assert_eq!(va.vpn(), 0x0123_4567 >> 12);
    }
}
