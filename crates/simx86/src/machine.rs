//! The machine: CPUs + memory + interrupt controller + devices, plus the
//! physical frame allocator.

use crate::costs;
use crate::cpu::Cpu;
use crate::devices::{Console, SimDisk, SimNic, SimTimer};
use crate::evclock::EvClock;
use crate::intc::InterruptController;
use crate::mem::{FrameNum, PhysMemory};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration for a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of CPU cores (the paper tests UP = 1 and SMP = 2).
    pub num_cpus: usize,
    /// Installed physical memory in 4 KiB frames.  The default 16 Ki
    /// frames = 64 MiB stands in for the paper's 900 000 KB per guest
    /// (scaled down; see DESIGN.md §2).
    pub mem_frames: usize,
    /// Disk capacity in 512-byte sectors.
    pub disk_sectors: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 128 * 1024, // 64 MiB disk
        }
    }
}

impl MachineConfig {
    /// The paper's uniprocessor configuration.
    pub fn up() -> Self {
        MachineConfig::default()
    }

    /// The paper's SMP (two-processor) configuration.
    pub fn smp() -> Self {
        MachineConfig {
            num_cpus: 2,
            ..Default::default()
        }
    }
}

/// A physical frame allocator over the machine's memory.
///
/// Frame 0 is never handed out (null-frame guard).  `alloc_high` carves
/// frames from the top of memory — the hypervisor reserves its own
/// working memory there at warm-up so the reservation survives in both
/// execution modes.
pub struct FrameAllocator {
    inner: Mutex<AllocInner>,
}

struct AllocInner {
    /// Free frames, popped from the back; kept sorted ascending so low
    /// frames are handed out last-in-first... we pop the *front* via
    /// swap-less index tracking instead: see `alloc`.
    free: Vec<u32>,
    total: usize,
}

impl FrameAllocator {
    /// All frames of `mem` free except frame 0.
    pub fn new(num_frames: usize) -> Self {
        // Descending order so `pop()` yields the lowest frame first.
        let free: Vec<u32> = (1..num_frames as u32).rev().collect();
        FrameAllocator {
            inner: Mutex::new(AllocInner {
                free,
                total: num_frames,
            }),
        }
    }

    /// Allocate the lowest available frame.
    pub fn alloc(&self, cpu: &Cpu) -> Option<FrameNum> {
        cpu.tick(costs::FRAME_ALLOC);
        self.inner.lock().free.pop().map(FrameNum)
    }

    /// Allocate `n` frames (not necessarily contiguous).
    pub fn alloc_many(&self, cpu: &Cpu, n: usize) -> Option<Vec<FrameNum>> {
        cpu.tick(costs::FRAME_ALLOC * n as u64);
        let mut inner = self.inner.lock();
        if inner.free.len() < n {
            return None;
        }
        let at = inner.free.len() - n;
        Some(inner.free.split_off(at).into_iter().map(FrameNum).collect())
    }

    /// Allocate `n` frames from the *top* of memory (highest numbers).
    /// Used for the hypervisor's reserved pool.
    pub fn alloc_high(&self, cpu: &Cpu, n: usize) -> Option<Vec<FrameNum>> {
        cpu.tick(costs::FRAME_ALLOC * n as u64);
        let mut inner = self.inner.lock();
        if inner.free.len() < n {
            return None;
        }
        // `free` is descending, so the highest frames sit at the front.
        let taken: Vec<FrameNum> = inner.free.drain(..n).map(FrameNum).collect();
        Some(taken)
    }

    /// Return a frame to the pool.
    pub fn free(&self, frame: FrameNum) {
        debug_assert_ne!(frame.0, 0, "freeing the null frame");
        let mut inner = self.inner.lock();
        debug_assert!(
            !inner.free.contains(&frame.0),
            "double free of frame {}",
            frame.0
        );
        // Keep descending order with a binary insertion.
        let pos = inner
            .free
            .binary_search_by(|x| frame.0.cmp(x))
            .unwrap_or_else(|p| p);
        inner.free.insert(pos, frame.0);
    }

    /// Free frames remaining.
    pub fn available(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Total frames managed (including frame 0).
    pub fn total(&self) -> usize {
        self.inner.lock().total
    }
}

/// A complete simulated machine.
pub struct Machine {
    /// Physical memory.
    pub mem: PhysMemory,
    /// CPU cores.
    pub cpus: Vec<Arc<Cpu>>,
    /// Interrupt controller.
    pub intc: Arc<InterruptController>,
    /// Frame allocator.
    pub allocator: FrameAllocator,
    /// Periodic timer.
    pub timer: SimTimer,
    /// Disk.
    pub disk: SimDisk,
    /// Network interface.
    pub nic: Arc<SimNic>,
    /// Console.
    pub console: Console,
    /// The event clock — the machine-wide deadline queue that idle
    /// spans fast-forward against (see [`crate::evclock`]).
    pub evclock: Arc<EvClock>,
    config: MachineConfig,
}

impl Machine {
    /// Power on a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Arc<Machine> {
        let cpus: Vec<Arc<Cpu>> = (0..config.num_cpus)
            .map(|i| Arc::new(Cpu::new(i)))
            .collect();
        let intc = Arc::new(InterruptController::new(cpus.clone()));
        Arc::new(Machine {
            mem: PhysMemory::new(config.mem_frames),
            cpus: cpus.clone(),
            intc,
            allocator: FrameAllocator::new(config.mem_frames),
            timer: SimTimer::new(config.num_cpus),
            disk: SimDisk::new(config.disk_sectors, 0),
            nic: Arc::new(SimNic::new(0)),
            console: Console::new(),
            evclock: EvClock::new(),
            config,
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The boot CPU.
    pub fn boot_cpu(&self) -> &Arc<Cpu> {
        &self.cpus[0]
    }

    /// Pump all passive devices (disk completions, timers) once.  Called
    /// by the test bed at service points.
    pub fn pump_devices(&self) {
        self.disk.pump(&self.mem, &self.intc);
        for cpu in &self.cpus {
            self.timer.poll(cpu);
        }
    }

    /// Maximum cycle count across CPUs — the machine's wall clock.
    pub fn now(&self) -> u64 {
        self.cpus.iter().map(|c| c.cycles()).max().unwrap_or(0)
    }

    /// Fast-forward `cpu` through an idle span to absolute cycle
    /// `target`, stopping at every deadline on the way: the CPU's
    /// programmed timer, and every pending [`EvClock`] event.  Devices
    /// are pumped at each stop, so timer interrupts raise at exactly
    /// the cycles they would under quantum-by-quantum ticking.
    ///
    /// Returns the cycles charged (0 if `cpu` is already past
    /// `target`).  Accounting is identical whether the clock skips or
    /// walks — see [`crate::evclock`] for the neutrality contract.
    ///
    /// ```
    /// use simx86::{Machine, MachineConfig};
    ///
    /// let m = Machine::new(MachineConfig::up());
    /// let cpu = m.boot_cpu();
    /// m.timer.start(cpu, 10_000); // periodic, every 10k cycles
    /// m.idle_until(cpu, 35_000);
    /// assert_eq!(cpu.cycles(), 35_000);
    /// assert_eq!(m.timer.ticks(0), 3); // fired at 10k, 20k and 30k
    /// ```
    pub fn idle_until(&self, cpu: &Arc<Cpu>, target: u64) -> u64 {
        let mut charged = 0u64;
        loop {
            let now = cpu.cycles();
            if now >= target {
                return charged;
            }
            let mut stop = target;
            if let Some(d) = self.timer.next_deadline(cpu.id) {
                if d > now {
                    stop = stop.min(d);
                }
            }
            if let Some(d) = self.evclock.next_due() {
                if d > now {
                    stop = stop.min(d);
                }
            }
            charged += self.evclock.advance(cpu, stop);
            self.pump_devices();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_hands_out_low_frames_first() {
        let m = Machine::new(MachineConfig {
            mem_frames: 16,
            ..MachineConfig::up()
        });
        let cpu = m.boot_cpu();
        let a = m.allocator.alloc(cpu).unwrap();
        let b = m.allocator.alloc(cpu).unwrap();
        assert_eq!(a, FrameNum(1));
        assert_eq!(b, FrameNum(2));
    }

    #[test]
    fn alloc_high_takes_top_frames() {
        let m = Machine::new(MachineConfig {
            mem_frames: 16,
            ..MachineConfig::up()
        });
        let cpu = m.boot_cpu();
        let top = m.allocator.alloc_high(cpu, 3).unwrap();
        assert_eq!(top, vec![FrameNum(15), FrameNum(14), FrameNum(13)]);
        // Low allocation unaffected.
        assert_eq!(m.allocator.alloc(cpu).unwrap(), FrameNum(1));
    }

    #[test]
    fn free_returns_frames_for_reuse() {
        let m = Machine::new(MachineConfig {
            mem_frames: 8,
            ..MachineConfig::up()
        });
        let cpu = m.boot_cpu();
        let before = m.allocator.available();
        let f = m.allocator.alloc(cpu).unwrap();
        assert_eq!(m.allocator.available(), before - 1);
        m.allocator.free(f);
        assert_eq!(m.allocator.available(), before);
        // Lowest-first means we get the same frame back.
        assert_eq!(m.allocator.alloc(cpu).unwrap(), f);
    }

    #[test]
    fn alloc_many_exhaustion() {
        let m = Machine::new(MachineConfig {
            mem_frames: 4,
            ..MachineConfig::up()
        });
        let cpu = m.boot_cpu();
        assert!(m.allocator.alloc_many(cpu, 10).is_none());
        let got = m.allocator.alloc_many(cpu, 3).unwrap();
        assert_eq!(got.len(), 3);
        assert!(m.allocator.alloc(cpu).is_none());
    }

    #[test]
    fn smp_config_has_two_cpus() {
        let m = Machine::new(MachineConfig::smp());
        assert_eq!(m.num_cpus(), 2);
        assert_eq!(m.cpus[1].id, 1);
    }

    #[test]
    fn machine_clock_is_max_over_cpus() {
        let m = Machine::new(MachineConfig::smp());
        m.cpus[0].tick(100);
        m.cpus[1].tick(250);
        assert_eq!(m.now(), 250);
    }

    #[test]
    fn idle_until_fires_every_timer_tick_it_skips_over() {
        // Fast-forwarding an idle span must raise the same interrupts,
        // at the same cycles, as walking it: a 100-cycle periodic timer
        // skipped over for 1000 cycles fires 10 ticks, not 1.
        let m = Machine::new(MachineConfig::up());
        let cpu = m.boot_cpu();
        m.timer.start(cpu, 100);
        let charged = m.idle_until(cpu, 1_000);
        assert_eq!(charged, 1_000);
        assert_eq!(cpu.cycles(), 1_000);
        assert_eq!(m.timer.ticks(0), 10);
    }

    #[test]
    fn idle_until_stops_at_evclock_deadlines() {
        use crate::evclock::EventKind;
        let m = Machine::new(MachineConfig::up());
        let cpu = m.boot_cpu();
        m.evclock.schedule(400, EventKind::RequestArrival);
        m.idle_until(cpu, 1_000);
        assert_eq!(cpu.cycles(), 1_000);
        // The event was a stop point; it is still the caller's to pop.
        let due = m.evclock.take_due(cpu.cycles());
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].due, 400);
    }

    #[test]
    fn idle_until_charges_identically_with_skip_off() {
        let skip_on = Machine::new(MachineConfig::up());
        let skip_off = Machine::new(MachineConfig::up());
        skip_off.evclock.set_skip(false);
        for m in [&skip_on, &skip_off] {
            let cpu = m.boot_cpu();
            m.timer.start(cpu, 333);
            m.idle_until(cpu, 10_000);
        }
        assert_eq!(skip_on.boot_cpu().cycles(), skip_off.boot_cpu().cycles());
        assert_eq!(skip_on.timer.ticks(0), skip_off.timer.ticks(0));
    }
}

#[cfg(test)]
mod pump_tests {
    use super::*;
    use crate::cpu::vectors;
    use crate::devices::{DiskOp, DiskRequest};
    use crate::mem::PhysAddr;

    #[test]
    fn pump_devices_completes_disk_and_fires_timers() {
        let m = Machine::new(MachineConfig::up());
        let cpu = m.boot_cpu();
        m.timer.start(cpu, 1_000);
        m.disk.submit(DiskRequest {
            id: 1,
            op: DiskOp::Read,
            sector: 0,
            count: 1,
            pa: PhysAddr(0x1000),
        });
        cpu.tick(2_000);
        m.pump_devices();
        assert!(cpu.is_pending(vectors::DISK));
        assert!(cpu.is_pending(vectors::TIMER));
        assert!(m.disk.reap().unwrap().ok);
    }
}
