//! The interrupt controller: routes device interrupts to CPUs and sends
//! inter-processor interrupts.
//!
//! IPIs are the substrate of Mercury's SMP mode-switch protocol (§5.4):
//! the control processor notifies its peers with IPIs and coordinates the
//! rendezvous through shared variables.

use crate::costs;
use crate::cpu::Cpu;
use std::sync::Arc;

/// Routing of a device interrupt line: either a fixed CPU or the boot
/// CPU (id 0).  A fuller IOAPIC model isn't needed for the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqRoute {
    /// Deliver to a fixed CPU.
    Cpu(usize),
}

/// The machine's interrupt controller.
pub struct InterruptController {
    cpus: Vec<Arc<Cpu>>,
}

impl InterruptController {
    /// Build a controller over the machine's CPUs.
    pub fn new(cpus: Vec<Arc<Cpu>>) -> Self {
        InterruptController { cpus }
    }

    /// Number of CPUs reachable.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Raise `vector` on `cpu` (device interrupt line assertion).
    pub fn raise(&self, cpu: usize, vector: u8) {
        self.cpus[cpu].raise(vector);
    }

    /// Send an IPI from `from` to `to`.  Charges the APIC ICR cost to the
    /// sender.
    pub fn send_ipi(&self, from: &Cpu, to: usize, vector: u8) {
        from.tick(costs::IPI_SEND);
        merctrace::counter!(from.id, "simx86.ipi.send", 1, from.cycles());
        self.cpus[to].raise(vector);
    }

    /// Send an IPI to every CPU except the sender.
    #[doc(alias = "volint-privileged")]
    pub fn broadcast_ipi(&self, from: &Cpu, vector: u8) {
        // volint::bound(64) — one IPI per CPU; the machine model tops out well below this
        for cpu in &self.cpus {
            if cpu.id != from.id {
                from.tick(costs::IPI_SEND);
                merctrace::counter!(from.id, "simx86.ipi.send", 1, from.cycles());
                cpu.raise(vector);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::vectors;

    fn cpus(n: usize) -> Vec<Arc<Cpu>> {
        (0..n).map(|i| Arc::new(Cpu::new(i))).collect()
    }

    #[test]
    fn raise_targets_one_cpu() {
        let cs = cpus(2);
        let intc = InterruptController::new(cs.clone());
        intc.raise(1, vectors::DISK);
        assert!(!cs[0].is_pending(vectors::DISK));
        assert!(cs[1].is_pending(vectors::DISK));
    }

    #[test]
    fn broadcast_excludes_sender_and_charges_it() {
        let cs = cpus(3);
        let intc = InterruptController::new(cs.clone());
        let before = cs[0].cycles();
        intc.broadcast_ipi(&cs[0], vectors::SELF_VIRT_RENDEZVOUS);
        assert!(!cs[0].is_pending(vectors::SELF_VIRT_RENDEZVOUS));
        assert!(cs[1].is_pending(vectors::SELF_VIRT_RENDEZVOUS));
        assert!(cs[2].is_pending(vectors::SELF_VIRT_RENDEZVOUS));
        assert_eq!(cs[0].cycles() - before, 2 * costs::IPI_SEND);
    }
}
