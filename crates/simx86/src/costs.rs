//! Cycle cost model for the simulated machine.
//!
//! All durations in this workspace are expressed in *simulated CPU cycles*.
//! The machine is modelled as a 3 GHz Xeon (the paper's DELL SC1420
//! testbed): [`CYCLES_PER_US`] cycles make one microsecond of simulated
//! time.  The constants below are the tuning knobs that calibrate the
//! reproduction against the paper's Table 1/Table 2 lmbench rows; each
//! one documents which measurement it chiefly influences.
//!
//! The split between *native* and *virtual* costs is structural, not a
//! fudge factor: virtual-mode costs arise because the guest must cross
//! into the hypervisor (a privilege transition plus validation work),
//! exactly the mechanism the paper identifies in §3.2.

/// Cycles per microsecond of simulated time ("3 GHz Xeon").
pub const CYCLES_PER_US: u64 = 3_000;

/// Convert cycles to microseconds of simulated time.
#[inline]
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US as f64
}

/// Convert microseconds to cycles.
#[inline]
pub fn us_to_cycles(us: f64) -> u64 {
    (us * CYCLES_PER_US as f64) as u64
}

// ---------------------------------------------------------------------------
// Raw memory-system costs
// ---------------------------------------------------------------------------

/// Reading or writing one 8-byte word of simulated physical memory.
/// Kept tiny: most word traffic is page-table manipulation whose cost is
/// dominated by the per-entry accounting constants below.
pub const MEM_WORD: u64 = 2;

/// Copying a whole 4 KiB frame (`memcpy`-style; ~0.4 µs at 10 GB/s).
pub const FRAME_COPY: u64 = 1_200;

/// Zero-filling a 4 KiB frame (slightly cheaper than a copy).
pub const FRAME_ZERO: u64 = 900;

/// Refilling one 64-byte cache line from L2 after a context switch.
/// Calibrates the growth from `ctx(2p/0k)` to `ctx(16p/16k)` in Table 1.
pub const CACHE_LINE_REFILL_L2: u64 = 13;

/// Refilling one cache line from memory (beyond the L2-resident window).
/// Calibrates the growth from `ctx(16p/16k)` to `ctx(16p/64k)`.
pub const CACHE_LINE_REFILL_MEM: u64 = 28;

/// Number of cache lines that refill at the cheaper L2 rate before the
/// working set spills to memory (256 lines = 16 KiB).
pub const CACHE_L2_RESIDENT_LINES: u64 = 256;

// ---------------------------------------------------------------------------
// Traps, interrupts, privilege transitions
// ---------------------------------------------------------------------------

/// Entering the kernel from user mode on bare hardware (trap gate,
/// pipeline flush, stack switch).  Calibrates `prot fault` (N-L ≈ 0.61 µs:
/// entry + handler + exit).
pub const TRAP_ENTER_NATIVE: u64 = 550;

/// Returning to user mode on bare hardware (`iret`).
pub const TRAP_EXIT_NATIVE: u64 = 420;

/// Extra cost when a trap first lands in the hypervisor and is reflected
/// into the de-privileged guest kernel (two extra ring crossings).
/// Calibrates the virtual-mode `prot fault` row (≈ 0.97 µs).
pub const TRAP_REFLECT_VIRT: u64 = 1_500;

/// Dispatching a hardware interrupt through a gate (on top of the trap
/// entry cost).
pub const IRQ_DISPATCH: u64 = 300;

/// Sending an inter-processor interrupt (APIC ICR write + bus message).
pub const IPI_SEND: u64 = 400;

/// Base cost of one hypercall: de-privileged `int`/`syscall` into the
/// VMM, argument copy, dispatch and return.  The single most important
/// virtual-mode constant; shows up in every Table 1 virtual column.
pub const HYPERCALL_BASE: u64 = 2_200;

// ---------------------------------------------------------------------------
// MMU and paging costs
// ---------------------------------------------------------------------------

/// A TLB hit during translation.
pub const TLB_HIT: u64 = 1;

/// A hardware page-table walk on a TLB miss (two memory accesses plus
/// fill).
pub const TLB_MISS_WALK: u64 = 60;

/// Flushing the whole TLB (CR3 reload on bare hardware).
pub const TLB_FLUSH: u64 = 150;

/// Writing a PTE directly (native mode): the store plus kernel
/// accounting around it.
pub const PTE_WRITE_NATIVE: u64 = 35;

/// Per-entry validation cost inside the VMM's `mmu_update` hypercall:
/// look up the frame's `page_info`, check type/owner, adjust counts.
/// Together with [`HYPERCALL_BASE`] this calibrates the virtual `page
/// fault` row (≈ 3.1 µs) and much of virtual `fork`.
pub const MMU_UPDATE_PER_ENTRY: u64 = 300;

/// Per-entry validation when pinning a page-table page (the VMM walks
/// every slot of the table checking ownership and reference rules).
/// Dominates virtual-mode `fork`/`exec` (Table 1: fork 98 µs → 482 µs).
pub const PT_PIN_PER_ENTRY: u64 = 250;

/// Fixed cost of a pin/unpin hypercall beyond per-entry validation.
pub const PT_PIN_BASE: u64 = 800;

/// Loading CR3 natively (the register write; TLB flush charged
/// separately).
pub const CR3_LOAD_NATIVE: u64 = 200;

// ---------------------------------------------------------------------------
// Kernel-operation base costs (mode-independent bookkeeping)
// ---------------------------------------------------------------------------

/// Allocating one physical frame from the free list.
pub const FRAME_ALLOC: u64 = 120;

/// Fixed fork cost: task struct, kernel stack, file table, VMA list copy.
/// Calibrates the N-L `fork` row together with per-PTE COW marking.
pub const FORK_BASE: u64 = 245_000;

/// Fixed exec cost: image lookup, argument copy, loader bookkeeping
/// (program text/data copy is charged per page on top).  Calibrates the
/// N-L `exec` row.
pub const EXEC_BASE: u64 = 830_000;

/// Shell interpretation overhead for `sh -c prog` beyond the fork+exec
/// pairs (parsing, PATH search).  Calibrates the N-L `sh proc` row.
pub const SH_PARSE: u64 = 800_000;

/// Fixed part of a context switch on bare hardware: save/restore of the
/// register file, scheduler pick, stack switch.  Calibrates
/// `ctx(2p/0k)` N-L ≈ 1.64 µs.
pub const CTX_SWITCH_BASE: u64 = 2_800;

/// Extra context-switch work in virtual mode: stack-switch hypercall,
/// segment reloads bouncing through the VMM.  (CR3 load becomes a
/// hypercall too and is charged through the paravirt layer.)
pub const CTX_SWITCH_VIRT_EXTRA: u64 = 5_400;

/// Per-lock acquisition overhead charged in SMP mode (cache-line
/// transfer for a contended-ish spinlock).  Makes every Table 2 row a
/// little slower than Table 1, as the paper observes.
pub const SMP_LOCK: u64 = 160;

/// Page-fault handler bookkeeping beyond trap entry/exit (VMA lookup,
/// policy).  Calibrates N-L `page fault` ≈ 1.22 µs.
pub const PF_HANDLER: u64 = 1_000;

/// Handler-side cost of a pure protection fault (no frame allocation).
pub const PROT_FAULT_HANDLER: u64 = 260;

/// Syscall entry+exit fast path on bare hardware.
pub const SYSCALL_NATIVE: u64 = 500;

/// Extra syscall cost in virtual mode (redirected through the VMM's
/// gate table even with a fast trampoline).
pub const SYSCALL_VIRT_EXTRA: u64 = 350;

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

/// Disk: fixed per-request cost (controller doorbell, IRQ, completion).
pub const DISK_REQUEST_BASE: u64 = 18_000;

/// Disk: per-sector (512 B) transfer cost.
pub const DISK_PER_SECTOR: u64 = 1_000;

/// NIC: per-packet driver cost on bare hardware (descriptor setup, IRQ).
pub const NIC_PACKET_BASE: u64 = 5_500;

/// NIC: per-byte copy cost between socket buffer and device.
pub const NIC_PER_BYTE: u64 = 2;

/// Wire propagation delay for a LAN round trip half (cable + switch).
pub const WIRE_LATENCY: u64 = 90_000;

/// Extra cost per device request when the *driver domain* itself is
/// de-privileged (X-0 / M-V): the driver's port-I/O and doorbell writes
/// trap into the VMM.  Responsible for domain0's I/O-heavy losses in
/// Fig. 3 (dbench −15 %, Iperf −40 %).
pub const IO_PRIV_TRAP: u64 = 4_500;

// ---------------------------------------------------------------------------
// Split-driver (frontend/backend) costs — used by Xenon's device channels
// ---------------------------------------------------------------------------

/// Posting one request descriptor into a shared-memory I/O ring.
pub const RING_POST: u64 = 600;

/// Granting / revoking access to one frame through the grant table.
pub const GRANT_OP: u64 = 900;

/// Event-channel notification (virtual IRQ to the peer domain).
pub const EVTCHN_NOTIFY: u64 = 1_100;

// ---------------------------------------------------------------------------
// Hardware virtualization assist (§8 extension)
// ---------------------------------------------------------------------------

/// One VM exit: save guest state to the VMCS, load host state (2005-era
/// VT-x exits were expensive).
pub const VMEXIT: u64 = 1_600;

/// One VM entry: the reverse transition.
pub const VMENTRY: u64 = 1_100;

/// Initializing/loading a VMCS for one CPU at attach.
pub const VMCS_SWITCH: u64 = 2_000;

/// Installing one frame's permission into the EPT (warm-up bulk build).
pub const EPT_BUILD_PER_FRAME: u64 = 8;

/// Extra nested-walk cost on a TLB miss while EPT is active.
pub const EPT_WALK_EXTRA: u64 = 40;

// ---------------------------------------------------------------------------
// Mercury mode-switch costs
// ---------------------------------------------------------------------------

/// Re-computing owner/type/count in the VMM's `page_info` for one frame
/// during the native→virtual switch (§5.1.2: "recalculate the type and
/// count information for all page frames ... accounts for the major time
/// to commit a switch").  With the default 6 Ki-frame kernel pool this
/// puts the attach at ≈ 0.22 ms, matching §7.4 at our scaled-down
/// memory size (the paper's 220 µs covered ~225 Ki frames at ~3
/// cycles each; the per-frame rate scales inversely so the headline
/// time is preserved).
pub const PGINFO_RECOMPUTE_PER_FRAME: u64 = 100;

/// Releasing one frame's accounting on the virtual→native switch (the
/// cheaper reverse pass; calibrates the 0.06 ms detach of §7.4).
pub const PGINFO_CLEAR_PER_FRAME: u64 = 25;

/// Fixing the cached code/data segment selectors in one saved trap frame
/// on a thread's kernel stack (§5.1.2 stack-stub fix).
pub const STACK_SELECTOR_FIX: u64 = 45;

/// Per-thread state-transfer cost (kernel-segment privilege rewrite).
pub const THREAD_SEG_TRANSFER: u64 = 70;

/// Reloading the hardware control state on one CPU (CR3 + IDT + GDT +
/// segment registers) inside the switch interrupt handler (§5.1.3).
pub const STATE_RELOAD: u64 = 2_800;

/// The "active tracking" alternative of §5.1.2: mirroring one native PTE
/// write into the dormant VMM's page_info.  The paper measures 2~3 %
/// whole-application overhead for this strategy.
pub const ACTIVE_TRACK_PER_PTE: u64 = 12;

/// The dirty-tracking middle ground between recompute and active
/// tracking: a native PTE write only sets the containing table frame's
/// dirty bit (one byte store, no mirror bookkeeping), so the attach can
/// revalidate just the dirtied tables.  Far cheaper per write than
/// [`ACTIVE_TRACK_PER_PTE`]'s full mirror update.
pub const DIRTY_TRACK_PER_PTE: u64 = 2;

/// Claiming one chunk from the shared work queue of the parallel
/// attach-time recompute (§5.4 work phase): the atomic fetch-add plus
/// the cache-line transfer of the chunk descriptor to the claiming CPU.
pub const SHARD_CHUNK_DISPATCH: u64 = 200;

/// Deferring one dirty frame to the lazy pending set at attach instead
/// of revalidating it synchronously: a single set insertion.  The lazy
/// admission path (`TrackingStrategy::LazyValidate`) trades this 1-cycle
/// enqueue now for a [`LAZY_VALIDATE_FAULT`] +
/// [`PGINFO_RECOMPUTE_PER_FRAME`] charge on the frame's first guest
/// touch — the demand-paging shape of §5.1.2's recompute.
pub const LAZY_DEFER_PER_FRAME: u64 = 1;

/// Taking the validation fault raised by the MMU when the guest first
/// touches a frame whose page_info revalidation was deferred by a lazy
/// attach.  Covers the trap into the resident VMM's fixup handler and
/// the return; the per-frame revalidation itself is charged separately
/// at [`PGINFO_RECOMPUTE_PER_FRAME`].  Cheaper than a full guest trap
/// round-trip because the fault never escapes to the guest kernel —
/// like an A/D-bit assist, it is handled entirely below the guest.
pub const LAZY_VALIDATE_FAULT: u64 = 350;

/// Period of the retry timer armed when a switch request finds a
/// non-zero virtualization-object reference count (§5.1.1: "every time
/// interval (e.g., every 10 ms)").
pub const SWITCH_RETRY_PERIOD: u64 = 10_000 * CYCLES_PER_US; // 10 ms

/// The hv-to-hv live-update handshake: version-order, pristine-target
/// and machine-identity checks on the pre-cached successor VMM, plus
/// flushing the split-driver rings so no request is in flight across
/// the swap.  Flat — none of the checks scale with guest memory.
pub const LIVE_UPDATE_HANDSHAKE: u64 = 2_048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_us_roundtrip() {
        assert_eq!(us_to_cycles(1.0), CYCLES_PER_US);
        assert!((cycles_to_us(CYCLES_PER_US) - 1.0).abs() < 1e-9);
        assert_eq!(us_to_cycles(0.5), CYCLES_PER_US / 2);
    }

    #[test]
    fn native_prot_fault_budget_matches_paper_regime() {
        // N-L prot fault ≈ 0.61 µs in Table 1.
        let cycles = TRAP_ENTER_NATIVE + PROT_FAULT_HANDLER + TRAP_EXIT_NATIVE;
        let us = cycles_to_us(cycles);
        assert!(
            us > 0.3 && us < 1.0,
            "prot fault budget {us} µs out of band"
        );
    }

    #[test]
    fn retry_period_is_ten_ms() {
        assert_eq!(cycles_to_us(SWITCH_RETRY_PERIOD), 10_000.0);
    }
}
