//! Simulated physical memory: an array of 4 KiB frames.
//!
//! Frames hold real data (`[u64; 512]` each).  Page tables, I/O rings,
//! user page contents, checkpoint images — everything the hypervisor and
//! kernel manipulate "in memory" — live in these frames, so ownership and
//! accounting bugs corrupt real state and are caught by the MMU and the
//! hypervisor's validators, just as on hardware.
//!
//! Each frame has its own `parking_lot::Mutex`, so SMP guests and the
//! hypervisor can touch disjoint frames concurrently without a global
//! lock (see *Rust Atomics and Locks* on lock granularity).

use crate::costs;
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::paging::{Pte, PAGE_SIZE, WORDS_PER_PAGE};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Physical frame number.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct FrameNum(pub u32);

impl FrameNum {
    /// Physical address of the first byte of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr((self.0 as u64) << 12)
    }
}

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

impl std::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PA({:#010x})", self.0)
    }
}

impl PhysAddr {
    /// The frame containing this address.
    #[inline]
    pub fn frame(self) -> FrameNum {
        FrameNum((self.0 >> 12) as u32)
    }

    /// Byte offset within the frame.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Word index within the frame (address must be 8-byte aligned for
    /// word accesses).
    #[inline]
    pub fn word_index(self) -> usize {
        (self.offset() / 8) as usize
    }
}

type FrameData = Box<[u64; WORDS_PER_PAGE]>;

fn new_frame_data() -> FrameData {
    // `vec![0; N].into_boxed_slice().try_into()` avoids a large stack
    // temporary (the Rust Performance Book's advice on big arrays).
    vec![0u64; WORDS_PER_PAGE]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

struct Frame {
    data: Mutex<FrameData>,
}

/// The machine's physical memory.
pub struct PhysMemory {
    frames: Box<[Frame]>,
}

impl PhysMemory {
    /// Install `num_frames` frames of zeroed memory.
    pub fn new(num_frames: usize) -> Self {
        let frames = (0..num_frames)
            .map(|_| Frame {
                data: Mutex::new(new_frame_data()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PhysMemory { frames }
    }

    /// Number of installed frames.
    #[inline]
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Total bytes of installed memory.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.frames.len() as u64 * PAGE_SIZE
    }

    #[inline]
    fn frame_ref(&self, frame: FrameNum) -> Result<&Frame, Fault> {
        self.frames
            .get(frame.0 as usize)
            .ok_or(Fault::BadPhysAddr { pa: frame.base().0 })
    }

    /// Read one 8-byte word.  Charges [`costs::MEM_WORD`] to `cpu`.
    pub fn read_word(&self, cpu: &Cpu, pa: PhysAddr) -> Result<u64, Fault> {
        cpu.tick(costs::MEM_WORD);
        let f = self.frame_ref(pa.frame())?;
        let mut guard = f.data.lock();
        // volint::allow(SWITCH-PANIC): word_index() masks to the frame size; frame_ref already bounds-checked the frame
        let mut value = guard[pa.word_index()];
        // Fault injection (compiled out by default): a due mem-bit-flip
        // fault on this word XORs its mask in and the corrupted value is
        // stored back, so the flip persists until a watchdog scrubs it.
        let flip = faultgen::mem_read_site!(cpu.id, cpu.cycles(), pa.frame().0, pa.word_index());
        if flip != 0 {
            value ^= flip;
            // volint::allow(SWITCH-PANIC): same guard as the read above — index already validated
            guard[pa.word_index()] = value;
        }
        Ok(value)
    }

    /// Write one 8-byte word.  Charges [`costs::MEM_WORD`] to `cpu`.
    pub fn write_word(&self, cpu: &Cpu, pa: PhysAddr, value: u64) -> Result<(), Fault> {
        cpu.tick(costs::MEM_WORD);
        let f = self.frame_ref(pa.frame())?;
        // volint::allow(SWITCH-PANIC): word_index() masks to the frame size; frame_ref already bounds-checked the frame
        f.data.lock()[pa.word_index()] = value;
        Ok(())
    }

    /// Read the `index`-th PTE of the table living in `table`.
    pub fn read_pte(&self, cpu: &Cpu, table: FrameNum, index: usize) -> Result<Pte, Fault> {
        debug_assert!(index < WORDS_PER_PAGE);
        Ok(Pte(self.read_word(
            cpu,
            PhysAddr(table.base().0 + (index as u64) * 8),
        )?))
    }

    /// Write the `index`-th PTE of the table living in `table`.
    ///
    /// This is the *raw hardware store*: privilege / ownership policy is
    /// enforced by the layers above (kernel paravirt layer, hypervisor
    /// validators), not here.
    #[doc(alias = "volint-privileged")]
    pub fn write_pte(
        &self,
        cpu: &Cpu,
        table: FrameNum,
        index: usize,
        pte: Pte,
    ) -> Result<(), Fault> {
        debug_assert!(index < WORDS_PER_PAGE);
        self.write_word(cpu, PhysAddr(table.base().0 + (index as u64) * 8), pte.0)
    }

    /// Copy a whole frame.  Charges [`costs::FRAME_COPY`].
    pub fn copy_frame(&self, cpu: &Cpu, src: FrameNum, dst: FrameNum) -> Result<(), Fault> {
        cpu.tick(costs::FRAME_COPY);
        if src == dst {
            return Ok(());
        }
        let s = self.frame_ref(src)?;
        let d = self.frame_ref(dst)?;
        // Lock ordering by frame number prevents deadlock between
        // concurrent crossed copies.
        if src.0 < dst.0 {
            let sg = s.data.lock();
            let mut dg = d.data.lock();
            dg.copy_from_slice(&sg[..]);
        } else {
            let mut dg = d.data.lock();
            let sg = s.data.lock();
            dg.copy_from_slice(&sg[..]);
        }
        Ok(())
    }

    /// Zero-fill a frame.  Charges [`costs::FRAME_ZERO`].
    pub fn zero_frame(&self, cpu: &Cpu, frame: FrameNum) -> Result<(), Fault> {
        cpu.tick(costs::FRAME_ZERO);
        let f = self.frame_ref(frame)?;
        f.data.lock().fill(0);
        Ok(())
    }

    /// Bulk byte read (device DMA, packet assembly).  Cost is charged by
    /// the device model, not here.
    pub fn read_bytes(&self, pa: PhysAddr, out: &mut [u8]) -> Result<(), Fault> {
        for (i, chunk) in out.iter_mut().enumerate() {
            let addr = pa.0 + i as u64;
            let f = self.frame_ref(PhysAddr(addr).frame())?;
            let guard = f.data.lock();
            let word = guard[PhysAddr(addr).word_index()];
            *chunk = (word >> ((addr & 7) * 8)) as u8;
        }
        Ok(())
    }

    /// Bulk byte write (device DMA).  Cost is charged by the device model.
    pub fn write_bytes(&self, pa: PhysAddr, data: &[u8]) -> Result<(), Fault> {
        for (i, &b) in data.iter().enumerate() {
            let addr = pa.0 + i as u64;
            let f = self.frame_ref(PhysAddr(addr).frame())?;
            let mut guard = f.data.lock();
            let idx = PhysAddr(addr).word_index();
            let shift = (addr & 7) * 8;
            guard[idx] = (guard[idx] & !(0xffu64 << shift)) | ((b as u64) << shift);
        }
        Ok(())
    }

    /// Export a frame's raw contents (checkpointing, live migration).
    pub fn export_frame(&self, frame: FrameNum) -> Result<Vec<u64>, Fault> {
        let f = self.frame_ref(frame)?;
        Ok(f.data.lock().to_vec())
    }

    /// Import raw contents into a frame (restore, migration receive).
    pub fn import_frame(&self, frame: FrameNum, words: &[u64]) -> Result<(), Fault> {
        assert_eq!(words.len(), WORDS_PER_PAGE, "frame image has wrong size");
        let f = self.frame_ref(frame)?;
        f.data.lock().copy_from_slice(words);
        Ok(())
    }

    /// Compare two frames for equality (used by migration tests).
    pub fn frames_equal(&self, a: FrameNum, b: FrameNum) -> Result<bool, Fault> {
        if a == b {
            return Ok(true);
        }
        let fa = self.frame_ref(a)?;
        let fb = self.frame_ref(b)?;
        let (ga, gb);
        if a.0 < b.0 {
            ga = fa.data.lock();
            gb = fb.data.lock();
        } else {
            gb = fb.data.lock();
            ga = fa.data.lock();
        }
        Ok(ga[..] == gb[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;

    fn test_cpu() -> Cpu {
        Cpu::new(0)
    }

    #[test]
    fn word_read_write() {
        let mem = PhysMemory::new(4);
        let cpu = test_cpu();
        let pa = PhysAddr(0x2008);
        mem.write_word(&cpu, pa, 0xdead_beef).unwrap();
        assert_eq!(mem.read_word(&cpu, pa).unwrap(), 0xdead_beef);
        // Neighbouring word untouched.
        assert_eq!(mem.read_word(&cpu, PhysAddr(0x2000)).unwrap(), 0);
    }

    #[test]
    fn out_of_range_faults() {
        let mem = PhysMemory::new(2);
        let cpu = test_cpu();
        let err = mem.read_word(&cpu, PhysAddr(3 * PAGE_SIZE)).unwrap_err();
        assert!(matches!(err, Fault::BadPhysAddr { .. }));
    }

    #[test]
    fn pte_accessors_hit_right_slot() {
        let mem = PhysMemory::new(2);
        let cpu = test_cpu();
        let t = FrameNum(1);
        let pte = Pte::new(7, Pte::WRITABLE | Pte::USER);
        mem.write_pte(&cpu, t, 3, pte).unwrap();
        assert_eq!(mem.read_pte(&cpu, t, 3).unwrap(), pte);
        assert_eq!(
            mem.read_word(&cpu, PhysAddr(t.base().0 + 24)).unwrap(),
            pte.0
        );
    }

    #[test]
    fn copy_and_zero_frames() {
        let mem = PhysMemory::new(3);
        let cpu = test_cpu();
        mem.write_word(&cpu, PhysAddr(0), 42).unwrap();
        mem.copy_frame(&cpu, FrameNum(0), FrameNum(2)).unwrap();
        assert_eq!(mem.read_word(&cpu, FrameNum(2).base()).unwrap(), 42);
        assert!(mem.frames_equal(FrameNum(0), FrameNum(2)).unwrap());
        mem.zero_frame(&cpu, FrameNum(2)).unwrap();
        assert_eq!(mem.read_word(&cpu, FrameNum(2).base()).unwrap(), 0);
        assert!(!mem.frames_equal(FrameNum(0), FrameNum(2)).unwrap());
    }

    #[test]
    fn byte_access_roundtrip_across_words() {
        let mem = PhysMemory::new(1);
        let data: Vec<u8> = (0..32).collect();
        mem.write_bytes(PhysAddr(5), &data).unwrap();
        let mut out = vec![0u8; 32];
        mem.read_bytes(PhysAddr(5), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn export_import_roundtrip() {
        let mem = PhysMemory::new(2);
        let cpu = test_cpu();
        mem.write_word(&cpu, PhysAddr(8), 99).unwrap();
        let image = mem.export_frame(FrameNum(0)).unwrap();
        mem.import_frame(FrameNum(1), &image).unwrap();
        assert!(mem.frames_equal(FrameNum(0), FrameNum(1)).unwrap());
    }

    #[test]
    fn accesses_charge_cycles() {
        let mem = PhysMemory::new(1);
        let cpu = test_cpu();
        let before = cpu.cycles();
        mem.read_word(&cpu, PhysAddr(0)).unwrap();
        assert_eq!(cpu.cycles() - before, costs::MEM_WORD);
    }
}
