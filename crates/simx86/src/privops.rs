//! Machine-readable registry of privileged primitives.
//!
//! Every operation in this crate that a de-privileged kernel must not
//! reach directly — control-register writes, descriptor-table loads,
//! interrupt-flag and privilege-level changes, TLB maintenance,
//! page-table mutation and IPIs — is tagged at its definition with
//! `#[doc(alias = "volint-privileged")]` and listed here.  The `volint`
//! invariant checker derives its VO-BYPASS target set from the markers,
//! and the tests below hold the marker set and this registry together
//! so neither can drift: adding a privileged primitive without
//! registering it (or vice versa) fails the build.
//!
//! Privilege is enforced by the simulated hardware itself — a
//! registered primitive executed de-privileged faults exactly as the
//! paper's de-privileged kernel would trap into the VMM:
//!
//! ```
//! use simx86::cpu::{Cpu, PrivLevel};
//!
//! let cpu = Cpu::new(0);
//! cpu.write_cr3(1).expect("PL0 may load CR3");
//!
//! // De-privilege the CPU, as Mercury's attach does to the kernel …
//! cpu.set_pl_raw(PrivLevel::Pl1);
//! // … and the same instruction now takes a #GP.
//! assert!(cpu.write_cr3(2).is_err());
//!
//! // The registry documents why it is virtualization-sensitive.
//! let op = simx86::privops::REGISTRY
//!     .iter()
//!     .find(|op| op.name == "write_cr3")
//!     .unwrap();
//! assert_eq!(op.paper_ref, "§5.3");
//! assert!(simx86::privops::is_privileged("write_cr3"));
//! ```

/// One privileged primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivOp {
    /// Method name as it appears at call sites.
    pub name: &'static str,
    /// What the primitive does to the machine.
    pub effect: &'static str,
    /// Mercury paper section motivating its virtualization.
    pub paper_ref: &'static str,
}

/// All privileged primitives, in definition order per module.
pub static REGISTRY: &[PrivOp] = &[
    // cpu.rs
    PrivOp {
        name: "set_pl_raw",
        effect: "changes the CPU privilege level outside a gate",
        paper_ref: "§4.2",
    },
    PrivOp {
        name: "write_cr3",
        effect: "loads the address-space root and flushes the TLB",
        paper_ref: "§5.3",
    },
    PrivOp {
        name: "read_cr3",
        effect: "reads the address-space root (privileged on x86)",
        paper_ref: "§5.3",
    },
    PrivOp {
        name: "set_cr3_raw",
        effect: "hardware-internal CR3 restore for state reload",
        paper_ref: "§5.1.3",
    },
    PrivOp {
        name: "flush_tlb_local",
        effect: "invalidates every non-global TLB entry on this CPU",
        paper_ref: "§5.3",
    },
    PrivOp {
        name: "invlpg",
        effect: "invalidates one page translation",
        paper_ref: "§5.3",
    },
    PrivOp {
        name: "cli",
        effect: "disables interrupt delivery",
        paper_ref: "§5.4",
    },
    PrivOp {
        name: "sti",
        effect: "enables interrupt delivery",
        paper_ref: "§5.4",
    },
    PrivOp {
        name: "set_if_raw",
        effect: "hardware-internal IF change for trap entry/exit",
        paper_ref: "§5.4",
    },
    PrivOp {
        name: "lidt",
        effect: "installs a trap gate table",
        paper_ref: "§5.1.2",
    },
    PrivOp {
        name: "set_idt_raw",
        effect: "hardware-internal IDT swap for state reload",
        paper_ref: "§5.1.3",
    },
    PrivOp {
        name: "lgdt",
        effect: "installs a segment descriptor table",
        paper_ref: "§5.1.2",
    },
    PrivOp {
        name: "set_gdt_raw",
        effect: "hardware-internal GDT swap for state reload",
        paper_ref: "§5.1.3",
    },
    PrivOp {
        name: "set_non_root",
        effect: "enters/leaves VT-x-style non-root mode with an EPT",
        paper_ref: "§8",
    },
    // mem.rs
    PrivOp {
        name: "write_pte",
        effect: "mutates a page-table entry in physical memory",
        paper_ref: "§5.3",
    },
    // intc.rs
    PrivOp {
        name: "broadcast_ipi",
        effect: "raises an inter-processor interrupt on every other CPU",
        paper_ref: "§5.4",
    },
];

/// Is `name` a registered privileged primitive?
pub fn is_privileged(name: &str) -> bool {
    REGISTRY.iter().any(|op| op.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The `#[doc(alias = "volint-privileged")]` markers in this
    /// crate's sources, extracted with volint's own scanner.
    fn marked() -> BTreeSet<String> {
        let sources = [
            include_str!("cpu.rs"),
            include_str!("mem.rs"),
            include_str!("intc.rs"),
        ];
        sources
            .iter()
            .flat_map(|s| volint::markers::scan(s))
            .collect()
    }

    #[test]
    fn registry_and_markers_agree() {
        let marked = marked();
        let registered: BTreeSet<String> =
            REGISTRY.iter().map(|op| op.name.to_string()).collect();
        assert_eq!(
            marked, registered,
            "privileged-op markers and privops::REGISTRY drifted apart"
        );
    }

    #[test]
    fn registry_is_duplicate_free_and_annotated() {
        let mut seen = BTreeSet::new();
        for op in REGISTRY {
            assert!(seen.insert(op.name), "duplicate registry entry {}", op.name);
            assert!(!op.effect.is_empty());
            assert!(op.paper_ref.starts_with('§'));
        }
        assert!(is_privileged("write_cr3"));
        assert!(!is_privileged("cycles"));
    }
}
