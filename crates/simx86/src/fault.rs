//! Hardware faults raised by the simulated machine.

use crate::paging::VirtAddr;
use std::fmt;

/// The kind of memory access that triggered a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch (used only for completeness; kernel code is
    /// host-native in this simulation).
    Execute,
}

/// A fault delivered by the simulated hardware.
///
/// Faults are *values*, not panics: the layer that owns PL0 (the bare
/// kernel in native mode, the hypervisor in virtual mode) decides how to
/// handle them, mirroring the x86 exception model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Page not present during translation.
    PageNotPresent {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access that faulted.
        access: AccessKind,
    },
    /// Page present but the access violates its protection bits
    /// (write to read-only, user access to supervisor page, ...).
    PageProtection {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access that faulted.
        access: AccessKind,
    },
    /// A privileged operation was executed at an insufficient privilege
    /// level (the classic `#GP`).
    GeneralProtection {
        /// The offending operation.
        what: &'static str,
    },
    /// A physical address fell outside installed memory.
    BadPhysAddr {
        /// The bad address.
        pa: u64,
    },
    /// Translation walked into a malformed table (e.g. an L2 entry
    /// pointing at a nonexistent frame).
    BadPageTable {
        /// What was malformed.
        detail: &'static str,
    },
    /// Double fault: a fault occurred while dispatching a fault and no
    /// handler was installed.  Terminal.
    DoubleFault,
    /// Machine check: used by the cluster layer to inject hardware
    /// failures (§6.5 failure prediction scenario).
    MachineCheck {
        /// What the platform reported.
        detail: &'static str,
    },
    /// Second-level (EPT) translation denied the access: the guest
    /// reached for a machine frame outside its extended page table.
    EptViolation {
        /// The offending machine frame.
        frame: u32,
    },
    /// A frame whose page_info revalidation was deferred by a lazy
    /// attach was touched *outside* an open admission window (the
    /// pending set was sealed with the frame still deferred).  In
    /// normal operation the resident VMM drains the validation fault
    /// transparently; this variant is the hard-fail guard rail for the
    /// invariant that no deferral survives the window it was opened in.
    ValidationPending {
        /// The machine frame still awaiting validation.
        frame: u32,
    },
}

impl Fault {
    /// True for faults that a page-fault handler can plausibly fix
    /// (demand paging, COW).
    pub fn is_page_fault(&self) -> bool {
        matches!(
            self,
            Fault::PageNotPresent { .. } | Fault::PageProtection { .. }
        )
    }

    /// The faulting virtual address, when there is one.
    pub fn fault_va(&self) -> Option<VirtAddr> {
        match self {
            Fault::PageNotPresent { va, .. } | Fault::PageProtection { va, .. } => Some(*va),
            _ => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PageNotPresent { va, access } => {
                write!(f, "page not present at {va:?} ({access:?})")
            }
            Fault::PageProtection { va, access } => {
                write!(f, "page protection violation at {va:?} ({access:?})")
            }
            Fault::GeneralProtection { what } => write!(f, "general protection fault: {what}"),
            Fault::BadPhysAddr { pa } => write!(f, "bad physical address {pa:#x}"),
            Fault::BadPageTable { detail } => write!(f, "malformed page table: {detail}"),
            Fault::DoubleFault => write!(f, "double fault"),
            Fault::MachineCheck { detail } => write!(f, "machine check: {detail}"),
            Fault::EptViolation { frame } => write!(f, "EPT violation on frame {frame}"),
            Fault::ValidationPending { frame } => {
                write!(f, "frame {frame} touched with validation still pending")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_fault_classification() {
        let f = Fault::PageNotPresent {
            va: VirtAddr(0x1000),
            access: AccessKind::Read,
        };
        assert!(f.is_page_fault());
        assert_eq!(f.fault_va(), Some(VirtAddr(0x1000)));

        let g = Fault::GeneralProtection { what: "wrmsr" };
        assert!(!g.is_page_fault());
        assert_eq!(g.fault_va(), None);
    }

    #[test]
    fn display_is_informative() {
        let f = Fault::GeneralProtection { what: "mov cr3" };
        assert!(f.to_string().contains("mov cr3"));
    }
}
