//! A per-CPU programmable interval timer.
//!
//! The paper's systems all run a 100 Hz timer; Mercury additionally arms
//! a retry timer when a mode switch finds the virtualization object busy
//! (§5.1.1).  This model keeps one deadline per CPU in simulated cycles;
//! `poll` fires the TIMER vector when the CPU's clock passes it.

use crate::costs::CYCLES_PER_US;
use crate::cpu::{vectors, Cpu};
use parking_lot::Mutex;
use std::sync::Arc;

/// Default period: 100 Hz = 10 ms.
pub const DEFAULT_PERIOD_CYCLES: u64 = 10_000 * CYCLES_PER_US;

struct PerCpu {
    next_deadline: u64,
    period: u64,
    enabled: bool,
}

/// The timer device.
pub struct SimTimer {
    percpu: Vec<Mutex<PerCpu>>,
    ticks_fired: Mutex<Vec<u64>>,
}

impl SimTimer {
    /// A timer for `num_cpus` CPUs, initially disabled.
    pub fn new(num_cpus: usize) -> Self {
        SimTimer {
            percpu: (0..num_cpus)
                .map(|_| {
                    Mutex::new(PerCpu {
                        next_deadline: 0,
                        period: DEFAULT_PERIOD_CYCLES,
                        enabled: false,
                    })
                })
                .collect(),
            ticks_fired: Mutex::new(vec![0; num_cpus]),
        }
    }

    /// Program the periodic timer for `cpu` starting from its current
    /// cycle count.
    pub fn start(&self, cpu: &Cpu, period_cycles: u64) {
        let mut p = self.percpu[cpu.id].lock();
        p.period = period_cycles;
        p.next_deadline = cpu.cycles() + period_cycles;
        p.enabled = true;
    }

    /// Stop the timer on `cpu`.
    pub fn stop(&self, cpu_id: usize) {
        self.percpu[cpu_id].lock().enabled = false;
    }

    /// One-shot: fire once after `delay_cycles` (used by Mercury's switch
    /// retry timer).  Subsequent firings resume the programmed period.
    pub fn arm_oneshot(&self, cpu: &Cpu, delay_cycles: u64) {
        let mut p = self.percpu[cpu.id].lock();
        p.next_deadline = cpu.cycles() + delay_cycles;
        p.enabled = true;
    }

    /// Check the deadline for `cpu`; assert TIMER if passed.  Returns
    /// true when an interrupt was raised.
    pub fn poll(&self, cpu: &Arc<Cpu>) -> bool {
        let mut p = self.percpu[cpu.id].lock();
        if p.enabled && cpu.cycles() >= p.next_deadline {
            let period = p.period.max(1);
            // Catch up without storms: schedule strictly in the future.
            while p.next_deadline <= cpu.cycles() {
                p.next_deadline += period;
            }
            drop(p);
            self.ticks_fired.lock()[cpu.id] += 1;
            cpu.raise(vectors::TIMER);
            true
        } else {
            false
        }
    }

    /// Number of ticks fired on `cpu_id` so far.
    pub fn ticks(&self, cpu_id: usize) -> u64 {
        self.ticks_fired.lock()[cpu_id]
    }

    /// The next programmed deadline for `cpu_id`, if the timer is
    /// enabled there.  The machine's idle fast-forward
    /// ([`crate::Machine::idle_until`]) stops at this cycle so the
    /// TIMER vector raises exactly where quantum-by-quantum ticking
    /// would have raised it.
    pub fn next_deadline(&self, cpu_id: usize) -> Option<u64> {
        let p = self.percpu[cpu_id].lock();
        p.enabled.then_some(p.next_deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_period() {
        let cpu = Arc::new(Cpu::new(0));
        let t = SimTimer::new(1);
        t.start(&cpu, 1_000);
        assert!(!t.poll(&cpu));
        cpu.tick(999);
        assert!(!t.poll(&cpu));
        cpu.tick(2);
        assert!(t.poll(&cpu));
        assert!(cpu.is_pending(vectors::TIMER));
        assert_eq!(t.ticks(0), 1);
    }

    #[test]
    fn periodic_refires() {
        let cpu = Arc::new(Cpu::new(0));
        let t = SimTimer::new(1);
        t.start(&cpu, 100);
        cpu.tick(150);
        assert!(t.poll(&cpu));
        cpu.tick(100);
        assert!(t.poll(&cpu));
        assert_eq!(t.ticks(0), 2);
    }

    #[test]
    fn catch_up_fires_once() {
        let cpu = Arc::new(Cpu::new(0));
        let t = SimTimer::new(1);
        t.start(&cpu, 100);
        cpu.tick(10_000);
        assert!(t.poll(&cpu));
        // Deadline advanced past now: immediate re-poll is quiet.
        assert!(!t.poll(&cpu));
    }

    #[test]
    fn next_deadline_tracks_programming() {
        let cpu = Arc::new(Cpu::new(0));
        let t = SimTimer::new(1);
        assert_eq!(t.next_deadline(0), None, "disabled timer has no deadline");
        t.start(&cpu, 1_000);
        assert_eq!(t.next_deadline(0), Some(1_000));
        cpu.tick(1_500);
        assert!(t.poll(&cpu));
        assert_eq!(t.next_deadline(0), Some(2_000), "catch-up reprograms");
        t.stop(0);
        assert_eq!(t.next_deadline(0), None);
    }

    #[test]
    fn oneshot_and_stop() {
        let cpu = Arc::new(Cpu::new(0));
        let t = SimTimer::new(1);
        t.arm_oneshot(&cpu, 50);
        cpu.tick(60);
        assert!(t.poll(&cpu));
        t.stop(0);
        cpu.tick(1_000_000);
        assert!(!t.poll(&cpu));
    }
}
