//! A write-only console device, useful for kernel log assertions.

use parking_lot::Mutex;

/// The console: an append-only byte sink.
#[derive(Default)]
pub struct Console {
    buf: Mutex<Vec<u8>>,
}

impl Console {
    /// A fresh, empty console.
    pub fn new() -> Console {
        Console::default()
    }

    /// Append bytes.
    pub fn write(&self, bytes: &[u8]) {
        self.buf.lock().extend_from_slice(bytes);
    }

    /// Append a string followed by a newline.
    pub fn write_line(&self, s: &str) {
        let mut buf = self.buf.lock();
        buf.extend_from_slice(s.as_bytes());
        buf.push(b'\n');
    }

    /// Snapshot the full log as UTF-8 (lossy).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock()).into_owned()
    }

    /// True if the log contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.contents().contains(needle)
    }

    /// Number of bytes logged.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_accumulate() {
        let c = Console::new();
        assert!(c.is_empty());
        c.write_line("nimbus booting");
        c.write(b"ok");
        assert!(c.contains("nimbus booting"));
        assert!(c.contents().ends_with("ok"));
        assert_eq!(c.len(), "nimbus booting\nok".len());
    }
}
