//! A sector-addressed disk with DMA into simulated physical memory.
//!
//! Requests are queued by a driver and completed by `pump`, which
//! performs the DMA, computes the request's service cost, and raises the
//! DISK vector.  The *driver* decides whom to charge the cost to — a
//! synchronous native driver charges the waiting CPU, while Xenon's
//! backend can complete writes early and absorb the flush cost off the
//! latency path (this asymmetry is what lets domU beat domain0 on dbench
//! in Fig. 3, as the paper notes).

use crate::costs;
use crate::cpu::vectors;
use crate::intc::InterruptController;
use crate::mem::{PhysAddr, PhysMemory};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Device → memory.
    Read,
    /// Memory → device.
    Write,
}

/// A queued disk request.
#[derive(Debug, Clone)]
pub struct DiskRequest {
    /// Driver-chosen identifier, echoed in the completion.
    pub id: u64,
    /// Direction.
    pub op: DiskOp,
    /// First sector.
    pub sector: u64,
    /// Number of sectors.
    pub count: u32,
    /// DMA target/source in physical memory.
    pub pa: PhysAddr,
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct DiskCompletion {
    /// The request id.
    pub id: u64,
    /// Cycles the device spent servicing it (seek + transfer).  Charged
    /// by whoever reaps the completion.
    pub cost: u64,
    /// Whether the DMA succeeded.
    pub ok: bool,
}

/// The disk device.
pub struct SimDisk {
    data: Mutex<Vec<u8>>,
    queue: Mutex<VecDeque<DiskRequest>>,
    completions: Mutex<VecDeque<DiskCompletion>>,
    /// CPU whose line the completion interrupt is routed to.
    irq_cpu: usize,
}

impl SimDisk {
    /// A zero-filled disk with `sectors` sectors, interrupting `irq_cpu`.
    pub fn new(sectors: u64, irq_cpu: usize) -> Self {
        SimDisk {
            data: Mutex::new(vec![0u8; sectors as usize * SECTOR_SIZE]),
            queue: Mutex::new(VecDeque::new()),
            completions: Mutex::new(VecDeque::new()),
            irq_cpu,
        }
    }

    /// Capacity in sectors.
    pub fn sectors(&self) -> u64 {
        (self.data.lock().len() / SECTOR_SIZE) as u64
    }

    /// Queue a request (the controller doorbell).
    pub fn submit(&self, req: DiskRequest) {
        self.queue.lock().push_back(req);
    }

    /// Number of requests waiting for the device.
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// Service every queued request: perform the DMA, post completions,
    /// and assert the DISK interrupt line once if anything completed.
    pub fn pump(&self, mem: &PhysMemory, intc: &InterruptController) -> usize {
        let mut done = 0;
        loop {
            let Some(req) = self.queue.lock().pop_front() else {
                break;
            };
            // Fault injection (compiled out by default): a wedged device
            // stalls on this request — it goes back to the head of the
            // queue and the pump stops, so nothing behind it completes
            // until the fault is resolved (a device timeout).
            if faultgen::disk_site!(req.id) {
                self.queue.lock().push_front(req);
                break;
            }
            let n_bytes = req.count as usize * SECTOR_SIZE;
            let off = req.sector as usize * SECTOR_SIZE;
            let cost = costs::DISK_REQUEST_BASE + costs::DISK_PER_SECTOR * req.count as u64;
            let ok = {
                let mut data = self.data.lock();
                if off + n_bytes > data.len() {
                    false
                } else {
                    match req.op {
                        DiskOp::Read => mem.write_bytes(req.pa, &data[off..off + n_bytes]).is_ok(),
                        DiskOp::Write => {
                            let mut buf = vec![0u8; n_bytes];
                            let r = mem.read_bytes(req.pa, &mut buf);
                            if r.is_ok() {
                                data[off..off + n_bytes].copy_from_slice(&buf);
                                true
                            } else {
                                false
                            }
                        }
                    }
                }
            };
            self.completions.lock().push_back(DiskCompletion {
                id: req.id,
                cost,
                ok,
            });
            done += 1;
        }
        if done > 0 {
            intc.raise(self.irq_cpu, vectors::DISK);
        }
        done
    }

    /// Reap one completion, if any.
    pub fn reap(&self) -> Option<DiskCompletion> {
        self.completions.lock().pop_front()
    }

    /// Direct backdoor access for formatting a filesystem image before
    /// boot (mkfs-style tooling, not a runtime path).
    pub fn write_raw(&self, sector: u64, bytes: &[u8]) {
        let off = sector as usize * SECTOR_SIZE;
        let mut data = self.data.lock();
        data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Direct backdoor read (test assertions).
    pub fn read_raw(&self, sector: u64, len: usize) -> Vec<u8> {
        let off = sector as usize * SECTOR_SIZE;
        self.data.lock()[off..off + len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use std::sync::Arc;

    fn rig() -> (SimDisk, PhysMemory, InterruptController, Arc<Cpu>) {
        let cpu = Arc::new(Cpu::new(0));
        let intc = InterruptController::new(vec![cpu.clone()]);
        (SimDisk::new(64, 0), PhysMemory::new(4), intc, cpu)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (disk, mem, intc, cpu) = rig();
        // Put a pattern in frame 1 and write it to sector 3.
        mem.write_bytes(PhysAddr(0x1000), &[7u8; SECTOR_SIZE])
            .unwrap();
        disk.submit(DiskRequest {
            id: 1,
            op: DiskOp::Write,
            sector: 3,
            count: 1,
            pa: PhysAddr(0x1000),
        });
        assert_eq!(disk.pump(&mem, &intc), 1);
        assert!(cpu.is_pending(vectors::DISK));
        let c = disk.reap().unwrap();
        assert!(c.ok && c.id == 1);
        assert_eq!(c.cost, costs::DISK_REQUEST_BASE + costs::DISK_PER_SECTOR);

        // Read it back into frame 2.
        disk.submit(DiskRequest {
            id: 2,
            op: DiskOp::Read,
            sector: 3,
            count: 1,
            pa: PhysAddr(0x2000),
        });
        disk.pump(&mem, &intc);
        assert!(disk.reap().unwrap().ok);
        let mut buf = vec![0u8; SECTOR_SIZE];
        mem.read_bytes(PhysAddr(0x2000), &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; SECTOR_SIZE]);
    }

    #[test]
    fn out_of_range_request_fails_cleanly() {
        let (disk, mem, intc, _cpu) = rig();
        disk.submit(DiskRequest {
            id: 9,
            op: DiskOp::Read,
            sector: 1_000_000,
            count: 1,
            pa: PhysAddr(0),
        });
        disk.pump(&mem, &intc);
        assert!(!disk.reap().unwrap().ok);
    }

    #[test]
    fn raw_backdoor() {
        let (disk, _, _, _) = rig();
        disk.write_raw(5, &[1, 2, 3]);
        assert_eq!(disk.read_raw(5, 3), vec![1, 2, 3]);
    }

    #[test]
    fn multiple_requests_complete_in_order() {
        let (disk, mem, intc, _) = rig();
        for i in 0..3 {
            disk.submit(DiskRequest {
                id: i,
                op: DiskOp::Read,
                sector: i,
                count: 1,
                pa: PhysAddr(0x1000),
            });
        }
        assert_eq!(disk.queued(), 3);
        disk.pump(&mem, &intc);
        for i in 0..3 {
            assert_eq!(disk.reap().unwrap().id, i);
        }
        assert!(disk.reap().is_none());
    }
}
