//! Simulated devices: timer, disk, NIC, console.
//!
//! Devices are passive queues plus cost accounting: a `pump` step moves
//! requests to completions and asserts interrupt lines.  The test bed
//! pumps devices at service points, which keeps runs deterministic.

pub mod console;
pub mod disk;
pub mod nic;
pub mod timer;

pub use console::Console;
pub use disk::{DiskCompletion, DiskOp, DiskRequest, SimDisk};
pub use nic::{EchoWire, LinkWire, Packet, SimNic, Wire};
pub use timer::SimTimer;
