//! A network interface attached to a pluggable wire.
//!
//! The wire abstraction lets the test bed connect a NIC to an in-process
//! echo responder (ping/iperf benchmarks), to another simulated machine's
//! NIC (cluster live migration), or leave it dangling.

use crate::cpu::vectors;
use crate::intc::InterruptController;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A network packet (opaque payload; the kernel's stack interprets it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Raw bytes on the wire.
    pub data: Bytes,
}

impl Packet {
    /// Wrap a byte vector.
    pub fn new(data: Vec<u8>) -> Packet {
        Packet {
            data: Bytes::from(data),
        }
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the packet empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Where transmitted packets go.
pub trait Wire: Send + Sync {
    /// Carry a packet to the other end.
    fn transmit(&self, pkt: Packet);
}

/// The NIC device.
pub struct SimNic {
    rx: Mutex<VecDeque<Packet>>,
    wire: Mutex<Option<Arc<dyn Wire>>>,
    irq_cpu: usize,
    tx_count: Mutex<u64>,
    rx_count: Mutex<u64>,
}

impl SimNic {
    /// A NIC interrupting `irq_cpu`, initially disconnected.
    pub fn new(irq_cpu: usize) -> Self {
        SimNic {
            rx: Mutex::new(VecDeque::new()),
            wire: Mutex::new(None),
            irq_cpu,
            tx_count: Mutex::new(0),
            rx_count: Mutex::new(0),
        }
    }

    /// Attach the wire.
    pub fn connect(&self, wire: Arc<dyn Wire>) {
        *self.wire.lock() = Some(wire);
    }

    /// Detach the wire (cable pull; used in failure injection).
    pub fn disconnect(&self) {
        *self.wire.lock() = None;
    }

    /// Transmit a packet.  Returns false if no wire is attached (packet
    /// dropped, as on a dead link).
    pub fn tx(&self, pkt: Packet) -> bool {
        *self.tx_count.lock() += 1;
        match self.wire.lock().as_ref() {
            Some(w) => {
                w.transmit(pkt);
                true
            }
            None => false,
        }
    }

    /// Deliver a packet into the receive queue and assert the NIC line.
    pub fn inject_rx(&self, pkt: Packet, intc: &InterruptController) {
        *self.rx_count.lock() += 1;
        self.rx.lock().push_back(pkt);
        intc.raise(self.irq_cpu, vectors::NIC);
    }

    /// Pop one received packet.
    pub fn rx(&self) -> Option<Packet> {
        self.rx.lock().pop_front()
    }

    /// Packets waiting in the receive queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.lock().len()
    }

    /// (transmitted, received) counters.
    pub fn stats(&self) -> (u64, u64) {
        (*self.tx_count.lock(), *self.rx_count.lock())
    }
}

/// Payload transform applied by an echo peer.
pub type PayloadTransform = Box<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// A wire that immediately bounces every packet back into a NIC's
/// receive queue — the stand-in for the Iperf/ping peer host on the LAN.
pub struct EchoWire {
    nic: Arc<SimNic>,
    intc: Arc<InterruptController>,
    /// Optional transform applied to echoed payloads (e.g. flip a
    /// request marker into a reply marker).
    transform: Option<PayloadTransform>,
}

impl EchoWire {
    /// Echo packets straight back into `nic`.
    pub fn new(nic: Arc<SimNic>, intc: Arc<InterruptController>) -> Self {
        EchoWire {
            nic,
            intc,
            transform: None,
        }
    }

    /// Echo with a payload transform.
    pub fn with_transform(
        nic: Arc<SimNic>,
        intc: Arc<InterruptController>,
        f: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        EchoWire {
            nic,
            intc,
            transform: Some(Box::new(f)),
        }
    }
}

impl Wire for EchoWire {
    fn transmit(&self, pkt: Packet) {
        let out = match &self.transform {
            Some(f) => Packet::new(f(&pkt.data)),
            None => pkt,
        };
        self.nic.inject_rx(out, &self.intc);
    }
}

/// A wire connecting two machines: packets transmitted here arrive in
/// the peer NIC's receive queue (used by the cluster crate for live
/// migration traffic).
pub struct LinkWire {
    peer: Arc<SimNic>,
    peer_intc: Arc<InterruptController>,
}

impl LinkWire {
    /// Build the half-link towards `peer`.
    pub fn new(peer: Arc<SimNic>, peer_intc: Arc<InterruptController>) -> Self {
        LinkWire { peer, peer_intc }
    }
}

impl Wire for LinkWire {
    fn transmit(&self, pkt: Packet) {
        self.peer.inject_rx(pkt, &self.peer_intc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;

    fn rig() -> (Arc<SimNic>, Arc<InterruptController>, Arc<Cpu>) {
        let cpu = Arc::new(Cpu::new(0));
        let intc = Arc::new(InterruptController::new(vec![cpu.clone()]));
        (Arc::new(SimNic::new(0)), intc, cpu)
    }

    #[test]
    fn tx_without_wire_drops() {
        let (nic, _, _) = rig();
        assert!(!nic.tx(Packet::new(vec![1])));
        assert_eq!(nic.stats().0, 1);
    }

    #[test]
    fn echo_wire_roundtrip() {
        let (nic, intc, cpu) = rig();
        nic.connect(Arc::new(EchoWire::new(nic.clone(), intc.clone())));
        assert!(nic.tx(Packet::new(vec![1, 2, 3])));
        assert!(cpu.is_pending(vectors::NIC));
        assert_eq!(nic.rx().unwrap().data.as_ref(), &[1, 2, 3]);
        assert!(nic.rx().is_none());
    }

    #[test]
    fn echo_transform_applies() {
        let (nic, intc, _) = rig();
        nic.connect(Arc::new(EchoWire::with_transform(
            nic.clone(),
            intc.clone(),
            |b| b.iter().rev().copied().collect(),
        )));
        nic.tx(Packet::new(vec![1, 2, 3]));
        assert_eq!(nic.rx().unwrap().data.as_ref(), &[3, 2, 1]);
    }

    #[test]
    fn link_wire_delivers_to_peer() {
        let (nic_a, _intc_a, _) = rig();
        let (nic_b, intc_b, cpu_b) = rig();
        nic_a.connect(Arc::new(LinkWire::new(nic_b.clone(), intc_b.clone())));
        nic_a.tx(Packet::new(vec![9]));
        assert_eq!(nic_b.rx_pending(), 1);
        assert!(cpu_b.is_pending(vectors::NIC));
    }

    #[test]
    fn disconnect_breaks_link() {
        let (nic, intc, _) = rig();
        nic.connect(Arc::new(EchoWire::new(nic.clone(), intc.clone())));
        nic.disconnect();
        assert!(!nic.tx(Packet::new(vec![1])));
        assert_eq!(nic.rx_pending(), 0);
    }
}
