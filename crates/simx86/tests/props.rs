//! Property-based tests for the machine substrate's core data
//! structures: paging arithmetic, physical memory, the TLB against a
//! reference model, and the frame allocator.

use proptest::prelude::*;
use simx86::mem::{FrameNum, PhysAddr, PhysMemory};
use simx86::paging::{Pte, VirtAddr, PAGE_SIZE, VA_TOP};
use simx86::tlb::Tlb;
use simx86::{Cpu, FrameAllocator};
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    /// VA decomposition and recomposition are inverse.
    #[test]
    fn va_roundtrip(raw in 0u64..VA_TOP) {
        let va = VirtAddr(raw);
        let back = VirtAddr::from_indices(va.l2_index(), va.l1_index(), va.page_offset());
        prop_assert_eq!(va, back);
        prop_assert_eq!(va.page_base().0 + va.page_offset(), va.0);
        prop_assert_eq!(va.vpn(), va.0 / PAGE_SIZE);
    }

    /// PTE frame/flag encoding is lossless for every flag subset.
    #[test]
    fn pte_encoding_roundtrip(frame in 0u32..0x0fff_ffff, flags in 0u64..1024) {
        let flags = flags & !1; // PRESENT is implied by new()
        let pte = Pte::new(frame, flags);
        prop_assert!(pte.present());
        prop_assert_eq!(pte.frame(), frame);
        prop_assert_eq!(pte.writable(), flags & Pte::WRITABLE != 0);
        prop_assert_eq!(pte.cow(), flags & Pte::COW != 0);
        prop_assert_eq!(pte.user(), flags & Pte::USER != 0);
        // with/without are inverse.
        prop_assert_eq!(
            pte.with_flags(Pte::DIRTY).without_flags(Pte::DIRTY),
            pte.without_flags(Pte::DIRTY)
        );
    }

    /// Byte-granularity memory access behaves like a flat byte array.
    #[test]
    fn memory_bytes_match_reference(
        writes in proptest::collection::vec((0u64..8192 - 64, proptest::collection::vec(any::<u8>(), 1..64)), 1..16)
    ) {
        let mem = PhysMemory::new(2);
        let mut model = vec![0u8; 8192];
        for (off, data) in &writes {
            mem.write_bytes(PhysAddr(*off), data).unwrap();
            model[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let mut out = vec![0u8; 8192];
        mem.read_bytes(PhysAddr(0), &mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    /// The TLB never returns a stale translation after invalidate/flush
    /// and never returns a wrong frame (checked against a HashMap model).
    #[test]
    fn tlb_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u64..32, 0u32..1024), 1..200)
    ) {
        let mut tlb = Tlb::new();
        let mut model: HashMap<u64, Pte> = HashMap::new();
        for (op, vpn, frame) in ops {
            match op {
                0 => {
                    let pte = Pte::new(frame, Pte::WRITABLE);
                    tlb.insert(vpn, pte);
                    model.insert(vpn, pte);
                }
                1 => {
                    tlb.invalidate(vpn);
                    model.remove(&vpn);
                }
                2 => {
                    tlb.flush();
                    model.retain(|_, p| p.global());
                }
                _ => {
                    // Lookup may miss (capacity evictions) but must never
                    // contradict the model.
                    if let Some(got) = tlb.lookup(vpn) {
                        prop_assert_eq!(Some(&got), model.get(&vpn));
                    }
                }
            }
        }
    }

    /// The frame allocator never double-allocates and never loses frames.
    #[test]
    fn allocator_conserves_frames(ops in proptest::collection::vec(any::<bool>(), 1..128)) {
        let total = 64usize;
        let alloc = FrameAllocator::new(total);
        let cpu = Arc::new(Cpu::new(0));
        let mut held: Vec<FrameNum> = Vec::new();
        for take in ops {
            if take {
                if let Some(f) = alloc.alloc(&cpu) {
                    prop_assert!(!held.contains(&f), "double allocation of {f:?}");
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                alloc.free(f);
            }
        }
        prop_assert_eq!(alloc.available() + held.len(), total - 1); // frame 0 reserved
    }
}
