//! Property-based tests for the event clock (DESIGN.md §14): the
//! fast-forward must be invisible to every simulated quantity.  Two
//! clocks fed the identical schedule — one skipping, one quantum
//! ticking — must pop the same events at the same cycles in the same
//! order, and charge their CPUs identically, for *any* schedule.

use proptest::prelude::*;
use simx86::evclock::{EvClock, EventKind};
use simx86::Cpu;
use std::sync::Arc;

/// A generated schedule entry: due cycle, target CPU, kind selector.
/// Due cycles are drawn from a small range so same-cycle collisions —
/// the interesting case for ordering — are common, and the CPU index
/// spans a 4-way machine so cross-CPU events collide too.
fn entries() -> impl Strategy<Value = Vec<(u64, usize, u8)>> {
    proptest::collection::vec((0u64..2_000, 0usize..4, 0u8..6), 1..64)
}

fn kind_of(k: u8) -> EventKind {
    match k {
        0 => EventKind::RequestArrival,
        1 => EventKind::TimerDeadline,
        2 => EventKind::IrqDeadline,
        3 => EventKind::WatchdogRetry,
        4 => EventKind::ScrubBudget,
        _ => EventKind::FaultDue,
    }
}

/// One popped event: cycles at pop, seq, target CPU, kind.
type Popped = (u64, u64, Option<usize>, EventKind);

/// Feed `plan` to a fresh clock in the given skip mode and walk a CPU
/// through the whole horizon, recording every popped event.
fn pop_trace(plan: &[(u64, usize, u8)], skip: bool) -> (Vec<Popped>, u64) {
    let clock = EvClock::new();
    clock.set_skip(skip);
    let cpu = Arc::new(Cpu::new(0));
    for &(due, target_cpu, k) in plan {
        clock.schedule_for(target_cpu, due, kind_of(k));
    }
    let mut trace = Vec::new();
    clock.advance_until(&cpu, 2_500, |cpu, e| {
        trace.push((cpu.cycles(), e.seq, e.cpu, e.kind));
    });
    (trace, cpu.cycles())
}

proptest! {
    /// Skipping never reorders events — including events due at the
    /// same cycle on different CPUs, which must pop in schedule order
    /// in both modes (the `(due, seq)` contract).
    #[test]
    fn skip_mode_never_reorders_events(plan in entries()) {
        let (on, cycles_on) = pop_trace(&plan, true);
        let (off, cycles_off) = pop_trace(&plan, false);
        prop_assert_eq!(&on, &off, "pop traces must be skip-invariant");
        prop_assert_eq!(cycles_on, cycles_off);
        prop_assert_eq!(on.len(), plan.len(), "every event pops exactly once");
        // Within the one trace: due cycles non-decreasing, and events
        // popped at the same cycle carry ascending sequence numbers —
        // i.e. schedule order, regardless of which CPU they target.
        for pair in on.windows(2) {
            let (c0, s0, ..) = pair[0];
            let (c1, s1, ..) = pair[1];
            prop_assert!(c0 <= c1, "pop cycles must be monotonic");
            if c0 == c1 {
                prop_assert!(s0 < s1, "same-cycle events must keep schedule order");
            }
        }
    }

    /// `advance` charges bit-identical totals in both modes for any
    /// sequence of forward (or backward, which are free) targets.
    #[test]
    fn accounting_is_neutral_under_random_targets(
        targets in proptest::collection::vec(0u64..100_000, 1..32)
    ) {
        let on = EvClock::new();
        on.set_skip(true);
        let off = EvClock::new();
        off.set_skip(false);
        let cpu_on = Arc::new(Cpu::new(0));
        let cpu_off = Arc::new(Cpu::new(0));
        for &t in &targets {
            let a = on.advance(&cpu_on, t);
            let b = off.advance(&cpu_off, t);
            prop_assert_eq!(a, b, "charged cycles must match per span");
            prop_assert_eq!(cpu_on.cycles(), cpu_off.cycles());
        }
        prop_assert_eq!(on.spans_advanced(), off.spans_advanced());
    }
}
