//! # faultgen — deterministic fault injection for the Mercury suite
//!
//! Mercury's dependability story (paper §2, §6.2/§6.3) is *reactive*:
//! when hardware misbehaves, the VMM is attached underneath the running
//! OS to isolate and recover, then detached once the danger passes.
//! faultgen supplies the misbehaviour: a seeded, deterministic engine
//! that injects
//!
//! * memory bit-flips in simulated DRAM frames,
//! * device timeouts (a wedged disk) and stuck interrupt lines,
//! * spurious interrupts,
//! * corrupted descriptor-table entries, and
//! * failed / slow hypercalls,
//!
//! through hook macros compiled into `simx86` and `xenon`.  The hooks
//! are feature-gated exactly like merctrace's probes: with `enabled`
//! off (the default, and what tier-1 `cargo test` builds) every hook
//! macro expands to its no-fault constant *without evaluating its
//! arguments*, so the instrumented crates carry no injection code at
//! all — `tests/faultgen_overhead.rs` pins that down by asserting
//! cycle- and state-identical execution.
//!
//! ## Determinism by seed
//!
//! A campaign plan is a list of [`FaultSpec`]s generated from a
//! [`SplitMix64`](rng::SplitMix64) seed; each fault fires the first
//! time its matching hardware hook runs at or after `due_cycle` on the
//! *simulated* cycle clock.  No host time, no host randomness: two runs
//! with the same seed produce bit-identical fault timings, which the
//! `fault_campaign` binary verifies by running every campaign twice.
//!
//! ## Control plane
//!
//! Arming, draining detection signals and resolving perturbations are
//! always compiled (only the hook call sites are gated), so a watchdog
//! builds the same way in every configuration:
//!
//! ```
//! use faultgen::{FaultSpec, FaultTarget};
//!
//! faultgen::reset();
//! faultgen::arm(vec![FaultSpec {
//!     id: 1,
//!     due_cycle: 1_000,
//!     target: FaultTarget::MemWord { frame: 40, word: 12, bit: 9 },
//! }]);
//! assert!(faultgen::is_armed());
//! assert_eq!(faultgen::outstanding(), 1);
//! // Hardware hooks fire the fault when its site runs; the watchdog
//! // then drains the signal and scrubs the flipped bit.
//! for signal in faultgen::drain_signals() {
//!     faultgen::resolve(signal.fault_id);
//! }
//! faultgen::reset();
//! ```
//!
//! The detection → attach → recover → detach lifecycle built on top of
//! this, and the full fault taxonomy, are documented in DESIGN.md §12.

#![deny(missing_docs)]

pub mod injector;
pub mod plan;
pub mod rng;

pub use injector::{arm, disarm, drain_signals, is_armed, outstanding, reset, resolve, stats};
pub use injector::{FaultSignal, InjectorStats};
pub use plan::{FaultClass, FaultSpec, FaultTarget};

/// `true` when the `enabled` feature compiled the injection hooks in.
///
/// Tier-1 builds assert this is `false`: fault hooks must be
/// unreachable (not merely disarmed) in default builds.
pub const ENABLED: bool = cfg!(feature = "enabled");

// ---------------------------------------------------------------------------
// Hook macros, live variants: expand to the runtime entry points.
// ---------------------------------------------------------------------------

/// Memory-read injection site: `mem_read_site!(cpu_index, now_cycles,
/// frame_u32, word_index_u64)` → XOR mask to apply to the word (0 = no
/// fault).
///
/// Expands to `0u64` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! mem_read_site {
    ($cpu:expr, $cycles:expr, $frame:expr, $word:expr) => {
        $crate::injector::hooks::mem_read_site(
            $cpu as usize,
            $cycles as u64,
            $frame as u32,
            $word as u64,
        )
    };
}

/// Disk-pump injection site: `disk_site!(request_id)` → `true` if the
/// device is wedged on this request and the pump must stall.
///
/// Expands to `false` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! disk_site {
    ($req:expr) => {
        $crate::injector::hooks::disk_site($req as u64)
    };
}

/// Interrupt-service injection site: `irq_site!(cpu_index,
/// now_cycles)` → `Some(vector)` to assert (spurious one-shot or stuck
/// re-assert), else `None`.
///
/// Expands to `None` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! irq_site {
    ($cpu:expr, $cycles:expr) => {
        $crate::injector::hooks::irq_site($cpu as usize, $cycles as u64)
    };
}

/// Gate-dispatch injection site: `gate_site!(cpu_index, now_cycles,
/// vector)` → `true` if the descriptor is corrupted and the dispatch
/// must be swallowed.
///
/// Expands to `false` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! gate_site {
    ($cpu:expr, $cycles:expr, $vector:expr) => {
        $crate::injector::hooks::gate_site($cpu as usize, $cycles as u64, $vector as u8)
    };
}

/// Hypercall injection site: `hypercall_site!(cpu_index, now_cycles)`
/// → penalty cycles to charge the caller (0 = no fault).
///
/// Expands to `0u64` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! hypercall_site {
    ($cpu:expr, $cycles:expr) => {
        $crate::injector::hooks::hypercall_site($cpu as usize, $cycles as u64)
    };
}

/// VMM-state injection site: `vmm_site!(cpu_index, now_cycles)` →
/// `Some(frame)` whose accounting record the hypervisor must wipe
/// (the `VmmCorrupt` class), else `None`.
///
/// Expands to `None` — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! vmm_site {
    ($cpu:expr, $cycles:expr) => {
        $crate::injector::hooks::vmm_site($cpu as usize, $cycles as u64)
    };
}

// ---------------------------------------------------------------------------
// Hook macros, compiled-out variants: constant results, arguments
// dropped unevaluated (the trailing empty repetition swallows them).
// ---------------------------------------------------------------------------

/// Compiled-out [`mem_read_site!`]: `0u64`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! mem_read_site {
    ($($args:expr),* $(,)?) => {
        0u64
    };
}

/// Compiled-out [`disk_site!`]: `false`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! disk_site {
    ($($args:expr),* $(,)?) => {
        false
    };
}

/// Compiled-out [`irq_site!`]: `None`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! irq_site {
    ($($args:expr),* $(,)?) => {
        ::core::option::Option::<u8>::None
    };
}

/// Compiled-out [`gate_site!`]: `false`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! gate_site {
    ($($args:expr),* $(,)?) => {
        false
    };
}

/// Compiled-out [`hypercall_site!`]: `0u64`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! hypercall_site {
    ($($args:expr),* $(,)?) => {
        0u64
    };
}

/// Compiled-out [`vmm_site!`]: `None`, arguments unevaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! vmm_site {
    ($($args:expr),* $(,)?) => {
        ::core::option::Option::<u32>::None
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_tracks_feature() {
        assert_eq!(crate::ENABLED, cfg!(feature = "enabled"));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_macros_yield_no_fault_constants_without_evaluating() {
        let evaluated = std::cell::Cell::new(0u32);
        let _bump = || {
            evaluated.set(evaluated.get() + 1);
            0u64
        };
        assert_eq!(mem_read_site!(_bump(), _bump(), _bump(), _bump()), 0);
        assert!(!disk_site!(_bump()));
        assert_eq!(irq_site!(_bump(), _bump()), None);
        assert!(!gate_site!(_bump(), _bump(), _bump()));
        assert_eq!(hypercall_site!(_bump(), _bump()), 0);
        assert_eq!(vmm_site!(_bump(), _bump()), None);
        assert_eq!(evaluated.get(), 0, "a disabled hook evaluated its arguments");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_macros_route_to_the_injector() {
        use crate::{FaultSpec, FaultTarget};
        crate::reset();
        crate::arm(vec![FaultSpec {
            id: 9,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame: 3,
                word: 1,
                bit: 0,
            },
        }]);
        assert_eq!(mem_read_site!(0usize, 10u64, 3u32, 1u64), 1);
        assert_eq!(crate::drain_signals().len(), 1);
        crate::reset();
    }
}
