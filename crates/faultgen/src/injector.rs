//! The process-wide injector: armed plan, fired-fault state, and the
//! signal queue the watchdog drains.
//!
//! Mirrors the merctrace layout: one global, lock-protected state block
//! behind an atomic `armed` fast-path flag.  The *control plane*
//! ([`arm`], [`drain_signals`], [`resolve`], …) is always compiled so
//! consumers like the cluster watchdog build identically with or
//! without the `enabled` feature; only the [`hooks`] *call sites*
//! inside simx86/xenon are feature-gated macros.

use crate::plan::{FaultClass, FaultSpec, FaultTarget};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A fired fault, as observed by the simulated hardware's error
/// reporting (ECC syndrome register, MCE bank, device status): what
/// fired, where, and on which simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSignal {
    /// The plan id of the fault that fired.
    pub fault_id: u64,
    /// Its class.
    pub class: FaultClass,
    /// Simulated cycle at which the fault was applied.  For clock-less
    /// sites (the disk pump) this is the spec's `due_cycle`.
    pub injected_cycle: u64,
    /// The full target, so a recovery agent can undo the damage (for a
    /// bit flip this plays the role of the ECC syndrome: frame, word
    /// and flipped bit are enough to scrub the cell).
    pub target: FaultTarget,
}

/// Injector bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Faults armed and not yet fired.
    pub pending: usize,
    /// Faults fired and still perturbing state (stuck lines, wedged
    /// devices, corrupted descriptors).
    pub active: usize,
    /// Signals fired and not yet drained.
    pub signals_waiting: usize,
    /// Total faults fired since the last [`reset`].
    pub fired: u64,
    /// Faults explicitly resolved by a recovery agent.
    pub resolved: u64,
}

#[derive(Default)]
struct State {
    pending: Vec<FaultSpec>,
    active: Vec<FaultSpec>,
    signals: VecDeque<FaultSignal>,
    fired_ids: BTreeSet<u64>,
    fired: u64,
    resolved: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> MutexGuard<'static, State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fire(st: &mut State, spec: FaultSpec, injected_cycle: u64, stays_active: bool) {
    st.signals.push_back(FaultSignal {
        fault_id: spec.id,
        class: spec.class(),
        injected_cycle,
        target: spec.target,
    });
    st.fired_ids.insert(spec.id);
    st.fired += 1;
    if stays_active {
        st.active.push(spec);
    }
}

/// Arm `plan` (appending to any already-armed faults) and enable the
/// hooks.  With the `enabled` feature off this records the plan but no
/// hook ever consults it, so execution is unchanged — the property
/// `tests/faultgen_overhead.rs` pins down.
pub fn arm(plan: Vec<FaultSpec>) {
    let mut st = state();
    st.pending.extend(plan);
    ARMED.store(true, Ordering::Release);
}

/// Disable the hooks without discarding state.  Wedged devices and
/// stuck lines stop perturbing immediately.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Are the hooks currently live?
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Drop every pending fault, active perturbation, queued signal and
/// counter, and disarm.  Campaign runs call this between scenarios so
/// each scenario is a pure function of its own plan.
pub fn reset() {
    ARMED.store(false, Ordering::Release);
    *state() = State::default();
}

/// Take every signal fired since the last drain, oldest first.  This is
/// the watchdog's detection point: latency is measured from the
/// signal's `injected_cycle` to the drain-time cycle counter.
pub fn drain_signals() -> Vec<FaultSignal> {
    state().signals.drain(..).collect()
}

/// Resolve a fired fault: clear its lingering perturbation (unwedge the
/// device, unstick the line, mark the descriptor rewritten).  Returns
/// `true` if `fault_id` had actually fired — transient faults
/// (bit flips, spurious interrupts, hypercall faults) have nothing to
/// clear but still acknowledge resolution.
pub fn resolve(fault_id: u64) -> bool {
    let mut st = state();
    st.active.retain(|s| s.id != fault_id);
    if st.fired_ids.remove(&fault_id) {
        st.resolved += 1;
        true
    } else {
        false
    }
}

/// Faults that have not yet fired plus perturbations still active.
pub fn outstanding() -> usize {
    let st = state();
    st.pending.len() + st.active.len()
}

/// The earliest `due_cycle` among faults that have not fired yet, if
/// any.  Campaign drivers register this as an event-clock deadline
/// (`simx86::evclock`, kind `FaultDue`) so an idle span between service
/// points fast-forwards *to* the next planted fault instead of past it
/// — the hook still fires at its planned cycle, in either skip mode.
pub fn earliest_due() -> Option<u64> {
    let st = state();
    st.pending.iter().map(|f| f.due_cycle).min()
}

/// Current bookkeeping counters.
pub fn stats() -> InjectorStats {
    let st = state();
    InjectorStats {
        pending: st.pending.len(),
        active: st.active.len(),
        signals_waiting: st.signals.len(),
        fired: st.fired,
        resolved: st.resolved,
    }
}

/// The hardware-side hook entry points.
///
/// These are what the [hook macros](crate) expand to when the `enabled`
/// feature is on.  They are ordinary functions so faultgen's own tests
/// (and curious callers) can exercise the engine without the feature,
/// but production call sites must go through the macros — that is what
/// keeps the disabled build zero-cost and what the volint `FAULT-MASK`
/// rule audits for reachability from the switch critical section.
pub mod hooks {
    use super::*;

    /// Memory-read site (`PhysMemory::read_word`).  Returns the XOR
    /// mask to apply (and persist) to the word just read, or 0.
    pub fn mem_read_site(_cpu: usize, cycles: u64, frame: u32, word: u64) -> u64 {
        if !is_armed() {
            return 0;
        }
        let mut st = state();
        let idx = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::MemWord { frame: f, word: w, .. }
                    if f == frame && w as u64 == word)
        });
        let Some(idx) = idx else { return 0 };
        let spec = st.pending.remove(idx);
        fire(&mut st, spec, cycles, false);
        match spec.target {
            FaultTarget::MemWord { bit, .. } => 1u64 << bit,
            _ => 0,
        }
    }

    /// Disk-pump site.  Returns `true` if the device is wedged on this
    /// request (the pump must stall instead of servicing it).
    pub fn disk_site(req_id: u64) -> bool {
        if !is_armed() {
            return false;
        }
        let mut st = state();
        if st
            .active
            .iter()
            .any(|s| matches!(s.target, FaultTarget::DiskRequest { req_id: r } if r == req_id))
        {
            return true;
        }
        let idx = st.pending.iter().position(
            |s| matches!(s.target, FaultTarget::DiskRequest { req_id: r } if r == req_id),
        );
        let Some(idx) = idx else { return false };
        let spec = st.pending.remove(idx);
        fire(&mut st, spec, spec.due_cycle, true);
        true
    }

    /// Interrupt-service site (`Cpu::service_pending`).  Returns a
    /// vector to assert on this CPU: a due spurious interrupt fires
    /// once; a stuck line re-asserts on every call until resolved.
    pub fn irq_site(cpu: usize, cycles: u64) -> Option<u8> {
        if !is_armed() {
            return None;
        }
        let mut st = state();
        if let Some(idx) = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::Spurious { cpu: c, .. } if c == cpu)
        }) {
            let spec = st.pending.remove(idx);
            fire(&mut st, spec, cycles, false);
            return match spec.target {
                FaultTarget::Spurious { vector, .. } => Some(vector),
                _ => None,
            };
        }
        if let Some(idx) = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::IrqLine { cpu: c, .. } if c == cpu)
        }) {
            let spec = st.pending.remove(idx);
            fire(&mut st, spec, cycles, true);
            return match spec.target {
                FaultTarget::IrqLine { vector, .. } => Some(vector),
                _ => None,
            };
        }
        st.active.iter().find_map(|s| match s.target {
            FaultTarget::IrqLine { cpu: c, vector } if c == cpu => Some(vector),
            _ => None,
        })
    }

    /// Gate-dispatch site (`Cpu::dispatch`).  Returns `true` if the
    /// descriptor for `vector` on this CPU is corrupted — the dispatch
    /// must be swallowed, as on hardware where an unreadable gate
    /// cannot deliver.
    pub fn gate_site(cpu: usize, cycles: u64, vector: u8) -> bool {
        if !is_armed() {
            return false;
        }
        let mut st = state();
        if st.active.iter().any(
            |s| matches!(s.target, FaultTarget::IdtGate { cpu: c, vector: v } if c == cpu && v == vector),
        ) {
            return true;
        }
        let idx = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::IdtGate { cpu: c, vector: v }
                    if c == cpu && v == vector)
        });
        let Some(idx) = idx else { return false };
        let spec = st.pending.remove(idx);
        fire(&mut st, spec, cycles, true);
        true
    }

    /// VMM-state site (`Hypervisor::count_hypercall` — the hypervisor's
    /// common service point).  Returns the frame whose accounting
    /// record the VMM must wipe, or `None`.  The perturbation stays
    /// active until resolved: the damage lives in the incumbent's
    /// tables, and only a live-update (or explicit repair) clears it.
    pub fn vmm_site(cpu: usize, cycles: u64) -> Option<u32> {
        if !is_armed() {
            return None;
        }
        let mut st = state();
        let idx = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::VmmState { cpu: c, .. } if c == cpu)
        })?;
        let spec = st.pending.remove(idx);
        fire(&mut st, spec, cycles, true);
        match spec.target {
            FaultTarget::VmmState { frame, .. } => Some(frame),
            _ => None,
        }
    }

    /// Hypercall site (`Hypervisor::count_hypercall`).  Returns the
    /// penalty in cycles to charge the calling CPU (retry after a
    /// transient failure, or the slow service path), or 0.
    pub fn hypercall_site(cpu: usize, cycles: u64) -> u64 {
        if !is_armed() {
            return 0;
        }
        let mut st = state();
        let idx = st.pending.iter().position(|s| {
            s.due_cycle <= cycles
                && matches!(s.target, FaultTarget::Hypercall { cpu: c, .. } if c == cpu)
        });
        let Some(idx) = idx else { return 0 };
        let spec = st.pending.remove(idx);
        fire(&mut st, spec, cycles, false);
        match spec.target {
            FaultTarget::Hypercall { penalty_cycles, .. } => penalty_cycles,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::hooks::*;
    use super::*;

    // The injector is process-global state; every test serializes on
    // this lock and resets around itself so they compose.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spec(id: u64, due_cycle: u64, target: FaultTarget) -> FaultSpec {
        FaultSpec {
            id,
            due_cycle,
            target,
        }
    }

    #[test]
    fn earliest_due_tracks_the_pending_plan() {
        let _g = serial();
        reset();
        assert_eq!(earliest_due(), None);
        arm(vec![
            spec(
                1,
                900,
                FaultTarget::MemWord {
                    frame: 1,
                    word: 0,
                    bit: 0,
                },
            ),
            spec(
                2,
                300,
                FaultTarget::MemWord {
                    frame: 2,
                    word: 0,
                    bit: 1,
                },
            ),
        ]);
        assert_eq!(earliest_due(), Some(300));
        // Fire the earlier fault: the next deadline moves up.
        assert_ne!(mem_read_site(0, 300, 2, 0), 0);
        assert_eq!(earliest_due(), Some(900));
        reset();
        assert_eq!(earliest_due(), None);
    }

    #[test]
    fn mem_flip_fires_once_when_due() {
        let _g = serial();
        reset();
        arm(vec![spec(
            1,
            100,
            FaultTarget::MemWord {
                frame: 7,
                word: 3,
                bit: 5,
            },
        )]);
        // Not due yet; wrong word; wrong frame.
        assert_eq!(mem_read_site(0, 50, 7, 3), 0);
        assert_eq!(mem_read_site(0, 200, 7, 4), 0);
        assert_eq!(mem_read_site(0, 200, 8, 3), 0);
        // Due and matching: fires exactly once.
        assert_eq!(mem_read_site(0, 200, 7, 3), 1 << 5);
        assert_eq!(mem_read_site(0, 300, 7, 3), 0);
        let sig = drain_signals();
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].fault_id, 1);
        assert_eq!(sig[0].class, FaultClass::MemBitFlip);
        assert_eq!(sig[0].injected_cycle, 200);
        assert!(resolve(1));
        assert!(!resolve(1), "second resolve is a no-op");
        reset();
    }

    #[test]
    fn disk_wedges_until_resolved() {
        let _g = serial();
        reset();
        arm(vec![spec(2, 0, FaultTarget::DiskRequest { req_id: 42 })]);
        assert!(!disk_site(41));
        assert!(disk_site(42));
        assert!(disk_site(42), "stays wedged");
        assert_eq!(drain_signals().len(), 1);
        assert_eq!(stats().active, 1);
        assert!(resolve(2));
        assert!(!disk_site(42), "unwedged after resolve");
        reset();
    }

    #[test]
    fn stuck_line_reasserts_and_spurious_fires_once() {
        let _g = serial();
        reset();
        arm(vec![
            spec(3, 10, FaultTarget::Spurious { cpu: 0, vector: 32 }),
            spec(4, 20, FaultTarget::IrqLine { cpu: 0, vector: 33 }),
        ]);
        assert_eq!(irq_site(1, 100), None, "other cpu untouched");
        assert_eq!(irq_site(0, 15), Some(32), "spurious first");
        assert_eq!(irq_site(0, 25), Some(33), "then the stuck line");
        assert_eq!(irq_site(0, 30), Some(33), "which re-asserts");
        assert!(resolve(4));
        assert_eq!(irq_site(0, 40), None);
        assert_eq!(drain_signals().len(), 2);
        reset();
    }

    #[test]
    fn gate_swallows_until_resolved_and_hypercall_charges_penalty() {
        let _g = serial();
        reset();
        arm(vec![
            spec(5, 0, FaultTarget::IdtGate { cpu: 0, vector: 34 }),
            spec(
                6,
                50,
                FaultTarget::Hypercall {
                    cpu: 0,
                    penalty_cycles: 900,
                    slow: false,
                },
            ),
        ]);
        assert!(!gate_site(0, 10, 33), "wrong vector");
        assert!(gate_site(0, 10, 34));
        assert!(gate_site(0, 20, 34), "still corrupted");
        assert!(resolve(5));
        assert!(!gate_site(0, 30, 34), "repaired");
        assert_eq!(hypercall_site(0, 10), 0, "not due");
        assert_eq!(hypercall_site(0, 60), 900);
        assert_eq!(hypercall_site(0, 70), 0, "one-shot");
        assert_eq!(drain_signals().len(), 2);
        reset();
    }

    #[test]
    fn vmm_state_fires_once_and_stays_active_until_resolved() {
        let _g = serial();
        reset();
        arm(vec![spec(8, 100, FaultTarget::VmmState { cpu: 0, frame: 77 })]);
        assert_eq!(vmm_site(0, 50), None, "not due");
        assert_eq!(vmm_site(1, 200), None, "other cpu untouched");
        assert_eq!(vmm_site(0, 200), Some(77));
        assert_eq!(vmm_site(0, 300), None, "the wipe itself is one-shot");
        // ... but the damage lingers as an active perturbation until a
        // recovery agent (the live-update path) resolves it.
        assert_eq!(stats().active, 1);
        let sig = drain_signals();
        assert_eq!(sig.len(), 1);
        assert_eq!(sig[0].class, FaultClass::VmmCorrupt);
        assert!(resolve(8));
        assert_eq!(stats().active, 0);
        reset();
    }

    #[test]
    fn disarm_freezes_hooks_and_reset_clears() {
        let _g = serial();
        reset();
        arm(vec![spec(7, 0, FaultTarget::DiskRequest { req_id: 1 })]);
        disarm();
        assert!(!is_armed());
        assert!(!disk_site(1), "disarmed hooks are inert");
        assert_eq!(outstanding(), 1, "plan survives disarm");
        reset();
        assert_eq!(outstanding(), 0);
        assert_eq!(stats(), InjectorStats::default());
    }
}
