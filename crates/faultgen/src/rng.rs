//! The campaign PRNG: SplitMix64.
//!
//! Fault campaigns must be reproducible from a single seed (DESIGN.md
//! §12 "determinism by seed"), so faultgen carries its own tiny
//! generator instead of depending on an external crate whose stream
//! could change between versions.  SplitMix64 is the 64-bit mixer from
//! Steele, Lea & Flood's *Fast Splittable Pseudorandom Number
//! Generators* — one multiply-xor-shift chain per draw, full period,
//! and a fixed, documented output stream.

/// A seeded SplitMix64 generator.
///
/// ```
/// use faultgen::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// let draws: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
/// assert_eq!(draws, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
/// assert_ne!(draws[0], draws[1]);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole stream is a function of `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, bound)`.  `bound` must be nonzero.
    ///
    /// Uses the widening-multiply reduction (Lemire), which is exact
    /// enough for campaign scheduling and keeps the stream consumption
    /// at one draw per call — important for reproducibility.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A draw in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn known_first_draw() {
        // Pin the stream: a silent change to the mixer would silently
        // change every archived campaign.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }
}
