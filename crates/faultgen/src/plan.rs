//! Fault taxonomy and campaign plans.
//!
//! A campaign is a list of [`FaultSpec`]s, each naming *what* breaks
//! ([`FaultTarget`]) and *when* it becomes due (`due_cycle`, on the
//! simulated cycle clock).  The injector fires a due fault the first
//! time the matching hardware hook runs at or after its due cycle, so
//! the whole campaign is a pure function of the plan — and the plan is
//! a pure function of the seed that generated it (DESIGN.md §12).

/// The fault classes the engine can inject (DESIGN.md §12 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// A single-bit flip in a simulated DRAM word (ECC-detectable).
    MemBitFlip,
    /// A disk request the device wedges on instead of completing.
    DeviceTimeout,
    /// An interrupt line that re-asserts after every service (stuck).
    StuckIrq,
    /// A one-shot interrupt nobody asked for.
    SpuriousIrq,
    /// A latent IDT descriptor corruption: dispatches of the vector are
    /// swallowed until the descriptor is rewritten.
    DescriptorCorrupt,
    /// A hypercall that fails transiently and is retried (penalty
    /// cycles charged to the caller).
    HypercallFail,
    /// A hypercall serviced on the hypervisor's slow path.
    HypercallSlow,
    /// Latent corruption inside the running VMM's own frame-accounting
    /// state.  Unlike every other class, the damaged component is the
    /// hypervisor itself, so the recovery action is a live-update to a
    /// pristine successor instance (whose accounting is recomputed from
    /// the guest's page tables), not a scrub or repair in place.
    VmmCorrupt,
}

impl FaultClass {
    /// Stable identifier used in reports and `faultgen_results.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::MemBitFlip => "mem-bit-flip",
            FaultClass::DeviceTimeout => "device-timeout",
            FaultClass::StuckIrq => "stuck-irq",
            FaultClass::SpuriousIrq => "spurious-irq",
            FaultClass::DescriptorCorrupt => "descriptor-corrupt",
            FaultClass::HypercallFail => "hypercall-fail",
            FaultClass::HypercallSlow => "hypercall-slow",
            FaultClass::VmmCorrupt => "vmm-corrupt",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a fault lands, with the class-specific parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Flip `1 << bit` in word `word` of physical frame `frame`.  Fires
    /// on the next read of that word at or after the due cycle; the
    /// flipped value is written back, so the corruption is persistent
    /// until scrubbed.
    MemWord {
        /// Target frame number.
        frame: u32,
        /// Word index within the frame (0..512).
        word: u16,
        /// Bit to flip (0..64).
        bit: u8,
    },
    /// Wedge the disk when it pops the request with this driver id; the
    /// device stalls (requests stay queued) until the fault is
    /// [resolved](crate::resolve).
    DiskRequest {
        /// The `DiskRequest::id` to wedge on.
        req_id: u64,
    },
    /// Stick interrupt `vector` on `cpu`: it re-asserts at every
    /// service point until resolved (an interrupt storm).
    IrqLine {
        /// CPU whose line sticks.
        cpu: usize,
        /// Vector that keeps re-asserting.
        vector: u8,
    },
    /// Raise `vector` once on `cpu` with no device behind it.
    Spurious {
        /// CPU to interrupt.
        cpu: usize,
        /// The spurious vector.
        vector: u8,
    },
    /// Corrupt the descriptor for `vector` on `cpu`: dispatches are
    /// swallowed (the gate is unreadable) until the descriptor is
    /// repaired and the fault resolved.
    IdtGate {
        /// CPU whose descriptor fetch fails.
        cpu: usize,
        /// The corrupted vector.
        vector: u8,
    },
    /// Fail or slow the next hypercall on `cpu` at or after the due
    /// cycle, charging `penalty_cycles` extra to the caller.
    Hypercall {
        /// CPU whose hypercall is hit.
        cpu: usize,
        /// Extra cycles the retry/slow path costs.
        penalty_cycles: u64,
        /// `true` = slow path, `false` = transient failure + retry.
        slow: bool,
    },
    /// Wipe the running VMM's accounting record of `frame` (type,
    /// count and pin state) behind the guest's back.  Fires at the
    /// next hypervisor service point on `cpu` at or after the due
    /// cycle; the corruption persists until a recovery agent resolves
    /// it — by live-updating to a successor VMM, which rebuilds the
    /// record from the guest's own page tables.
    VmmState {
        /// CPU at whose hypervisor service point the corruption lands.
        cpu: usize,
        /// Frame whose accounting record is wiped.
        frame: u32,
    },
}

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Campaign-unique id, echoed through signals and reports.
    pub id: u64,
    /// Earliest simulated cycle at which the fault may fire.  Sites
    /// without a cycle clock (the disk pump) treat the plan as due
    /// immediately and stamp this value as the injection time.
    pub due_cycle: u64,
    /// What breaks.
    pub target: FaultTarget,
}

impl FaultSpec {
    /// The fault's class, derived from its target.
    pub fn class(&self) -> FaultClass {
        match self.target {
            FaultTarget::MemWord { .. } => FaultClass::MemBitFlip,
            FaultTarget::DiskRequest { .. } => FaultClass::DeviceTimeout,
            FaultTarget::IrqLine { .. } => FaultClass::StuckIrq,
            FaultTarget::Spurious { .. } => FaultClass::SpuriousIrq,
            FaultTarget::IdtGate { .. } => FaultClass::DescriptorCorrupt,
            FaultTarget::Hypercall { slow: false, .. } => FaultClass::HypercallFail,
            FaultTarget::Hypercall { slow: true, .. } => FaultClass::HypercallSlow,
            FaultTarget::VmmState { .. } => FaultClass::VmmCorrupt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_derivation() {
        let spec = |target| FaultSpec {
            id: 0,
            due_cycle: 0,
            target,
        };
        assert_eq!(
            spec(FaultTarget::MemWord {
                frame: 1,
                word: 2,
                bit: 3
            })
            .class(),
            FaultClass::MemBitFlip
        );
        assert_eq!(
            spec(FaultTarget::Hypercall {
                cpu: 0,
                penalty_cycles: 100,
                slow: true
            })
            .class(),
            FaultClass::HypercallSlow
        );
        assert_eq!(
            spec(FaultTarget::Hypercall {
                cpu: 0,
                penalty_cycles: 100,
                slow: false
            })
            .class(),
            FaultClass::HypercallFail
        );
    }

    #[test]
    fn class_ids_are_stable() {
        assert_eq!(FaultClass::MemBitFlip.as_str(), "mem-bit-flip");
        assert_eq!(FaultClass::DescriptorCorrupt.to_string(), "descriptor-corrupt");
        assert_eq!(FaultClass::VmmCorrupt.as_str(), "vmm-corrupt");
        assert_eq!(
            FaultSpec {
                id: 0,
                due_cycle: 0,
                target: FaultTarget::VmmState { cpu: 0, frame: 9 },
            }
            .class(),
            FaultClass::VmmCorrupt
        );
    }
}
