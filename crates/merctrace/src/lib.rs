//! merctrace — cycle-accurate tracing and metrics for the Mercury
//! simulation.
//!
//! The paper's evaluation (§7.3/§7.4) hinges on *where* the cycles of
//! a mode switch go — rendezvous, state transfer, page-info
//! recompute, reload — yet end-to-end numbers alone cannot show that.
//! merctrace is the observability layer the rest of the workspace
//! reports through: a process-wide set of per-CPU event rings holding
//! span begin/end, counter and histogram records, each timestamped in
//! **simulated cycles** (the `simx86` cost-model clock, 3000 cycles =
//! 1 µs — see `simx86::costs`), never in host time.  Probes read the
//! simulated clock with the free `Cpu::cycles()` accessor, so tracing
//! never perturbs the numbers it reports.
//!
//! # Feature gating
//!
//! The probe macros ([`span_begin!`], [`span_end!`], [`counter!`],
//! [`hist!`]) are the only interface instrumented crates use, and they
//! are compiled by the `enabled` cargo feature:
//!
//! * feature **off** (the default, and what tier-1 `cargo test -q`
//!   builds): every macro expands to an empty block — the arguments
//!   are not even evaluated, so instrumented hot paths carry zero
//!   probe overhead;
//! * feature **on** (selected by `mercury-bench`): macros forward to
//!   [`record`], which appends to the per-CPU ring and updates the
//!   aggregate counter/histogram tables.
//!
//! The library itself (rings, registry, exporters) is always
//! compiled, so it can be tested and documented in both
//! configurations; [`ENABLED`] reports which one this build is.
//!
//! Recording is additionally gated at runtime by [`arm`]/[`disarm`]
//! (disarmed at startup), so a tracing-enabled binary can warm up its
//! workload without flooding the rings and then trace just the region
//! of interest.
//!
//! # Example
//!
//! ```
//! // Direct API — works in both feature configurations.
//! merctrace::init(1024);
//! merctrace::arm();
//! merctrace::reset();
//! let cpu = 31; // use a dedicated CPU index so the example is self-contained
//! merctrace::record(cpu, merctrace::Kind::SpanBegin, "doc.attach", 0, 1_000);
//! merctrace::record(cpu, merctrace::Kind::Counter, "doc.hypercalls", 3, 1_500);
//! merctrace::record(cpu, merctrace::Kind::SpanEnd, "doc.attach", 0, 4_000);
//! let snap = merctrace::snapshot();
//! assert_eq!(snap.span_cycles().get("doc.attach"), Some(&3_000));
//! assert_eq!(snap.counter("doc.hypercalls"), 3);
//! // Exporters: plain JSON and Chrome about://tracing format.
//! let json = merctrace::export::json(&snap);
//! assert!(json.contains("doc.attach"));
//! let chrome = merctrace::export::chrome_trace(&snap, 3_000); // 3000 cycles = 1 µs
//! assert!(chrome.contains("\"ph\":\"B\""));
//! merctrace::disarm();
//! ```
//!
//! The macro layer looks the same but vanishes when the feature is
//! off:
//!
//! ```
//! merctrace::init(1024);
//! merctrace::arm();
//! merctrace::reset();
//! merctrace::span_begin!(30, "doc.macro.span", 100);
//! merctrace::span_end!(30, "doc.macro.span", 700);
//! let snap = merctrace::snapshot();
//! if merctrace::ENABLED {
//!     assert_eq!(snap.span_cycles()["doc.macro.span"], 600);
//! } else {
//!     // Compiled out: nothing was recorded at all.
//!     assert!(snap.span_cycles().get("doc.macro.span").is_none());
//! }
//! merctrace::disarm();
//! ```
//!
//! # Probe namespaces
//!
//! Instrumented crates use dotted, stable probe names: `simx86.*`,
//! `xenon.*`, `nimbus.*` and `switch.*` (the full inventory is tabled
//! in DESIGN.md §11), plus `watchdog.*` from the cluster crate's
//! dependability watchdog —
//! `watchdog.fault.{detected,recovered}` counters and
//! `watchdog.{attach,detach,degraded}` events around the
//! detect → attach → recover → detach loop (DESIGN.md §12).

#![deny(missing_docs)]

pub mod export;
pub mod registry;
pub mod ring;

use ring::Ring;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Whether this build of merctrace has the `enabled` feature on, i.e.
/// whether the probe macros expand to real recording calls.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Number of per-CPU rings the tracer allocates.  Records for CPU
/// indices at or above this are counted in
/// [`Snapshot::out_of_range`] and otherwise discarded.
pub const MAX_CPUS: usize = 32;

/// Ring capacity (records per CPU) used when [`record`] runs before
/// [`init`] was called.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Dense id assigned to each probe name by [`registry::intern`].
pub type ProbeId = u16;

/// The kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Opens a span; paired with the next [`Kind::SpanEnd`] of the
    /// same probe on the same CPU (spans of the same name may nest).
    SpanBegin,
    /// Closes the innermost open span of the same probe on this CPU.
    SpanEnd,
    /// Adds `value` to the probe's aggregate counter.
    Counter,
    /// Adds one `value` sample to the probe's aggregate histogram.
    Hist,
}

impl Kind {
    /// Stable lower-case name, as used by the JSON exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::SpanBegin => "span_begin",
            Kind::SpanEnd => "span_end",
            Kind::Counter => "counter",
            Kind::Hist => "hist",
        }
    }
}

/// One entry in a per-CPU event ring.
#[derive(Debug, Clone, Copy)]
pub struct Record {
    /// Timestamp in simulated cycles.
    pub ts: u64,
    /// Interned probe id (resolve with [`registry::name`]).
    pub probe: ProbeId,
    /// Record kind.
    pub kind: Kind,
    /// Counter increment or histogram sample; 0 for spans.
    pub value: u64,
}

/// Aggregate summary of one histogram probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSummary {
    fn add(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

struct Tracer {
    rings: Vec<Mutex<Ring>>,
    counters: Mutex<BTreeMap<ProbeId, u64>>,
    hists: Mutex<BTreeMap<ProbeId, HistSummary>>,
    out_of_range: Mutex<u64>,
    // Runtime gate.  Acquire/Release so a disarm on one thread is
    // ordered against in-flight records on another; the volint
    // ATOMIC-ORDER rule audits this file for Relaxed use.
    armed: AtomicBool,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

fn make_tracer(capacity: usize) -> Tracer {
    Tracer {
        rings: (0..MAX_CPUS).map(|_| Mutex::new(Ring::new(capacity))).collect(),
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        out_of_range: Mutex::new(0),
        armed: AtomicBool::new(false),
    }
}

fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| make_tracer(DEFAULT_RING_CAPACITY))
}

/// Install the process-wide tracer with the given per-CPU ring
/// capacity.  The first caller wins; returns `true` when this call
/// performed the installation, `false` when a tracer (possibly with a
/// different capacity) already existed.
pub fn init(capacity_per_cpu: usize) -> bool {
    let mut installed = false;
    TRACER.get_or_init(|| {
        installed = true;
        make_tracer(capacity_per_cpu)
    });
    installed
}

/// Start recording.  The tracer starts disarmed so enabled builds can
/// warm up workloads without filling the rings.
pub fn arm() {
    tracer().armed.store(true, Ordering::Release);
}

/// Stop recording.  Records arriving while disarmed are discarded
/// before touching any ring.
pub fn disarm() {
    tracer().armed.store(false, Ordering::Release);
}

/// Whether the tracer is currently recording.
pub fn is_armed() -> bool {
    tracer().armed.load(Ordering::Acquire)
}

/// Append one record to `cpu`'s ring (and fold counters/histograms
/// into the aggregate tables).  This is what the probe macros expand
/// to when the `enabled` feature is on; it is also callable directly,
/// in any configuration, by code that owns its own instrumentation
/// decision (e.g. the exporter tests above).
pub fn record(cpu: usize, kind: Kind, name: &'static str, value: u64, ts: u64) {
    let t = tracer();
    if !t.armed.load(Ordering::Acquire) {
        return;
    }
    let probe = registry::intern(name);
    if cpu < MAX_CPUS {
        t.rings[cpu]
            .lock()
            .expect("trace ring poisoned")
            .push(Record {
                ts,
                probe,
                kind,
                value,
            });
    } else {
        *t.out_of_range.lock().expect("trace counter poisoned") += 1;
    }
    match kind {
        Kind::Counter => {
            *t.counters
                .lock()
                .expect("trace counter poisoned")
                .entry(probe)
                .or_insert(0) += value;
        }
        Kind::Hist => {
            t.hists
                .lock()
                .expect("trace hist poisoned")
                .entry(probe)
                .or_default()
                .add(value);
        }
        Kind::SpanBegin | Kind::SpanEnd => {}
    }
}

/// Discard all recorded data (rings, counters, histograms, drop
/// counts).  The probe-name registry is preserved: ids are stable for
/// the life of the process.
pub fn reset() {
    let t = tracer();
    for ring in &t.rings {
        ring.lock().expect("trace ring poisoned").clear();
    }
    t.counters.lock().expect("trace counter poisoned").clear();
    t.hists.lock().expect("trace hist poisoned").clear();
    *t.out_of_range.lock().expect("trace counter poisoned") = 0;
}

/// The records of one CPU's ring at snapshot time.
#[derive(Debug, Clone)]
pub struct CpuTrace {
    /// CPU index.
    pub cpu: usize,
    /// Retained records, oldest first.
    pub records: Vec<Record>,
    /// Records lost to ring overflow on this CPU.
    pub dropped: u64,
}

/// A consistent copy of everything the tracer holds.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Probe names, indexed by [`ProbeId`].
    pub probes: Vec<&'static str>,
    /// Per-CPU traces (only CPUs with records or drops are included).
    pub cpus: Vec<CpuTrace>,
    /// Aggregate counters by probe name.
    pub counters: Vec<(&'static str, u64)>,
    /// Aggregate histograms by probe name.
    pub hists: Vec<(&'static str, HistSummary)>,
    /// Records discarded because their CPU index was ≥ [`MAX_CPUS`].
    pub out_of_range: u64,
}

impl Snapshot {
    /// Resolve a probe id to its name (`"?"` if unknown).
    pub fn probe_name(&self, id: ProbeId) -> &'static str {
        self.probes.get(id as usize).copied().unwrap_or("?")
    }

    /// Total cycles spent inside each span probe, summed over all
    /// CPUs.  Begin/end records are paired per CPU with a stack per
    /// probe, so same-name spans may nest; unmatched begins are
    /// ignored.
    pub fn span_cycles(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for cpu in &self.cpus {
            let mut stacks: HashMap<ProbeId, Vec<u64>> = HashMap::new();
            for r in &cpu.records {
                match r.kind {
                    Kind::SpanBegin => stacks.entry(r.probe).or_default().push(r.ts),
                    Kind::SpanEnd => {
                        if let Some(begin) = stacks.entry(r.probe).or_default().pop() {
                            *out.entry(self.probe_name(r.probe)).or_insert(0) +=
                                r.ts.saturating_sub(begin);
                        }
                    }
                    Kind::Counter | Kind::Hist => {}
                }
            }
        }
        out
    }

    /// Number of completed (begin/end-paired) spans per probe.
    pub fn span_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for cpu in &self.cpus {
            let mut depth: HashMap<ProbeId, u64> = HashMap::new();
            for r in &cpu.records {
                match r.kind {
                    Kind::SpanBegin => *depth.entry(r.probe).or_insert(0) += 1,
                    Kind::SpanEnd => {
                        let d = depth.entry(r.probe).or_insert(0);
                        if *d > 0 {
                            *d -= 1;
                            *out.entry(self.probe_name(r.probe)).or_insert(0) += 1;
                        }
                    }
                    Kind::Counter | Kind::Hist => {}
                }
            }
        }
        out
    }

    /// Aggregate counter value for `name` (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Aggregate histogram for `name`, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| *h)
    }

    /// Total records lost anywhere (ring overflow plus out-of-range
    /// CPU indices).
    pub fn total_dropped(&self) -> u64 {
        self.out_of_range + self.cpus.iter().map(|c| c.dropped).sum::<u64>()
    }
}

/// Copy the tracer's current state out for analysis or export.
pub fn snapshot() -> Snapshot {
    let t = tracer();
    let probes = registry::names();
    let mut cpus = Vec::new();
    for (i, ring) in t.rings.iter().enumerate() {
        let ring = ring.lock().expect("trace ring poisoned");
        if !ring.is_empty() || ring.dropped() > 0 {
            cpus.push(CpuTrace {
                cpu: i,
                records: ring.records(),
                dropped: ring.dropped(),
            });
        }
    }
    let name_of = |id: &ProbeId| probes.get(*id as usize).copied().unwrap_or("?");
    let counters = t
        .counters
        .lock()
        .expect("trace counter poisoned")
        .iter()
        .map(|(id, v)| (name_of(id), *v))
        .collect();
    let hists = t
        .hists
        .lock()
        .expect("trace hist poisoned")
        .iter()
        .map(|(id, h)| (name_of(id), *h))
        .collect();
    let out_of_range = *t.out_of_range.lock().expect("trace counter poisoned");
    Snapshot {
        probes,
        cpus,
        counters,
        hists,
        out_of_range,
    }
}

// --------------------------------------------------------------- the macros

/// Open a span: `span_begin!(cpu_index, "probe.name", now_cycles)`.
///
/// Pair with [`span_end!`] of the same probe on the same CPU.  The
/// name must be a `&'static str`; the timestamp is the simulated
/// cycle count (read it with the free `Cpu::cycles()`, never
/// `rdtsc()`, so probing leaves simulated time untouched).  Expands
/// to nothing — arguments unevaluated — when the `enabled` feature is
/// off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span_begin {
    ($cpu:expr, $name:expr, $ts:expr) => {
        $crate::record($cpu as usize, $crate::Kind::SpanBegin, $name, 0u64, $ts as u64)
    };
}

/// Close the innermost open span of this probe on this CPU:
/// `span_end!(cpu_index, "probe.name", now_cycles)`.
///
/// Expands to nothing — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span_end {
    ($cpu:expr, $name:expr, $ts:expr) => {
        $crate::record($cpu as usize, $crate::Kind::SpanEnd, $name, 0u64, $ts as u64)
    };
}

/// Add to a named counter: `counter!(cpu_index, "probe.name", delta,
/// now_cycles)`.
///
/// Expands to nothing — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($cpu:expr, $name:expr, $value:expr, $ts:expr) => {
        $crate::record(
            $cpu as usize,
            $crate::Kind::Counter,
            $name,
            $value as u64,
            $ts as u64,
        )
    };
}

/// Record one histogram sample: `hist!(cpu_index, "probe.name",
/// sample, now_cycles)`.
///
/// Expands to nothing — arguments unevaluated — when the `enabled`
/// feature is off.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! hist {
    ($cpu:expr, $name:expr, $value:expr, $ts:expr) => {
        $crate::record(
            $cpu as usize,
            $crate::Kind::Hist,
            $name,
            $value as u64,
            $ts as u64,
        )
    };
}

/// Open a span (compiled-out variant: the `enabled` feature is off,
/// so this expands to an empty block and its arguments are never
/// evaluated).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span_begin {
    ($($args:tt)*) => {{}};
}

/// Close a span (compiled-out variant: expands to an empty block,
/// arguments never evaluated).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span_end {
    ($($args:tt)*) => {{}};
}

/// Add to a counter (compiled-out variant: expands to an empty block,
/// arguments never evaluated).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($($args:tt)*) => {{}};
}

/// Record a histogram sample (compiled-out variant: expands to an
/// empty block, arguments never evaluated).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! hist {
    ($($args:tt)*) => {{}};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global and unit tests share the process,
    // so each test below uses its own CPU indices and probe names and
    // never calls the global `reset()`.

    #[test]
    fn record_and_snapshot_roundtrip() {
        init(256);
        arm();
        record(20, Kind::SpanBegin, "t.lib.span", 0, 100);
        record(20, Kind::Counter, "t.lib.count", 5, 150);
        record(20, Kind::Hist, "t.lib.hist", 40, 180);
        record(20, Kind::Hist, "t.lib.hist", 60, 190);
        record(20, Kind::SpanEnd, "t.lib.span", 0, 400);
        let snap = snapshot();
        assert_eq!(snap.span_cycles()["t.lib.span"], 300);
        assert_eq!(snap.span_counts()["t.lib.span"], 1);
        assert_eq!(snap.counter("t.lib.count"), 5);
        let h = snap.hist("t.lib.hist").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 100);
        assert_eq!(h.min, 40);
        assert_eq!(h.max, 60);
        assert!((h.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn nested_spans_pair_innermost_first() {
        init(256);
        arm();
        record(21, Kind::SpanBegin, "t.lib.nest", 0, 0);
        record(21, Kind::SpanBegin, "t.lib.nest", 0, 10);
        record(21, Kind::SpanEnd, "t.lib.nest", 0, 30); // inner: 20
        record(21, Kind::SpanEnd, "t.lib.nest", 0, 100); // outer: 100
        let snap = snapshot();
        assert_eq!(snap.span_cycles()["t.lib.nest"], 120);
        assert_eq!(snap.span_counts()["t.lib.nest"], 2);
    }

    #[test]
    fn disarmed_records_are_discarded() {
        init(256);
        arm();
        disarm();
        record(22, Kind::Counter, "t.lib.disarmed", 1, 0);
        let snap = snapshot();
        assert_eq!(snap.counter("t.lib.disarmed"), 0);
        assert!(!snap.cpus.iter().any(|c| c.cpu == 22));
        arm();
    }

    #[test]
    fn out_of_range_cpu_is_counted() {
        init(256);
        arm();
        record(MAX_CPUS + 3, Kind::Counter, "t.lib.oor", 1, 0);
        let snap = snapshot();
        assert!(snap.out_of_range >= 1);
        // The aggregate counter still fires: only the ring record has
        // nowhere to go.
        assert_eq!(snap.counter("t.lib.oor"), 1);
    }

    #[test]
    fn enabled_flag_matches_feature() {
        assert_eq!(ENABLED, cfg!(feature = "enabled"));
    }
}
