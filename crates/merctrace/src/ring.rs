//! The per-CPU event ring.
//!
//! Each simulated CPU owns one [`Ring`]: a fixed-capacity circular
//! buffer of [`Record`]s with *overwrite-oldest* overflow semantics.
//! When a ring is full the oldest record is replaced and the
//! [`Ring::dropped`] count is bumped, so a snapshot always reports how
//! much history was lost.  Rings are written from the simulated CPU's
//! host thread and read by the exporter; the caller (the global tracer
//! in the crate root) serializes access with a per-CPU mutex, which is
//! also why this file must never use `Ordering::Relaxed` — the volint
//! ATOMIC-ORDER rule audits the trace-buffer code alongside the
//! rendezvous and refcount protocols.
//!
//! ```
//! use merctrace::ring::Ring;
//! use merctrace::{Kind, Record};
//!
//! let mut ring = Ring::new(2);
//! for ts in 0..3 {
//!     ring.push(Record { ts, probe: 0, kind: Kind::Counter, value: 1 });
//! }
//! // Capacity 2: the ts=0 record was overwritten, and that loss is
//! // accounted for.
//! let records = ring.records();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].ts, 1);
//! assert_eq!(records[1].ts, 2);
//! assert_eq!(ring.dropped(), 1);
//! ```

use crate::Record;

/// A fixed-capacity circular record buffer with overwrite-oldest
/// overflow and a dropped-record count.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Record>,
    /// Next write position.
    head: usize,
    /// Number of live records (≤ capacity).
    len: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl Ring {
    /// Create a ring holding at most `capacity` records.
    ///
    /// A zero capacity is rounded up to 1 so `push` is always able to
    /// retain the newest record.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records overwritten by overflow since the last [`Ring::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append a record, overwriting the oldest one when full.
    pub fn push(&mut self, r: Record) {
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(r);
            self.len += 1;
        } else {
            self.buf[self.head] = r;
            if self.len == cap {
                self.dropped += 1;
            } else {
                self.len += 1;
            }
        }
        self.head = (self.head + 1) % cap;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        let cap = self.buf.capacity();
        if self.buf.len() < cap || self.len < cap {
            // Never wrapped: records sit at the start in push order.
            return self.buf[..self.len].to_vec();
        }
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Discard every record and reset the dropped count.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kind;

    fn rec(ts: u64) -> Record {
        Record {
            ts,
            probe: 0,
            kind: Kind::Counter,
            value: 1,
        }
    }

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut r = Ring::new(4);
        for ts in 0..10 {
            r.push(rec(ts));
        }
        let got: Vec<u64> = r.records().iter().map(|x| x.ts).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn partial_fill_in_order() {
        let mut r = Ring::new(8);
        for ts in 0..3 {
            r.push(rec(ts));
        }
        let got: Vec<u64> = r.records().iter().map(|x| x.ts).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = Ring::new(2);
        for ts in 0..5 {
            r.push(rec(ts));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        r.push(rec(42));
        assert_eq!(r.records()[0].ts, 42);
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let mut r = Ring::new(0);
        r.push(rec(1));
        r.push(rec(2));
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].ts, 2);
        assert_eq!(r.dropped(), 1);
    }
}
