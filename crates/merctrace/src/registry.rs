//! The probe-name registry.
//!
//! Probe names are `&'static str` dotted paths (`"switch.transfer.
//! flip_tables"`, `"xenon.hypercall.mmu_update"`).  The registry
//! interns each distinct name to a dense [`ProbeId`]
//! so ring records stay 32 bytes, and snapshots resolve ids back to
//! names for export.  Interning the same name twice returns the same
//! id:
//!
//! ```
//! let a = merctrace::registry::intern("doc.registry.demo");
//! let b = merctrace::registry::intern("doc.registry.demo");
//! assert_eq!(a, b);
//! assert_eq!(merctrace::registry::name(a), Some("doc.registry.demo"));
//! ```

use crate::ProbeId;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

struct Registry {
    by_name: HashMap<&'static str, ProbeId>,
    names: Vec<&'static str>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its stable probe id.
///
/// # Panics
///
/// Panics if more than `ProbeId::MAX` distinct probe names are ever
/// registered (far beyond any real instrumentation set).
pub fn intern(name: &'static str) -> ProbeId {
    let mut reg = registry().lock().expect("probe registry poisoned");
    if let Some(&id) = reg.by_name.get(name) {
        return id;
    }
    let id = ProbeId::try_from(reg.names.len()).expect("probe registry full");
    reg.names.push(name);
    reg.by_name.insert(name, id);
    id
}

/// Resolve a probe id back to its name, if registered.
pub fn name(id: ProbeId) -> Option<&'static str> {
    let reg = registry().lock().expect("probe registry poisoned");
    reg.names.get(id as usize).copied()
}

/// Every registered probe name, indexed by probe id.
pub fn names() -> Vec<&'static str> {
    registry()
        .lock()
        .expect("probe registry poisoned")
        .names
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolvable() {
        let a = intern("test.registry.alpha");
        let b = intern("test.registry.alpha");
        let c = intern("test.registry.beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(name(a), Some("test.registry.alpha"));
        assert_eq!(name(c), Some("test.registry.beta"));
        let all = names();
        assert!(all.contains(&"test.registry.alpha"));
        assert!(all.contains(&"test.registry.beta"));
    }
}
