//! Snapshot exporters.
//!
//! Two formats, both hand-rolled because merctrace is
//! dependency-free:
//!
//! * [`json`] — a plain structured dump (probes, per-CPU records,
//!   aggregate counters/histograms) for archival and diffing;
//! * [`chrome_trace`] — the Chrome `trace_event` array format, viewable
//!   in `about://tracing` / Perfetto.  Span begin/end become `"B"`/`"E"`
//!   events, counters become `"C"` events and histogram samples become
//!   instant (`"i"`) events.  Timestamps are converted from simulated
//!   cycles to microseconds with the caller-supplied cycles-per-µs
//!   rate (pass `simx86::costs::CYCLES_PER_US`; merctrace itself has
//!   no dependency on the cost model).
//!
//! ```
//! merctrace::init(1024);
//! merctrace::arm();
//! merctrace::record(29, merctrace::Kind::SpanBegin, "doc.export", 0, 3_000);
//! merctrace::record(29, merctrace::Kind::SpanEnd, "doc.export", 0, 6_000);
//! let snap = merctrace::snapshot();
//! let chrome = merctrace::export::chrome_trace(&snap, 3_000);
//! // 3000 cycles at 3000 cycles/µs = 1 µs.
//! assert!(chrome.contains("\"ts\":1"));
//! assert!(merctrace::export::json(&snap).contains("\"doc.export\""));
//! merctrace::disarm();
//! ```

use crate::{Kind, Snapshot};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a microsecond value with up to three decimals, trimming
/// trailing zeros so integral timestamps stay integral.
fn us(cycles: u64, cycles_per_us: u64) -> String {
    let cycles_per_us = cycles_per_us.max(1);
    let whole = cycles / cycles_per_us;
    let frac = ((cycles % cycles_per_us) * 1000) / cycles_per_us;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
            .trim_end_matches('0')
            .to_string()
    }
}

/// Serialize a snapshot as plain JSON.
pub fn json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"probes\": [");
    for (i, p) in snap.probes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(p));
    }
    out.push_str("],\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {v}", escape(name));
    }
    out.push_str("},\n  \"hists\": {");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
            escape(name),
            h.count,
            h.sum,
            h.min,
            h.max
        );
    }
    let _ = write!(out, "}},\n  \"out_of_range\": {},\n  \"cpus\": [", snap.out_of_range);
    for (ci, cpu) in snap.cpus.iter().enumerate() {
        if ci > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"cpu\": {}, \"dropped\": {}, \"records\": [",
            cpu.cpu, cpu.dropped
        );
        for (ri, r) in cpu.records.iter().enumerate() {
            if ri > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"ts\": {}, \"probe\": \"{}\", \"kind\": \"{}\", \"value\": {}}}",
                r.ts,
                escape(snap.probe_name(r.probe)),
                r.kind.as_str(),
                r.value
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Serialize a snapshot in Chrome `trace_event` format (the JSON
/// array flavor).  `cycles_per_us` converts simulated cycles to the
/// microsecond timestamps the viewer expects.
pub fn chrome_trace(snap: &Snapshot, cycles_per_us: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for cpu in &snap.cpus {
        for r in &cpu.records {
            let name = escape(snap.probe_name(r.probe));
            let ts = us(r.ts, cycles_per_us);
            let ev = match r.kind {
                Kind::SpanBegin => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"mercury\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":{}}}",
                    cpu.cpu
                ),
                Kind::SpanEnd => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"mercury\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":{}}}",
                    cpu.cpu
                ),
                Kind::Counter => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"mercury\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    cpu.cpu, r.value
                ),
                Kind::Hist => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"mercury\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    cpu.cpu, r.value
                ),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&ev);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arm, init, record, snapshot, Kind};

    #[test]
    fn us_formatting() {
        assert_eq!(us(3_000, 3_000), "1");
        assert_eq!(us(4_500, 3_000), "1.5");
        assert_eq!(us(1, 3_000), "0");
        assert_eq!(us(31, 3_000), "0.01");
        assert_eq!(us(0, 0), "0"); // degenerate rate clamps to 1
    }

    #[test]
    fn exporters_cover_all_kinds() {
        init(256);
        arm();
        record(23, Kind::SpanBegin, "t.exp.span", 0, 0);
        record(23, Kind::Counter, "t.exp.count", 2, 10);
        record(23, Kind::Hist, "t.exp.hist", 7, 20);
        record(23, Kind::SpanEnd, "t.exp.span", 0, 30);
        let snap = snapshot();
        let j = json(&snap);
        assert!(j.contains("\"t.exp.span\""));
        assert!(j.contains("\"kind\": \"counter\""));
        assert!(j.contains("\"t.exp.hist\": {\"count\": 1, \"sum\": 7"));
        let c = chrome_trace(&snap, 3_000);
        assert!(c.contains("\"ph\":\"B\""));
        assert!(c.contains("\"ph\":\"E\""));
        assert!(c.contains("\"ph\":\"C\""));
        assert!(c.contains("\"ph\":\"i\""));
        assert!(c.contains("\"tid\":23"));
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
