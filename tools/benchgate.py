#!/usr/bin/env python3
"""CI perf-regression gate over the archived switch benchmarks.

Re-runs the two switch benchmarks (`mode_switch`, `switch_timeline`),
loads the JSON they emit, and compares every metric against the copies
archived at the repo root (`bench_results.json`'s "mode_switch" section
and `switch_timeline.json`) within declared tolerance bands.  Prints a
per-metric delta table and exits non-zero if any metric **regressed**
(got slower beyond its band).  Improvements beyond the band are
reported but do not fail the gate — they mean the archive should be
refreshed, which is a deliberate human action, not a CI failure.

Tolerance bands
---------------
The switch paths run entirely on the simulated cycle clock, so on a
uniprocessor bed they are *simulation-deterministic*: identical on
every host, every run.  Those metrics get a tight band (1%) that exists
only to absorb float formatting.  The sharded-recompute metrics involve
real host threads servicing rendezvous peers; the simulated makespan
depends on host scheduling, so they get a wide band (50%) plus a floor
on the speedup itself.

Static budget cross-check
-------------------------
Every measured switch phase is also checked against the *static* cycle
budget committed at the repo root (`volint_budget.json`, emitted by
`cargo run -p volint -- --budget volint_budget.json`).  A measurement
above its budget means the volint cost model drifted under the code —
the annotations no longer describe what the switch path does — and the
gate fails.  A phase with no budget entry at all fails for the same
reason.  A budget *far* above its measurement (>400x) is reported as a
stale-bounds note: the annotations are over-claiming, tighten them.

Serving tail gate
-----------------
With `--serving` (or whenever `--results DIR` holds a full-size
`serving_results.json`), the serving-tail sweep is gated too: the
virtualization-inflation ratios and the absolute p99 anchors of the
steady-virtual and switch-under-load scenarios must stay inside ~5%
bands of the archived copies.  On top of the relative bands, the
switch-under-load p99 inflation has a *hard absolute ceiling* of 2.0x
steady native (`SERVING_INFLATION_CEILINGS`): the always-on dirty
baseline makes a mode switch a tail event comparable to an unlucky
queueing burst, not a 16x outlier, and the gate holds that line even
if someone re-archives a regressed run.  The hypervisor live-update
scenario (`serving_tail --live-update`) is gated the same way: the
update-under-load p99 inflation carries its own hard 2.0x ceiling.
Quick-sized runs (`"quick": true`) are not comparable and are skipped
with a note.

Provisional archives
--------------------
Hand-written archive entries (added before the first real full-size
run exists) are marked provisional — `"provisional": true` inside a
switch-timeline leg, a key listed in `provisional_inflation` inside
`serving_results.json`, or `"provisional": true` at the top of
`fleet_results.json` — and are excluded from band comparison with a
loud note until re-archived from a real run.  Hard ceilings and the
static-budget cross-check still apply to the fresh measurements:
provisional status skips the *bands*, never the invariants.

Simulated-speed gate
--------------------
With `--sim-speed PATH` the gate runs in a dedicated mode that checks
*only* the simulated-throughput file the campaign binaries emit
(`sim_speed.json`, one entry per suite) against the archived copy at
the repo root (DESIGN.md §14.3, EXPERIMENTS.md "Campaign scale").  For every suite
present in both files, `mcycles_per_host_second` must stay above 80%
of the archived value — the event-driven time skip is a performance
feature, and a regression here means idle spans stopped
fast-forwarding.  The `skip_speedup` factor must additionally stay
≥ 1.0: the skip-on pass may never be slower than the quantum-ticking
pass.  Suites missing from either side are skipped with a note (the
archived file is refreshed deliberately, not by CI).

Fleet gate
----------
With `--fleet PATH` the gate runs in a dedicated mode over the
fleet-scale serving run (`serving_tail --fleet`, DESIGN.md §15).  The
fresh `fleet_results.json` at PATH must satisfy hard invariants that no
archive can grandfather away: **zero lost requests** (every offered
request is accounted as completed or shed — a request that vanished
mid-migration is the bug this gate exists to catch), two-pass
determinism `"verified"`, total accounting (`offered == completed +
shed`), a hard ceiling on the worst migration downtime, and a hard
absolute ceiling on the fleet p999.  On top of the invariants, the
tails and median downtime are banded against the archived repo-root
`fleet_results.json` — unless the archived copy is marked
`"provisional": true` (hand-written before the first real run), in
which case the comparison is skipped with a loud note to re-archive
from a real run.  Runs of different sizing (`mode` mismatch) are not
compared either.

Usage
-----
    python3 tools/benchgate.py            # cargo-run both benches, compare
    python3 tools/benchgate.py --results DIR   # compare pre-generated JSONs
    python3 tools/benchgate.py --serving  # also run + gate the serving sweep
    python3 tools/benchgate.py --sim-speed PATH  # gate only sim throughput
    python3 tools/benchgate.py --fleet PATH      # gate only the fleet run

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (archived-section-path, fresh-section-path, metric, rel_tol, abs_floor_us)
# rel_tol is the allowed relative slowdown; abs_floor_us absorbs noise on
# metrics whose absolute value is tiny (a 10% band on 0.02 µs is silly).
MODE_SWITCH_CHECKS = [
    (("recompute",), ("recompute_on_switch",), "attach_us", 0.01, 0.05),
    (("recompute",), ("recompute_on_switch",), "detach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "attach_us", 0.01, 0.05),
    # With the boot-time pre-cache the "cold" attach only pays for the
    # frames the warm-up dirtied since install — a handful of tables, so
    # the metric sits near the warm number and a small change in the
    # warm-up's table layout moves it by whole frames.  Wider floor.
    (("dirty_recompute",), ("dirty_recompute",), "cold_attach_us", 0.01, 0.5),
    (("dirty_recompute",), ("dirty_recompute",), "warm_attach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "detach_us", 0.01, 0.05),
    # Host-thread-timing dependent: wide band.
    (("sharded_recompute",), ("sharded_recompute",), "serial_pginfo_us", 0.01, 0.05),
    (("sharded_recompute",), ("sharded_recompute",), "sharded_pginfo_us", 0.50, 1.0),
]

TIMELINE_PHASE_TOL = 0.01
TIMELINE_PHASE_FLOOR = 0.05  # µs — phases like flip_tables sit at 0.02 µs

# A phase whose static budget exceeds its measurement by this factor is
# carrying stale bounds (the annotations over-claim).  Measurements
# below BUDGET_STALE_MIN_US are skipped: the worst-case model is
# *supposed* to dwarf a phase that measured ~zero.
BUDGET_STALE_RATIO = 400.0
BUDGET_STALE_MIN_US = 0.001

# Serving-tail inflation ratios (dimensionless): key in the
# `inflation_vs_steady_native_1cpu` section, rel_tol, abs_floor.
SERVING_INFLATION_CHECKS = [
    ("steady_virtual_p99", 0.05, 0.02),
    ("switch_under_load_p99", 0.05, 0.10),
    ("switch_under_load_p999", 0.05, 0.10),
    ("update_under_load_p99", 0.05, 0.10),
    ("update_under_load_p999", 0.05, 0.10),
]

# Hard absolute ceilings on the fresh inflation ratios, independent of
# what is archived: re-archiving a regressed run must not move these.
# A mode switch under the always-on dirty baseline costs O(dirty) +
# O(tables), so a switch landing under load reads as an unlucky
# queueing burst (< 2x the steady-native p99), not the 16x full
# recompute stall the paper's strategy produced.  A hypervisor
# live-update holds the same line: the hv-to-hv transfer reuses the
# dirty-bounded attach machinery, so an update landing mid-stream must
# also read as a tail event, not an outage.
SERVING_INFLATION_CEILINGS = {
    "switch_under_load_p99": 2.0,
    "update_under_load_p99": 2.0,
}

# Absolute tail anchors: (scenario name, metric, rel_tol, abs_floor_us).
SERVING_SCENARIO_CHECKS = [
    ("steady-virtual-1cpu", "p99_us", 0.05, 0.5),
    ("switch-under-load-1cpu", "p99_us", 0.05, 1.0),
]

# Simulated-throughput gate: fresh mcycles_per_host_second below this
# fraction of the archived value fails.  Host timing is noisy, so the
# band is wide; what it catches is the qualitative regression where
# idle spans stop fast-forwarding (a ~10-100x cliff, not a 10% drift).
SIM_SPEED_MIN_FRACTION = 0.8

# Fleet-gate hard ceilings (absolute, fresh-run only — an archived
# regression cannot grandfather a breach in).  The per-node serving
# p999 sits near 20 µs; a fleet request that ever waits out a
# stop-and-copy or a storage copy would land in the millisecond range,
# so 1 ms catches the qualitative failure (migration blocking the
# serving path) with wide headroom over queueing noise.  The downtime
# ceiling bounds the worst single stop-and-copy + storage-copy window;
# a pre-copy that stopped converging blows through it.
FLEET_P999_CEILING_US = 1_000.0
FLEET_DOWNTIME_CEILING_US = 50_000.0

# Relative bands against the archived fleet run (same sizing only):
# (key path, rel_tol, abs_floor_us).  Tails are simulation-
# deterministic per seed, but code changes legitimately move them;
# the band flags step changes, not drift.
FLEET_ARCHIVE_CHECKS = [
    (("p50_us",), 0.25, 2.0),
    (("p99_us",), 0.25, 2.0),
    (("p999_us",), 0.25, 5.0),
    (("downtime_us", "p50"), 0.50, 5.0),
]


def dig(obj, path):
    for k in path:
        obj = obj[k]
    return obj


def run_bench(binary, cwd, extra=()):
    cmd = [
        "cargo",
        "run",
        "--release",
        "--locked",
        "-q",
        "-p",
        "mercury-bench",
        "--bin",
        binary,
    ]
    if extra:
        cmd.append("--")
        cmd.extend(extra)
    print(f"benchgate: running {binary} …", flush=True)
    subprocess.run(cmd, cwd=cwd, check=True, env={**os.environ, "CARGO_TARGET_DIR": os.path.join(REPO, "target")})


class Gate:
    def __init__(self):
        self.rows = []
        self.regressions = []
        self.improvements = []

    def check(self, name, archived, fresh, rel_tol, abs_floor):
        delta = fresh - archived
        band = max(abs(archived) * rel_tol, abs_floor)
        if delta > band:
            status = "REGRESSED"
            self.regressions.append(name)
        elif delta < -band:
            status = "improved"
            self.improvements.append(name)
        else:
            status = "ok"
        self.rows.append((name, archived, fresh, delta, band, status))

    def report(self):
        w = max(len(r[0]) for r in self.rows) if self.rows else 10
        print(f"\n{'metric'.ljust(w)} | archived µs | fresh µs | delta µs | band µs | status")
        print(f"{'-' * w}-|------------:|---------:|---------:|--------:|-------")
        for name, a, f, d, band, status in self.rows:
            print(
                f"{name.ljust(w)} | {a:11.4f} | {f:8.4f} | {d:+8.4f} | {band:7.4f} | {status}"
            )


def gate_budget(gate, fresh_tl, notes):
    """Measured phase times vs the committed static cycle budget.

    Every leg the timeline emits is cross-checked — the default
    attach/detach, the recompute-on-switch anchors (`*_full`), and the
    lazy-validate legs (`*_lazy`) — so a phase without a volint budget
    entry cannot hide in a secondary leg.
    """
    with open(os.path.join(REPO, "volint_budget.json")) as f:
        budget = json.load(f)["phases"]
    for leg in sorted(fresh_tl):
        leg_budget_sum = 0.0
        for phase, fresh_us in sorted(fresh_tl[leg]["phases_us"].items()):
            name = f"budget.{leg}.{phase}"
            entry = budget.get(phase)
            if entry is None:
                gate.rows.append((name, float("nan"), fresh_us, float("nan"), 0.0, "REGRESSED"))
                gate.regressions.append(
                    f"{name} (no static budget for this phase — annotate its span "
                    f"costs and regenerate volint_budget.json)"
                )
                continue
            budget_us = entry["us"]
            leg_budget_sum += budget_us
            if fresh_us > budget_us:
                status = "REGRESSED"
                gate.regressions.append(
                    f"{name} (measured {fresh_us:.3f} µs breaches the static budget "
                    f"{budget_us:.3f} µs — the volint cost model drifted under the code)"
                )
            else:
                status = "ok"
                if fresh_us >= BUDGET_STALE_MIN_US and budget_us / fresh_us > BUDGET_STALE_RATIO:
                    notes.append(
                        f"{name}: static budget {budget_us:.3f} µs is "
                        f"{budget_us / fresh_us:.0f}x the measured {fresh_us:.3f} µs "
                        f"— bounds look stale, consider tightening the annotations"
                    )
            gate.rows.append((name, budget_us, fresh_us, fresh_us - budget_us, 0.0, status))

        # The whole leg must fit inside the sum of its phase budgets:
        # un-spanned inter-phase work cannot hide in the gaps.
        e2e = fresh_tl[leg]["end_to_end_us"]
        name = f"budget.{leg}.end_to_end"
        if e2e > leg_budget_sum:
            status = "REGRESSED"
            gate.regressions.append(
                f"{name} (end-to-end {e2e:.3f} µs exceeds the summed phase "
                f"budgets {leg_budget_sum:.3f} µs)"
            )
        else:
            status = "ok"
        gate.rows.append((name, leg_budget_sum, e2e, e2e - leg_budget_sum, 0.0, status))


def gate_serving(gate, archived_sv, fresh_sv, notes):
    """Tail-latency bands over the serving sweep (full-size runs only)."""
    if fresh_sv.get("quick"):
        notes.append(
            "serving: fresh serving_results.json is --quick sized; tail bands "
            "are not comparable — serving gate skipped"
        )
        return
    if fresh_sv.get("determinism") != "verified":
        gate.rows.append(("serving.determinism", 0.0, float("nan"), float("nan"), 0.0, "REGRESSED"))
        gate.regressions.append(
            f"serving.determinism (two-pass check reported "
            f"{fresh_sv.get('determinism')!r}, expected 'verified')"
        )

    archived_inf = archived_sv["inflation_vs_steady_native_1cpu"]
    fresh_inf = fresh_sv["inflation_vs_steady_native_1cpu"]
    # Keys the archive marks provisional (hand-written before the first
    # real run) are ceiling-checked but not banded: a made-up archived
    # number must neither fail nor bless a fresh one.
    provisional = set(archived_sv.get("provisional_inflation", ()))
    for key, rel, floor in SERVING_INFLATION_CHECKS:
        name = f"serving.inflation.{key}"
        archived, fresh = archived_inf.get(key), fresh_inf.get(key)
        if fresh is None:
            # Optional-scenario key (e.g. the update_under_load pair
            # only exists when the sweep ran with --live-update).
            notes.append(f"{name}: not in the fresh run — band skipped")
            continue
        if archived is None:
            notes.append(f"{name}: fresh run has a new inflation key ({fresh:.2f}x) — archive it")
            gate.rows.append((name, float("nan"), fresh, float("nan"), 0.0, "new key"))
            continue
        if key in provisional:
            notes.append(
                f"{name}: archived value is PROVISIONAL (hand-written placeholder "
                f"{archived:.2f}x) — band skipped; re-archive from a real run"
            )
            gate.rows.append((name, archived, fresh, fresh - archived, 0.0, "provisional"))
            continue
        gate.check(name, archived, fresh, rel, floor)

    # Absolute ceilings are checked against the *fresh* run only — the
    # archived copy can't grandfather a breach in (and a provisional
    # archive can't dodge one).
    for key, ceiling in SERVING_INFLATION_CEILINGS.items():
        name = f"serving.ceiling.{key}"
        fresh = fresh_inf.get(key)
        if fresh is None:
            notes.append(f"{name}: not in the fresh run — ceiling skipped")
            continue
        if fresh >= ceiling:
            gate.rows.append((name, ceiling, fresh, fresh - ceiling, 0.0, "REGRESSED"))
            gate.regressions.append(
                f"{name} (inflation {fresh:.2f}x breaches the hard {ceiling:.1f}x "
                f"ceiling — a switch under load must stay a tail event)"
            )
        else:
            gate.rows.append((name, ceiling, fresh, fresh - ceiling, 0.0, "ok"))

    archived_by = {s["name"]: s for s in archived_sv["scenarios"]}
    fresh_by = {s["name"]: s for s in fresh_sv["scenarios"]}
    for scen, metric, rel, floor in SERVING_SCENARIO_CHECKS:
        name = f"serving.{scen}.{metric}"
        if scen not in fresh_by:
            gate.rows.append((name, archived_by[scen][metric], float("nan"), float("nan"), 0.0, "REGRESSED"))
            gate.regressions.append(f"{name} (scenario missing from fresh results)")
            continue
        gate.check(name, archived_by[scen][metric], fresh_by[scen][metric], rel, floor)


def gate_sim_speed(fresh_path):
    """Dedicated mode: gate only the simulated-throughput file.

    Compares every suite present in both the fresh file and the
    archived repo-root `sim_speed.json`.  Fails if a suite's
    `mcycles_per_host_second` fell below ``SIM_SPEED_MIN_FRACTION`` of
    the archived value, or if its `skip_speedup` dropped below 1.0
    (the skip-on pass must never lose to quantum ticking).  Suites
    missing from either side are notes, not failures.
    """
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(os.path.join(REPO, "sim_speed.json")) as f:
        archived = json.load(f)

    regressions = []
    print(f"{'suite'.ljust(10)} | archived Mc/s | fresh Mc/s | min Mc/s | speedup | status")
    print(f"{'-' * 10}-|--------------:|-----------:|---------:|--------:|-------")
    for suite in sorted(set(archived) | set(fresh)):
        if suite not in fresh:
            print(f"{suite.ljust(10)} | {'':>13} | {'':>10} | {'':>8} | {'':>7} | missing from fresh run (note)")
            continue
        if suite not in archived:
            f_tp = fresh[suite]["mcycles_per_host_second"]
            print(f"{suite.ljust(10)} | {'':>13} | {f_tp:10.1f} | {'':>8} | {'':>7} | new suite (archive it)")
            continue
        a_tp = archived[suite]["mcycles_per_host_second"]
        f_tp = fresh[suite]["mcycles_per_host_second"]
        speedup = fresh[suite]["skip_speedup"]
        floor = a_tp * SIM_SPEED_MIN_FRACTION
        status = "ok"
        if f_tp < floor:
            status = "REGRESSED"
            regressions.append(
                f"sim_speed.{suite}.mcycles_per_host_second "
                f"({f_tp:.1f} < {SIM_SPEED_MIN_FRACTION:.0%} of archived {a_tp:.1f} "
                f"— idle spans likely stopped fast-forwarding)"
            )
        if speedup < 1.0:
            status = "REGRESSED"
            regressions.append(
                f"sim_speed.{suite}.skip_speedup ({speedup:.2f} < 1.0 — the "
                f"skip-on pass lost to quantum ticking)"
            )
        print(
            f"{suite.ljust(10)} | {a_tp:13.1f} | {f_tp:10.1f} | {floor:8.1f} | {speedup:7.2f} | {status}"
        )

    if regressions:
        print(f"\nbenchgate: FAIL — {len(regressions)} sim-speed regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("\nbenchgate: PASS (sim-speed)")


def gate_fleet(fresh_path):
    """Dedicated mode: gate the fleet-scale serving run.

    Hard invariants on the fresh `fleet_results.json` first (zero lost
    requests, verified determinism, total accounting, downtime and
    p999 ceilings), then relative bands against the archived repo-root
    copy when it is a real (non-provisional) run of the same sizing.
    """
    with open(fresh_path) as f:
        fresh = json.load(f)

    regressions = []
    notes = []
    rows = []

    def invariant(name, ok_cond, detail):
        rows.append((name, detail, "ok" if ok_cond else "REGRESSED"))
        if not ok_cond:
            regressions.append(f"fleet.{name} ({detail})")

    invariant(
        "lost",
        fresh["lost"] == 0,
        f"{fresh['lost']} requests lost — every offered request must be "
        f"accounted completed or shed across migrations",
    )
    invariant(
        "determinism",
        fresh["determinism"] == "verified",
        f"two-pass check reported {fresh['determinism']!r}, expected 'verified'",
    )
    invariant(
        "accounting",
        fresh["offered"] == fresh["completed"] + fresh["shed"],
        f"offered {fresh['offered']} vs completed {fresh['completed']} "
        f"+ shed {fresh['shed']}",
    )
    invariant(
        "downtime_ceiling",
        fresh["downtime_us"]["max"] <= FLEET_DOWNTIME_CEILING_US,
        f"worst migration downtime {fresh['downtime_us']['max']:.1f} µs vs "
        f"hard ceiling {FLEET_DOWNTIME_CEILING_US:.0f} µs",
    )
    invariant(
        "p999_ceiling",
        fresh["p999_us"] <= FLEET_P999_CEILING_US,
        f"fleet p999 {fresh['p999_us']:.1f} µs vs hard ceiling "
        f"{FLEET_P999_CEILING_US:.0f} µs — a tail in the millisecond range "
        f"means migration blocked the serving path",
    )

    archived_path = os.path.join(REPO, "fleet_results.json")
    archived = None
    if not os.path.exists(archived_path):
        notes.append("fleet: no archived fleet_results.json — band comparison skipped")
    else:
        with open(archived_path) as f:
            archived = json.load(f)
        if archived.get("provisional"):
            notes.append(
                "fleet: archived fleet_results.json is PROVISIONAL (hand-written "
                "placeholder) — band comparison skipped; re-archive it from a real "
                "`serving_tail --fleet` run"
            )
            archived = None
        elif archived.get("mode") != fresh.get("mode"):
            notes.append(
                f"fleet: fresh run is {fresh.get('mode')!r}-sized but archive is "
                f"{archived.get('mode')!r}-sized — band comparison skipped"
            )
            archived = None

    gate = Gate()
    if archived is not None:
        for path, rel, floor in FLEET_ARCHIVE_CHECKS:
            gate.check(f"fleet.{'.'.join(path)}", dig(archived, path), dig(fresh, path), rel, floor)
        regressions.extend(gate.regressions)

    w = max(len(r[0]) for r in rows)
    print(f"{'invariant'.ljust(w)} | status    | detail")
    print(f"{'-' * w}-|-----------|-------")
    for name, detail, status in rows:
        print(f"{name.ljust(w)} | {status.ljust(9)} | {detail}")
    if gate.rows:
        gate.report()

    for note in notes:
        print(f"\nbenchgate: note — {note}")
    if gate.improvements:
        print(
            f"\nbenchgate: {len(gate.improvements)} fleet metric(s) improved beyond "
            f"their band — consider re-archiving fleet_results.json"
        )
    if regressions:
        print(f"\nbenchgate: FAIL — {len(regressions)} fleet regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("\nbenchgate: PASS (fleet)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--results",
        metavar="DIR",
        help="directory holding pre-generated mode_switch.json and "
        "switch_timeline.json (skips the cargo runs); if it also holds "
        "serving_results.json, the serving gate runs on that too",
    )
    ap.add_argument(
        "--serving",
        action="store_true",
        help="also gate the serving-tail sweep (cargo-runs the full-size "
        "serving_tail bench unless --results provides the JSON)",
    )
    ap.add_argument(
        "--sim-speed",
        metavar="PATH",
        help="gate only the simulated-throughput file at PATH against the "
        "archived repo-root sim_speed.json, then exit",
    )
    ap.add_argument(
        "--fleet",
        metavar="PATH",
        help="gate only the fleet-scale serving results at PATH (hard "
        "zero-lost/determinism/ceiling invariants, plus bands against the "
        "archived repo-root fleet_results.json when comparable), then exit",
    )
    args = ap.parse_args()

    if args.sim_speed:
        gate_sim_speed(args.sim_speed)
        return
    if args.fleet:
        gate_fleet(args.fleet)
        return

    with open(os.path.join(REPO, "bench_results.json")) as f:
        archived_ms = json.load(f)["mode_switch"]
    with open(os.path.join(REPO, "switch_timeline.json")) as f:
        archived_tl = json.load(f)

    if args.results:
        outdir = args.results
    else:
        outdir = tempfile.mkdtemp(prefix="benchgate-")
        run_bench("mode_switch", outdir)
        run_bench("switch_timeline", outdir)
        if args.serving:
            run_bench("serving_tail", outdir, extra=("--seed", "11", "--live-update"))

    with open(os.path.join(outdir, "mode_switch.json")) as f:
        fresh_ms = json.load(f)
    with open(os.path.join(outdir, "switch_timeline.json")) as f:
        fresh_tl = json.load(f)

    fresh_sv = None
    serving_path = os.path.join(outdir, "serving_results.json")
    if args.serving or (args.results and os.path.exists(serving_path)):
        with open(serving_path) as f:
            fresh_sv = json.load(f)
        with open(os.path.join(REPO, "serving_results.json")) as f:
            archived_sv = json.load(f)

    gate = Gate()

    for apath, fpath, metric, rel, floor in MODE_SWITCH_CHECKS:
        name = f"mode_switch.{'.'.join(apath)}.{metric}"
        gate.check(name, dig(archived_ms, apath)[metric], dig(fresh_ms, fpath)[metric], rel, floor)

    # Sharded speedup: lower-bounded, not banded — any host should beat
    # serial by a clear margin on a 4-CPU shard.
    speedup = fresh_ms["sharded_recompute"]["speedup"]
    if speedup < 1.5:
        gate.rows.append(("mode_switch.sharded_recompute.speedup", 1.5, speedup, speedup - 1.5, 0.0, "REGRESSED"))
        gate.regressions.append("mode_switch.sharded_recompute.speedup")
    else:
        gate.rows.append(("mode_switch.sharded_recompute.speedup", 1.5, speedup, speedup - 1.5, 0.0, "ok"))

    notes = []

    # Compare every archived timeline leg (attach/detach plus the _full
    # and _lazy variants); a leg that vanished from the fresh run is a
    # regression, a brand-new fresh leg is informational.  A leg whose
    # archived copy is marked `"provisional": true` (hand-written before
    # the first real run) is skipped with a loud note — the static
    # budget cross-check below still covers its fresh measurements.
    for leg in sorted(archived_tl):
        if archived_tl[leg].get("provisional"):
            notes.append(
                f"switch_timeline.{leg}: archived leg is PROVISIONAL (hand-written "
                f"placeholder) — band comparison skipped; re-archive it from a real "
                f"`switch_timeline` run"
            )
            status = "provisional" if leg in fresh_tl else "provisional (no fresh leg)"
            fresh_e2e = fresh_tl[leg]["end_to_end_us"] if leg in fresh_tl else float("nan")
            gate.rows.append((f"switch_timeline.{leg}", archived_tl[leg]["end_to_end_us"], fresh_e2e, float("nan"), 0.0, status))
            continue
        if leg not in fresh_tl:
            gate.rows.append((f"switch_timeline.{leg}", archived_tl[leg]["end_to_end_us"], float("nan"), float("nan"), 0.0, "REGRESSED"))
            gate.regressions.append(f"switch_timeline.{leg} (leg missing from fresh results)")
            continue
        gate.check(
            f"switch_timeline.{leg}.end_to_end_us",
            archived_tl[leg]["end_to_end_us"],
            fresh_tl[leg]["end_to_end_us"],
            TIMELINE_PHASE_TOL,
            TIMELINE_PHASE_FLOOR,
        )
        for phase, archived_us in archived_tl[leg]["phases_us"].items():
            fresh_us = fresh_tl[leg]["phases_us"].get(phase)
            if fresh_us is None:
                gate.rows.append((f"switch_timeline.{leg}.{phase}", archived_us, float("nan"), float("nan"), 0.0, "REGRESSED"))
                gate.regressions.append(f"switch_timeline.{leg}.{phase} (missing)")
                continue
            gate.check(
                f"switch_timeline.{leg}.{phase}",
                archived_us,
                fresh_us,
                TIMELINE_PHASE_TOL,
                TIMELINE_PHASE_FLOOR,
            )
        for phase in fresh_tl[leg]["phases_us"].keys() - archived_tl[leg]["phases_us"].keys():
            # A brand-new phase is information, not a regression.
            gate.rows.append(
                (f"switch_timeline.{leg}.{phase}", 0.0, fresh_tl[leg]["phases_us"][phase], 0.0, 0.0, "new phase")
            )
    for leg in sorted(set(fresh_tl) - set(archived_tl)):
        # A brand-new leg is information, not a regression.
        gate.rows.append(
            (f"switch_timeline.{leg}", 0.0, fresh_tl[leg]["end_to_end_us"], 0.0, 0.0, "new leg")
        )

    gate_budget(gate, fresh_tl, notes)
    if fresh_sv is not None:
        gate_serving(gate, archived_sv, fresh_sv, notes)

    gate.report()

    for note in notes:
        print(f"\nbenchgate: note — {note}")
    if gate.improvements:
        print(
            f"\nbenchgate: {len(gate.improvements)} metric(s) improved beyond their band "
            f"— consider refreshing the archived JSONs: {', '.join(gate.improvements)}"
        )
    if gate.regressions:
        print(f"\nbenchgate: FAIL — {len(gate.regressions)} regression(s):", file=sys.stderr)
        for r in gate.regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("\nbenchgate: PASS")


if __name__ == "__main__":
    main()
