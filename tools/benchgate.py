#!/usr/bin/env python3
"""CI perf-regression gate over the archived switch benchmarks.

Re-runs the two switch benchmarks (`mode_switch`, `switch_timeline`),
loads the JSON they emit, and compares every metric against the copies
archived at the repo root (`bench_results.json`'s "mode_switch" section
and `switch_timeline.json`) within declared tolerance bands.  Prints a
per-metric delta table and exits non-zero if any metric **regressed**
(got slower beyond its band).  Improvements beyond the band are
reported but do not fail the gate — they mean the archive should be
refreshed, which is a deliberate human action, not a CI failure.

Tolerance bands
---------------
The switch paths run entirely on the simulated cycle clock, so on a
uniprocessor bed they are *simulation-deterministic*: identical on
every host, every run.  Those metrics get a tight band (1%) that exists
only to absorb float formatting.  The sharded-recompute metrics involve
real host threads servicing rendezvous peers; the simulated makespan
depends on host scheduling, so they get a wide band (50%) plus a floor
on the speedup itself.

Usage
-----
    python3 tools/benchgate.py            # cargo-run both benches, compare
    python3 tools/benchgate.py --results DIR   # compare pre-generated JSONs

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (archived-section-path, fresh-section-path, metric, rel_tol, abs_floor_us)
# rel_tol is the allowed relative slowdown; abs_floor_us absorbs noise on
# metrics whose absolute value is tiny (a 10% band on 0.02 µs is silly).
MODE_SWITCH_CHECKS = [
    (("recompute",), ("recompute_on_switch",), "attach_us", 0.01, 0.05),
    (("recompute",), ("recompute_on_switch",), "detach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "attach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "cold_attach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "warm_attach_us", 0.01, 0.05),
    (("dirty_recompute",), ("dirty_recompute",), "detach_us", 0.01, 0.05),
    # Host-thread-timing dependent: wide band.
    (("sharded_recompute",), ("sharded_recompute",), "serial_pginfo_us", 0.01, 0.05),
    (("sharded_recompute",), ("sharded_recompute",), "sharded_pginfo_us", 0.50, 1.0),
]

TIMELINE_PHASE_TOL = 0.01
TIMELINE_PHASE_FLOOR = 0.05  # µs — phases like flip_tables sit at 0.02 µs


def dig(obj, path):
    for k in path:
        obj = obj[k]
    return obj


def run_bench(binary, cwd):
    cmd = [
        "cargo",
        "run",
        "--release",
        "--locked",
        "-q",
        "-p",
        "mercury-bench",
        "--bin",
        binary,
    ]
    print(f"benchgate: running {binary} …", flush=True)
    subprocess.run(cmd, cwd=cwd, check=True, env={**os.environ, "CARGO_TARGET_DIR": os.path.join(REPO, "target")})


class Gate:
    def __init__(self):
        self.rows = []
        self.regressions = []
        self.improvements = []

    def check(self, name, archived, fresh, rel_tol, abs_floor):
        delta = fresh - archived
        band = max(abs(archived) * rel_tol, abs_floor)
        if delta > band:
            status = "REGRESSED"
            self.regressions.append(name)
        elif delta < -band:
            status = "improved"
            self.improvements.append(name)
        else:
            status = "ok"
        self.rows.append((name, archived, fresh, delta, band, status))

    def report(self):
        w = max(len(r[0]) for r in self.rows) if self.rows else 10
        print(f"\n{'metric'.ljust(w)} | archived µs | fresh µs | delta µs | band µs | status")
        print(f"{'-' * w}-|------------:|---------:|---------:|--------:|-------")
        for name, a, f, d, band, status in self.rows:
            print(
                f"{name.ljust(w)} | {a:11.4f} | {f:8.4f} | {d:+8.4f} | {band:7.4f} | {status}"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--results",
        metavar="DIR",
        help="directory holding pre-generated mode_switch.json and "
        "switch_timeline.json (skips the cargo runs)",
    )
    args = ap.parse_args()

    with open(os.path.join(REPO, "bench_results.json")) as f:
        archived_ms = json.load(f)["mode_switch"]
    with open(os.path.join(REPO, "switch_timeline.json")) as f:
        archived_tl = json.load(f)

    if args.results:
        outdir = args.results
    else:
        outdir = tempfile.mkdtemp(prefix="benchgate-")
        run_bench("mode_switch", outdir)
        run_bench("switch_timeline", outdir)

    with open(os.path.join(outdir, "mode_switch.json")) as f:
        fresh_ms = json.load(f)
    with open(os.path.join(outdir, "switch_timeline.json")) as f:
        fresh_tl = json.load(f)

    gate = Gate()

    for apath, fpath, metric, rel, floor in MODE_SWITCH_CHECKS:
        name = f"mode_switch.{'.'.join(apath)}.{metric}"
        gate.check(name, dig(archived_ms, apath)[metric], dig(fresh_ms, fpath)[metric], rel, floor)

    # Sharded speedup: lower-bounded, not banded — any host should beat
    # serial by a clear margin on a 4-CPU shard.
    speedup = fresh_ms["sharded_recompute"]["speedup"]
    if speedup < 1.5:
        gate.rows.append(("mode_switch.sharded_recompute.speedup", 1.5, speedup, speedup - 1.5, 0.0, "REGRESSED"))
        gate.regressions.append("mode_switch.sharded_recompute.speedup")
    else:
        gate.rows.append(("mode_switch.sharded_recompute.speedup", 1.5, speedup, speedup - 1.5, 0.0, "ok"))

    for leg in ("attach", "detach"):
        gate.check(
            f"switch_timeline.{leg}.end_to_end_us",
            archived_tl[leg]["end_to_end_us"],
            fresh_tl[leg]["end_to_end_us"],
            TIMELINE_PHASE_TOL,
            TIMELINE_PHASE_FLOOR,
        )
        for phase, archived_us in archived_tl[leg]["phases_us"].items():
            fresh_us = fresh_tl[leg]["phases_us"].get(phase)
            if fresh_us is None:
                gate.rows.append((f"switch_timeline.{leg}.{phase}", archived_us, float("nan"), float("nan"), 0.0, "REGRESSED"))
                gate.regressions.append(f"switch_timeline.{leg}.{phase} (missing)")
                continue
            gate.check(
                f"switch_timeline.{leg}.{phase}",
                archived_us,
                fresh_us,
                TIMELINE_PHASE_TOL,
                TIMELINE_PHASE_FLOOR,
            )
        for phase in fresh_tl[leg]["phases_us"].keys() - archived_tl[leg]["phases_us"].keys():
            # A brand-new phase is information, not a regression.
            gate.rows.append(
                (f"switch_timeline.{leg}.{phase}", 0.0, fresh_tl[leg]["phases_us"][phase], 0.0, 0.0, "new phase")
            )

    gate.report()

    if gate.improvements:
        print(
            f"\nbenchgate: {len(gate.improvements)} metric(s) improved beyond their band "
            f"— consider refreshing the archived JSONs: {', '.join(gate.improvements)}"
        )
    if gate.regressions:
        print(f"\nbenchgate: FAIL — {len(gate.regressions)} regression(s):", file=sys.stderr)
        for r in gate.regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("\nbenchgate: PASS")


if __name__ == "__main__":
    main()
