#!/usr/bin/env python3
"""Self-tests for the perf-regression gate (tools/benchgate.py).

The gate is itself load-bearing CI: a bug here fails — or worse,
silently passes — every PR.  These tests exercise the pure decision
logic against the checked-in fixture JSONs in `tools/fixtures/`, no
cargo involved:

* band math (relative tolerance, absolute floors, improvement vs
  regression asymmetry),
* the static-budget cross-check (missing phases, budget breaches,
  end-to-end vs summed-phase containment, stale-bounds notes),
* provisional-archive handling (hand-written placeholders must skip
  the bands with a loud note but never dodge the hard ceilings),
* the `--fleet` hard invariants (zero lost, accounting, determinism,
  downtime/p999 ceilings) and archive bands,
* the `--sim-speed` invariants (throughput fraction, skip_speedup
  floor, missing-suite notes).

Run directly: `python3 tools/test_benchgate.py` (stdlib only).
"""

import contextlib
import copy
import importlib.util
import io
import json
import os
import shutil
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")

spec = importlib.util.spec_from_file_location("benchgate", os.path.join(HERE, "benchgate.py"))
bg = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bg)


def fixture(name):
    with open(os.path.join(FIXTURES, name)) as f:
        return json.load(f)


@contextlib.contextmanager
def quiet():
    """Swallow the gate's report tables; return the captured text."""
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf), contextlib.redirect_stderr(buf):
        yield buf


class BandMath(unittest.TestCase):
    def test_within_band_is_ok(self):
        gate = bg.Gate()
        gate.check("m", 100.0, 100.5, 0.01, 0.0)
        self.assertEqual(gate.rows[-1][-1], "ok")
        self.assertFalse(gate.regressions)
        self.assertFalse(gate.improvements)

    def test_slowdown_beyond_band_regresses(self):
        gate = bg.Gate()
        gate.check("m", 100.0, 102.0, 0.01, 0.0)
        self.assertEqual(gate.rows[-1][-1], "REGRESSED")
        self.assertEqual(gate.regressions, ["m"])

    def test_improvement_beyond_band_does_not_fail(self):
        gate = bg.Gate()
        gate.check("m", 100.0, 90.0, 0.01, 0.0)
        self.assertEqual(gate.rows[-1][-1], "improved")
        self.assertFalse(gate.regressions)
        self.assertEqual(gate.improvements, ["m"])

    def test_absolute_floor_absorbs_tiny_metrics(self):
        # 4x relative change on a 0.01 µs metric stays inside the
        # 0.05 µs floor: bands are max(rel, floor).
        gate = bg.Gate()
        gate.check("m", 0.01, 0.04, 0.01, 0.05)
        self.assertEqual(gate.rows[-1][-1], "ok")

    def test_band_is_max_of_relative_and_floor(self):
        gate = bg.Gate()
        gate.check("m", 100.0, 103.0, 0.05, 0.1)  # 5% of 100 beats the floor
        self.assertEqual(gate.rows[-1][-1], "ok")
        gate.check("m2", 100.0, 106.0, 0.05, 0.1)
        self.assertEqual(gate.rows[-1][-1], "REGRESSED")


class BudgetCrossCheck(unittest.TestCase):
    def setUp(self):
        self.saved_repo = bg.REPO
        bg.REPO = tempfile.mkdtemp(prefix="benchgate-test-")
        with open(os.path.join(bg.REPO, "volint_budget.json"), "w") as f:
            json.dump({"phases": {"phase.a": {"us": 10.0}, "phase.b": {"us": 5.0}}}, f)

    def tearDown(self):
        shutil.rmtree(bg.REPO)
        bg.REPO = self.saved_repo

    @staticmethod
    def leg(phases, e2e):
        return {"leg": {"phases_us": phases, "end_to_end_us": e2e, "samples": 20}}

    def test_within_budget_passes(self):
        gate, notes = bg.Gate(), []
        bg.gate_budget(gate, self.leg({"phase.a": 8.0, "phase.b": 4.0}, 12.5), notes)
        self.assertFalse(gate.regressions)

    def test_phase_over_budget_regresses(self):
        gate, notes = bg.Gate(), []
        bg.gate_budget(gate, self.leg({"phase.a": 11.0}, 11.0), notes)
        self.assertTrue(any("phase.a" in r for r in gate.regressions))

    def test_unbudgeted_phase_regresses(self):
        gate, notes = bg.Gate(), []
        bg.gate_budget(gate, self.leg({"phase.zzz": 0.1}, 0.1), notes)
        self.assertTrue(any("no static budget" in r for r in gate.regressions))

    def test_end_to_end_must_fit_summed_budgets(self):
        # Un-spanned inter-phase work cannot hide in the gaps.
        gate, notes = bg.Gate(), []
        bg.gate_budget(gate, self.leg({"phase.a": 8.0, "phase.b": 4.0}, 16.0), notes)
        self.assertTrue(any("end_to_end" in r for r in gate.regressions))

    def test_stale_bounds_are_a_note_not_a_failure(self):
        gate, notes = bg.Gate(), []
        bg.gate_budget(gate, self.leg({"phase.a": 0.01}, 0.01), notes)
        self.assertFalse(gate.regressions)
        self.assertTrue(any("stale" in n for n in notes))


def serving_pair():
    """A matched (archived, fresh) serving_results pair, in band."""
    archived = {
        "quick": False,
        "determinism": "verified",
        "inflation_vs_steady_native_1cpu": {
            "steady_virtual_p99": 1.19,
            "switch_under_load_p99": 1.39,
            "switch_under_load_p999": 1.82,
            "update_under_load_p99": 1.45,
            "update_under_load_p999": 1.85,
        },
        "provisional_inflation": [],
        "scenarios": [
            {"name": "steady-virtual-1cpu", "p99_us": 10.0},
            {"name": "switch-under-load-1cpu", "p99_us": 12.0},
        ],
    }
    return archived, copy.deepcopy(archived)


class ServingGate(unittest.TestCase):
    def test_in_band_run_passes(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertFalse(gate.regressions)

    def test_quick_runs_are_skipped_with_a_note(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        fresh["quick"] = True
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertFalse(gate.rows)
        self.assertTrue(any("quick" in n for n in notes))

    def test_provisional_inflation_key_skips_the_band_loudly(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        archived["provisional_inflation"] = ["update_under_load_p99"]
        fresh["inflation_vs_steady_native_1cpu"]["update_under_load_p99"] = 1.95
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertFalse(gate.regressions)  # way out of band, but provisional
        self.assertTrue(any("PROVISIONAL" in n for n in notes))

    def test_provisional_key_cannot_dodge_the_hard_ceiling(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        archived["provisional_inflation"] = ["update_under_load_p99"]
        fresh["inflation_vs_steady_native_1cpu"]["update_under_load_p99"] = 2.5
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertTrue(any("ceiling.update_under_load_p99" in r for r in gate.regressions))

    def test_update_ceiling_breach_regresses(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        # In band relative to a (bad) archive, but over the absolute line.
        archived["inflation_vs_steady_native_1cpu"]["update_under_load_p99"] = 2.6
        fresh["inflation_vs_steady_native_1cpu"]["update_under_load_p99"] = 2.5
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertTrue(any("ceiling.update_under_load_p99" in r for r in gate.regressions))

    def test_missing_optional_keys_note_instead_of_crashing(self):
        # A sweep run without --live-update has no update_under_load
        # keys; the gate must skip both band and ceiling with notes.
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        for key in ("update_under_load_p99", "update_under_load_p999"):
            del fresh["inflation_vs_steady_native_1cpu"][key]
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertFalse(gate.regressions)
        self.assertTrue(any("update_under_load_p99: not in the fresh run" in n for n in notes))
        self.assertTrue(any("ceiling" in n and "skipped" in n for n in notes))

    def test_new_fresh_key_is_informational(self):
        gate, notes = bg.Gate(), []
        archived, fresh = serving_pair()
        del archived["inflation_vs_steady_native_1cpu"]["update_under_load_p999"]
        bg.gate_serving(gate, archived, fresh, notes)
        self.assertFalse(gate.regressions)
        self.assertTrue(any("archive it" in n for n in notes))


class FleetGate(unittest.TestCase):
    def setUp(self):
        self.saved_repo = bg.REPO
        self.tmp = tempfile.mkdtemp(prefix="benchgate-test-")
        bg.REPO = self.tmp
        self.fresh_path = os.path.join(self.tmp, "fresh.json")

    def tearDown(self):
        shutil.rmtree(self.tmp)
        bg.REPO = self.saved_repo

    def arm(self, fresh, archived=None):
        with open(self.fresh_path, "w") as f:
            json.dump(fresh, f)
        if archived is not None:
            with open(os.path.join(self.tmp, "fleet_results.json"), "w") as f:
                json.dump(archived, f)

    def test_clean_run_passes_against_matching_archive(self):
        fleet = fixture("fleet_results.json")
        self.arm(fleet, archived=fleet)
        with quiet() as out:
            bg.gate_fleet(self.fresh_path)
        self.assertIn("PASS", out.getvalue())

    def test_lost_requests_fail_hard(self):
        fleet = fixture("fleet_results.json")
        fleet["lost"] = 1
        self.arm(fleet, archived=fixture("fleet_results.json"))
        with quiet(), self.assertRaises(SystemExit) as ctx:
            bg.gate_fleet(self.fresh_path)
        self.assertEqual(ctx.exception.code, 1)

    def test_accounting_mismatch_fails_hard(self):
        fleet = fixture("fleet_results.json")
        fleet["completed"] -= 7  # offered != completed + shed
        self.arm(fleet, archived=fixture("fleet_results.json"))
        with quiet(), self.assertRaises(SystemExit):
            bg.gate_fleet(self.fresh_path)

    def test_p999_ceiling_is_absolute(self):
        fleet = fixture("fleet_results.json")
        fleet["p999_us"] = bg.FLEET_P999_CEILING_US + 1.0
        # Archive the same breach: it must not grandfather it in.
        self.arm(fleet, archived=copy.deepcopy(fleet))
        with quiet(), self.assertRaises(SystemExit):
            bg.gate_fleet(self.fresh_path)

    def test_tail_band_against_archive(self):
        fleet = fixture("fleet_results.json")
        fleet["p99_us"] = fleet["p99_us"] * 2.0
        self.arm(fleet, archived=fixture("fleet_results.json"))
        with quiet(), self.assertRaises(SystemExit):
            bg.gate_fleet(self.fresh_path)

    def test_provisional_archive_skips_bands_loudly(self):
        fleet = fixture("fleet_results.json")
        fleet["p99_us"] = fleet["p99_us"] * 2.0  # out of band…
        archived = fixture("fleet_results.json")
        archived["provisional"] = True  # …but the archive is a placeholder
        self.arm(fleet, archived=archived)
        with quiet() as out:
            bg.gate_fleet(self.fresh_path)
        self.assertIn("PROVISIONAL", out.getvalue())
        self.assertIn("PASS", out.getvalue())

    def test_mode_mismatch_skips_bands(self):
        fleet = fixture("fleet_results.json")
        fleet["mode"] = "quick"
        fleet["p99_us"] = fleet["p99_us"] * 2.0
        self.arm(fleet, archived=fixture("fleet_results.json"))
        with quiet() as out:
            bg.gate_fleet(self.fresh_path)
        self.assertIn("band comparison skipped", out.getvalue())
        self.assertIn("PASS", out.getvalue())


class SimSpeedGate(unittest.TestCase):
    def setUp(self):
        self.saved_repo = bg.REPO
        self.tmp = tempfile.mkdtemp(prefix="benchgate-test-")
        bg.REPO = self.tmp
        self.fresh_path = os.path.join(self.tmp, "fresh.json")
        shutil.copy(os.path.join(FIXTURES, "sim_speed.json"), os.path.join(self.tmp, "sim_speed.json"))

    def tearDown(self):
        shutil.rmtree(self.tmp)
        bg.REPO = self.saved_repo

    def arm(self, fresh):
        with open(self.fresh_path, "w") as f:
            json.dump(fresh, f)

    def test_matching_throughput_passes(self):
        self.arm(fixture("sim_speed.json"))
        with quiet() as out:
            bg.gate_sim_speed(self.fresh_path)
        self.assertIn("PASS", out.getvalue())

    def test_throughput_cliff_fails(self):
        fresh = fixture("sim_speed.json")
        fresh["serving"]["mcycles_per_host_second"] *= bg.SIM_SPEED_MIN_FRACTION * 0.9
        self.arm(fresh)
        with quiet(), self.assertRaises(SystemExit):
            bg.gate_sim_speed(self.fresh_path)

    def test_skip_speedup_below_one_fails(self):
        fresh = fixture("sim_speed.json")
        fresh["faultgen"]["skip_speedup"] = 0.9
        self.arm(fresh)
        with quiet(), self.assertRaises(SystemExit):
            bg.gate_sim_speed(self.fresh_path)

    def test_missing_suite_is_a_note(self):
        fresh = fixture("sim_speed.json")
        del fresh["faultgen"]
        self.arm(fresh)
        with quiet() as out:
            bg.gate_sim_speed(self.fresh_path)
        self.assertIn("missing from fresh run (note)", out.getvalue())
        self.assertIn("PASS", out.getvalue())


if __name__ == "__main__":
    unittest.main(verbosity=2)
