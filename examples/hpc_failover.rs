//! §6.5 — HPC cluster availability: hardware monitors predict a
//! failure; the node self-virtualizes and evacuates its OS to a healthy
//! peer before dying.  The running job never stops.
//!
//! ```text
//! cargo run --example hpc_failover
//! ```

use mercury_cluster::failover::auto_failover;
use mercury_cluster::health::SensorReading;
use mercury_cluster::node::{Cluster, NodeConfig};
use nimbus::kernel::MmapBacking;
use nimbus::mm::Prot;
use nimbus::Session;
use simx86::VirtAddr;
use std::sync::Arc;

fn main() {
    let cluster = Cluster::launch(2, &NodeConfig::default());
    let failing = cluster.node(0);
    let healthy = cluster.node(1);

    // A long-running MPI-style job on node0 (native speed — no VMM tax).
    let sess = failing.session();
    let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
    for i in 0..8u64 {
        sess.poke(VirtAddr(va.0 + i * 4096), i * 31).unwrap();
        sess.compute(500_000);
    }
    println!(
        "job running natively on {} (mode {:?})",
        failing.name,
        failing.mercury().mode()
    );

    // The platform sensors see trouble brewing.
    for temp in [66.0, 72.0, 78.0] {
        failing.health.inject(SensorReading {
            temp_c: temp,
            ..Default::default()
        });
    }
    println!(
        "sensor trend: 66 °C -> 72 °C -> 78 °C; predictor: {:?}",
        failing.health.assess()
    );

    // Policy engine reacts: self-virtualize + evacuate.
    let report = auto_failover(failing, healthy, 2).unwrap();
    println!(
        "failover triggered by '{}': {} frames migrated, downtime {:.1} us",
        report.trigger, report.guest.report.total_frames, report.downtime_us
    );

    // The job continues on the healthy node, mid-iteration state intact.
    healthy.hv.set_current(0, Some(report.guest.dom.id));
    let gsess = Session::new(Arc::clone(&report.guest.kernel), 0);
    for i in 0..8u64 {
        assert_eq!(gsess.peek(VirtAddr(va.0 + i * 4096)).unwrap(), i * 31);
    }
    gsess.compute(500_000);
    println!(
        "job resumed on {} — shielded from the failure, no restart",
        healthy.name
    );
}
