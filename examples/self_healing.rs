//! §6.2 — self-healing: detect tainted kernel state with the dormant
//! VMM's records, repair at PL0, validate with an attach round trip.
//!
//! ```text
//! cargo run --example self_healing
//! ```

use mercury::scenarios::healing;
use mercury::{Mercury, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
use nimbus::mm::Prot;
use nimbus::{Kernel, Session};
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::Hypervisor;

fn main() {
    let machine = Machine::new(MachineConfig::up());
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    let mercury =
        Mercury::install(Arc::clone(&kernel), hv, TrackingStrategy::RecomputeOnSwitch).unwrap();

    let sess = Session::new(Arc::clone(&kernel), 0);
    let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
    sess.poke(va, 7).unwrap();

    println!(
        "sensor sweep (clean system): {} anomalies",
        healing::sense(&mercury, cpu).unwrap()
    );

    // A stray DRAM bit flip corrupts a page-table entry.
    healing::inject_taint(&mercury, cpu).unwrap();
    let anomalies = healing::sense(&mercury, cpu).unwrap();
    println!("bit flip injected; sensor sweep: {anomalies} anomalies");

    // Defense in depth: the VMM's validators refuse to attach over
    // corrupted tables.
    match mercury.switch_to_virtual(cpu) {
        Err(e) => println!("attach over tainted state rejected: {e}"),
        Ok(_) => unreachable!("validators must reject the taint"),
    }

    // Heal: zap the poisoned entries, validate with a full round trip.
    let report = healing::heal(&mercury, cpu).unwrap();
    println!(
        "healed: {} entries repaired across {} tables; validated by attach: {}",
        report.repaired_entries, report.tables_scanned, report.validated_by_attach
    );

    // The page refaults cleanly (data lost, invariant restored).
    sess.clear_signal();
    sess.poke(va, 8).unwrap();
    println!(
        "application continues; sensor sweep: {} anomalies",
        healing::sense(&mercury, cpu).unwrap()
    );
}
