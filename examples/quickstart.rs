//! Quickstart: boot a machine, install Mercury, and switch execution
//! modes under a live workload.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
use nimbus::mm::Prot;
use nimbus::{Kernel, Session};
use simx86::costs::cycles_to_us;
use simx86::{Machine, MachineConfig, VirtAddr};
use std::sync::Arc;
use xenon::Hypervisor;

fn main() {
    // 1. Power on a machine and warm up the (dormant) hypervisor.
    let machine = Machine::new(MachineConfig::up());
    let hv = Hypervisor::warm_up(&machine);
    println!(
        "machine up: {} MiB RAM, VMM pre-cached ({} frames reserved, dormant)",
        machine.mem.size_bytes() / (1024 * 1024),
        hv.reserved_frames()
    );

    // 2. Boot the kernel natively (full speed, PL0).
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));

    // 3. Install Mercury: the kernel gains the ability to virtualize
    //    itself.
    let mercury = Mercury::install(
        Arc::clone(&kernel),
        Arc::clone(&hv),
        TrackingStrategy::RecomputeOnSwitch,
    )
    .unwrap();
    println!("mercury installed, mode = {:?}", mercury.mode());

    // 4. Run a workload.
    let sess = Session::new(Arc::clone(&kernel), 0);
    let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
    for p in 0..8u64 {
        sess.poke(VirtAddr(va.0 + p * 4096), p * p).unwrap();
    }
    let fd = sess.open("app.log", true).unwrap();
    sess.write(fd, b"running natively\n").unwrap();

    // 5. Attach the VMM on demand — applications keep running.
    let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).unwrap() else {
        panic!("switch deferred")
    };
    println!(
        "attached VMM in {:.1} us; mode = {:?}, CPU at {:?}",
        cycles_to_us(cycles),
        mercury.mode(),
        cpu.pl()
    );
    assert_eq!(sess.peek(va).unwrap(), 0); // memory intact
    sess.write(fd, b"running on the VMM\n").unwrap();

    // 6. Host a second domain while virtualized (the M-U shape).
    let quota = machine.allocator.alloc_many(cpu, 256).unwrap();
    let domu = hv.create_domain(cpu, "guest", quota, 0).unwrap();
    println!(
        "hosting guest domain {:?} with {} frames",
        domu.id,
        domu.frame_count()
    );
    let freed = hv.destroy_domain(cpu, &domu).unwrap();
    for f in freed {
        machine.allocator.free(f);
    }

    // 7. Detach and return to bare-metal speed.
    let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).unwrap() else {
        panic!("switch deferred")
    };
    println!(
        "detached VMM in {:.1} us; mode = {:?}, CPU at {:?}",
        cycles_to_us(cycles),
        mercury.mode(),
        cpu.pl()
    );
    for p in 0..8u64 {
        assert_eq!(sess.peek(VirtAddr(va.0 + p * 4096)).unwrap(), p * p);
    }
    sess.write(fd, b"back to native\n").unwrap();
    println!(
        "workload state survived {} attaches and {} detaches; app.log = {} bytes",
        mercury
            .stats
            .attaches
            .load(std::sync::atomic::Ordering::Relaxed),
        mercury
            .stats
            .detaches
            .load(std::sync::atomic::Ordering::Relaxed),
        sess.stat("app.log").unwrap().size
    );
}
