//! §6.3 — online hardware maintenance: evacuate a node's OS to a peer
//! via live migration, maintain the hardware, bring the OS home, and
//! return to native speed.
//!
//! ```text
//! cargo run --example online_maintenance
//! ```

use mercury_cluster::maintenance::{evacuate, return_home};
use mercury_cluster::node::{Cluster, NodeConfig};
use nimbus::kernel::MmapBacking;
use nimbus::mm::Prot;
use nimbus::Session;
use simx86::VirtAddr;
use std::sync::Arc;

fn main() {
    let cluster = Cluster::launch(2, &NodeConfig::default());
    let home = cluster.node(0);
    let host = cluster.node(1);
    println!("cluster up: {} and {}", home.name, host.name);

    // A service with live state runs on the home node.
    let sess = home.session();
    let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
    sess.poke(va, 0xfeed).unwrap();
    let fd = sess.open("journal.log", true).unwrap();
    sess.write(fd, b"before maintenance\n").unwrap();
    sess.sync().unwrap();

    // Operator: evacuate node0 for a RAM swap.
    println!("evacuating {} -> {} ...", home.name, host.name);
    let guest = evacuate(home, host, 2).unwrap();
    println!(
        "live migration done: {} frames over {} rounds, downtime {:.1} us",
        guest.report.total_frames,
        guest.report.rounds.len(),
        guest.report.downtime_us()
    );

    // The service keeps running on the host while node0 is on the bench.
    host.hv.set_current(0, Some(guest.dom.id));
    let gsess = Session::new(Arc::clone(&guest.kernel), 0);
    assert_eq!(gsess.peek(va).unwrap(), 0xfeed);
    gsess.poke(VirtAddr(va.0 + 4096), 0xbeef).unwrap();
    println!(
        "service alive on {} (split I/O through its driver domain)",
        host.name
    );

    // ... RAM swapped, node0 healthy again ...

    println!("migrating home ...");
    let report = return_home(guest, host, home).unwrap();
    println!(
        "home again: downtime {:.1} us; {} back in {:?} mode at {:?}",
        report.downtime_us(),
        home.name,
        home.mercury().mode(),
        home.machine.boot_cpu().pl()
    );
    let sess = home.session();
    assert_eq!(sess.peek(va).unwrap(), 0xfeed);
    assert_eq!(sess.peek(VirtAddr(va.0 + 4096)).unwrap(), 0xbeef);
    println!("state modified while evacuated came home; applications never stopped");
}
