//! §6.1 — checkpoint the whole operating system, crash it, restore the
//! checkpoint on a healthy machine.
//!
//! ```text
//! cargo run --example checkpoint_restart
//! ```

use mercury::scenarios::checkpoint;
use mercury::{Mercury, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking};
use nimbus::mm::Prot;
use nimbus::{Kernel, Session};
use simx86::{Machine, MachineConfig, VirtAddr};
use std::sync::Arc;
use xenon::Hypervisor;

fn main() {
    let machine = Machine::new(MachineConfig::up());
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(nimbus::drivers::net::NativeNetDriver::new(Arc::clone(
        &machine,
    )));
    let mercury =
        Mercury::install(Arc::clone(&kernel), hv, TrackingStrategy::RecomputeOnSwitch).unwrap();

    // Mission-critical computation in progress.
    let sess = Session::new(Arc::clone(&kernel), 0);
    let va = sess.mmap(16, Prot::RW, MmapBacking::Anon).unwrap();
    for step in 0..16u64 {
        sess.poke(VirtAddr(va.0 + step * 4096), step * 1000)
            .unwrap();
    }
    println!("computation at step 16; taking a checkpoint ...");

    // Periodic checkpoint: attach, snapshot, detach.
    let ckpt = checkpoint::take(&mercury, cpu).unwrap();
    println!(
        "checkpoint: {:.1} MiB captured; back in {:?} mode",
        ckpt.bytes() as f64 / (1024.0 * 1024.0),
        mercury.mode()
    );

    // More progress ... then catastrophe.
    sess.poke(va, 999_999).unwrap();
    println!("computation advanced past the checkpoint; then the node dies.");

    // Restore on a healthy machine.
    let healthy = Machine::new(MachineConfig::up());
    let restored = checkpoint::restore(&healthy, &ckpt).unwrap();
    let sess2 = Session::new(Arc::clone(&restored.kernel), 0);
    println!(
        "restored on a healthy machine (mode {:?}); step-0 value = {} (pre-divergence)",
        restored.kernel.exec_mode(),
        sess2.peek(va).unwrap()
    );
    for step in 0..16u64 {
        assert_eq!(
            sess2.peek(VirtAddr(va.0 + step * 4096)).unwrap(),
            step * 1000
        );
    }
    println!("all 16 checkpointed pages verified — the computation resumes from step 16");
}
