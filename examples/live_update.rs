//! §6.4 — live kernel update: attach the VMM, patch the kernel under
//! its mediation, detach, all without stopping applications.
//!
//! ```text
//! cargo run --example live_update
//! ```

use mercury::scenarios::live_update;
use mercury::{Mercury, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::{Kernel, Session};
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::Hypervisor;

fn main() {
    let machine = Machine::new(MachineConfig::up());
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 4096,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    let mercury =
        Mercury::install(Arc::clone(&kernel), hv, TrackingStrategy::RecomputeOnSwitch).unwrap();

    // A long-running service with open state.
    let sess = Session::new(Arc::clone(&kernel), 0);
    let fd = sess.open("service.db", true).unwrap();
    sess.write(fd, b"records...").unwrap();
    println!(
        "service running; kernel unpatched: {:?}",
        kernel.patch_version("cve-2026-0001")
    );

    // Apply a security fix live.
    let report = live_update::apply(&mercury, cpu, "cve-2026-0001", 1).unwrap();
    println!(
        "patched {} -> v{} in {:.1} us total (attach + patch + detach), returned native: {}",
        report.name,
        report.new_version,
        live_update::estimated_disruption_us(&report),
        report.returned_native
    );

    // The service never noticed.
    assert_eq!(sess.stat("service.db").unwrap().size, 10);
    sess.write(fd, b"more").unwrap();
    println!(
        "service state intact; patch live: {:?}",
        kernel.patch_version("cve-2026-0001")
    );

    // A superseding patch later.
    let report = live_update::apply(&mercury, cpu, "cve-2026-0001", 2).unwrap();
    println!(
        "superseded v{:?} with v{}",
        report.old_version.unwrap(),
        report.new_version
    );
}
