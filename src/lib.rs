//! Umbrella crate tying the Mercury workspace together.
//!
//! The interesting code lives in the member crates; this crate exists so
//! that the workspace-level `tests/` (integration tests spanning crates)
//! and `examples/` (runnable scenario binaries) have a package to hang off.

pub use mercury;
pub use mercury_cluster;
pub use mercury_workloads;
pub use nimbus;
pub use simx86;
pub use xenon;
